#!/usr/bin/env python
"""Future-work extensions: energy metrics, multi-vendor, batch scheduling.

The paper's conclusion names the topics it wants to add to the course;
this example runs our implementations of them:

* energy-optimal core count for a saturating (memory-bound) kernel,
* the race-to-idle vs pace-to-idle DVFS decision,
* the same workloads on Intel-like vs EPYC-like machines,
* the DAS-5-style batch scheduler (FCFS vs EASY backfilling).

Run:  python examples/energy_and_cluster.py
"""

from repro.energy import PowerModel, dvfs_energy_curve, energy_optimal_cores
from repro.kernels import matmul_work, triad_work
from repro.machine import epyc_like_cpu, generic_server_cpu
from repro.queueing import random_workload, simulate_batch
from repro.roofline import cpu_roofline


def main() -> None:
    cpu = generic_server_cpu()
    pm = PowerModel(static_watts=40, core_watts=6, dram_watts_per_gbs=0.4)

    # ---- energy-optimal core count (ECM triad: saturates at ~4 cores) ----
    best, reports = energy_optimal_cores(pm, cpu, cycles_per_line_single=27.0,
                                         mem_cycles_per_line=7.0, lines=1e8)
    print("energy vs cores for the saturating SIMD triad:")
    for n in (1, 2, 4, 8, 16):
        r = reports[n]
        print(f"  {n:3d} cores: {r.seconds:7.3f}s {r.joules:9.1f}J "
              f"{'<- energy optimum' if n == best else ''}")

    # ---- DVFS: race vs pace ----
    print("\nDVFS energy (J) by frequency scale:")
    mb = dvfs_energy_curve(pm, 10.0, cpu.cores, compute_bound_fraction=0.1)
    cb = dvfs_energy_curve(pm, 10.0, 1, compute_bound_fraction=1.0)
    print("  memory-bound, 16 cores:",
          {s: round(r.joules) for s, r in sorted(mb.items())},
          "-> pace to idle")
    print("  compute-bound, 1 core :",
          {s: round(r.joules) for s, r in sorted(cb.items())},
          "-> race to idle (static power dominates)")

    # ---- multi-vendor rooflines ----
    print("\nmulti-vendor attainable performance:")
    for machine in (generic_server_cpu(), epyc_like_cpu()):
        roofline = cpu_roofline(machine)
        triad = roofline.attainable(triad_work(10 ** 6).intensity)
        mm = roofline.attainable(matmul_work(512).intensity)
        print(f"  {machine.name:15s} ridge {roofline.ridge_point():5.2f} F/B, "
              f"triad {triad / 1e9:7.1f} GF/s, matmul {mm / 1e9:7.1f} GF/s")

    # ---- batch scheduling on the shared cluster ----
    print("\nbatch scheduling, 32-node cluster, 120 jobs at 85% load:")
    wl = random_workload(120, 32, load=0.85, seed=11)
    for policy in ("fcfs", "easy-backfill"):
        print(" ", simulate_batch(wl, 32, policy).report())


if __name__ == "__main__":
    main()
