#!/usr/bin/env python
"""Static performance analysis: lint, verify work models, place on roofline.

Nothing in this script *runs* a kernel.  Every number comes from reading
the registered variants' source — the three `repro.analyze` passes:

    1. `lint_registry`     — anti-pattern linter (scalar loops, in-loop
       allocation, invariant lookups, missing `out=` reuse, ...)
    2. `verify_workcounts` — a shadow interpreter walks each kernel's AST
       over a tiny probe, tallies flops and unique-cell memory traffic,
       and cross-checks the variant's *declared* WorkCount model
    3. `hazards_registry`  — scans chunked-parallel workers for writes
       that escape their `[lo, hi)` partition or accumulate into shared
       arrays without privatization

The same sweep gates CI (`python -m repro.analyze all` exits 1 on any
unsuppressed error), and the static work estimates drop straight onto
the roofline as model-only points — a plottable prediction you can later
compare against measured ones.

Run:  python examples/static_analysis.py
"""

from repro.analyze import analyze_all, static_app_points
from repro.machine import generic_server_cpu
from repro.roofline import cpu_roofline

# -- 1-3. all three passes over the shipped registry ------------------------

report = analyze_all()
print(report.render_text(show_expected=True))
print()

# A clean gate means: zero *error*-severity findings.  Info findings
# (uncountable variants, annotated divergences) and expected findings
# (suppressed via `lint_expect` / `workcount_expect` metadata) remain
# visible so suppressions never rot silently.
assert report.ok, "shipped registry must gate clean"

# -- static roofline placement, no execution --------------------------------

model = cpu_roofline(generic_server_cpu())
print(f"static arithmetic-intensity estimates vs {model.name}:")
print(f"  {'variant':34s} {'AI (F/B)':>9s} {'attainable':>12s}  bound")
for point in static_app_points():
    ceiling = model.attainable(point.intensity)
    bound = "memory" if point.intensity < model.ridge_point() else "compute"
    print(f"  {point.name:34s} {point.intensity:9.3f} "
          f"{ceiling / 1e9:10.1f} GF/s  {bound}")
