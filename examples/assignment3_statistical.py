#!/usr/bin/env python
"""Assignment 3: statistical performance modeling of SpMV.

Collects a training set of simulated SpMV timings over varied sparse
matrices (the data-collection challenge), engineers features, trains
several regressors from scratch, cross-validates, and compares against the
analytical model — the interpretability discussion included.

Run:  python examples/assignment3_statistical.py
"""

import numpy as np

from repro.analytical import FunctionLevelModel
from repro.kernels import banded_sparse, matrix_features, random_sparse, spmv_work
from repro.machine import generic_server_cpu, generic_server_table
from repro.microbench import characterize_simulated
from repro.simulator import CPUModel, spmv_csr_trace, spmv_inner_body
from repro.statmodel import (
    KNNRegressor,
    LinearRegressor,
    ModelEntry,
    PolynomialRegressor,
    RandomForestRegressor,
    compare_models,
    cross_validate,
    spmv_feature_pipeline,
    train_test_split,
)


def collect_dataset(cpu, table, n_samples=40, seed=0):
    """The assignment's data-collection step, on the simulated plane."""
    model = CPUModel(cpu, table)
    rng = np.random.default_rng(seed)
    descriptors, works, times = [], [], []
    for i in range(n_samples):
        n = int(rng.integers(300, 2500))
        if i % 2 == 0:
            coo = random_sparse(n, density=float(rng.uniform(0.002, 0.02)),
                                seed=10 + i)
        else:
            coo = banded_sparse(n, int(rng.integers(2, max(3, n // 4))),
                                fill=float(rng.uniform(0.4, 1.0)), seed=10 + i)
        sim = model.run(spmv_csr_trace(coo), spmv_inner_body(), max(1, coo.nnz))
        descriptors.append(matrix_features(coo))
        works.append(spmv_work(n, n, coo.nnz))
        times.append(sim.seconds)
    return descriptors, works, np.asarray(times)


def main() -> None:
    cpu = generic_server_cpu()
    table = generic_server_table()
    pipeline = spmv_feature_pipeline()

    print("collecting 40 simulated SpMV measurements ...")
    descriptors, works, y = collect_dataset(cpu, table)
    X = pipeline.transform(descriptors)
    print(f"dataset: X{X.shape}, features = {pipeline.names}")

    # ---- cross-validate each statistical model ----
    print("\n5-fold cross-validation (MAPE):")
    factories = {
        "linear": lambda: LinearRegressor(ridge=1e-6),
        "poly-2": lambda: PolynomialRegressor(degree=2, ridge=1e-6),
        "knn-3": lambda: KNNRegressor(k=3),
        "forest": lambda: RandomForestRegressor(n_trees=40, max_depth=8, seed=1),
    }
    for name, factory in factories.items():
        cv = cross_validate(factory, X, y, folds=5, seed=2)
        print(f"  {name:8s} {cv.mean_mape:6.1%} +/- {cv.std_mape:.1%}")

    # ---- held-out comparison vs the analytical model ----
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=1)
    rng_order = np.random.default_rng(1).permutation(len(y))
    test_idx = rng_order[: max(1, int(round(len(y) * 0.3)))]

    linear = LinearRegressor(ridge=1e-6).fit(Xtr, ytr)
    forest = RandomForestRegressor(n_trees=40, max_depth=8, seed=3).fit(Xtr, ytr)
    single = characterize_simulated(cpu.with_cores(1), table)
    func = FunctionLevelModel(single, overlap=False)
    analytical_pred = np.array(
        [func.predict_seconds(works[i]) for i in test_idx])

    result = compare_models([
        ModelEntry("analytical", lambda _: analytical_pred, "analytical",
                   "T = F/peak + B/bandwidth (white box)"),
        ModelEntry("linear", linear.predict, "statistical",
                   linear.explain(pipeline.names)),
        ModelEntry("forest", forest.predict, "statistical",
                   "none - black box"),
    ], Xte, yte)
    print("\nheld-out comparison:")
    print(result.report())

    # ---- reflection: what did the black box actually learn? ----
    from repro.statmodel import importance_report

    print("\npermutation importance of the forest (model-agnostic):")
    print(importance_report(forest, Xte, yte, pipeline.names, seed=4))


if __name__ == "__main__":
    main()
