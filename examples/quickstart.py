#!/usr/bin/env python
"""Quickstart: the performance-engineering toolbox in five minutes.

Walks the seven-stage process (§2.3 of the paper) on a dense matmul, using
the toolbox's models at every stage:

    stage 1  state a requirement
    stage 2  characterize machine + baseline the kernel
    stage 3  check feasibility against the Roofline bound
    stage 4  propose optimizations with model-predicted gains
    stage 5  "apply" them (here: the simulated variants)
    stage 6  assess, iterate
    stage 7  print the report

Run:  python examples/quickstart.py
"""

from repro import EngineeringProcess, Metric, Requirement, Toolbox
from repro.kernels import matmul_work
from repro.roofline import AppPoint
from repro.simulator import matmul_inner_body, matmul_trace

N = 64


def main() -> None:
    tb = Toolbox.default()
    print(tb.summary())
    print()

    # ---- stages 1-2: requirement + baseline (simulated measurement) ----
    work = matmul_work(N)
    model = tb.cpu_model()
    body = matmul_inner_body()
    baseline = model.run(matmul_trace(N, "jki"), body, N ** 3)
    print(f"baseline matmul-jki (n={N}): {baseline.seconds:.3e}s "
          f"({work.flops / baseline.seconds / 1e9:.2f} GFLOP/s)")

    proc = EngineeringProcess(f"matmul n={N}")
    proc.set_requirement(Requirement("5x over the naive version",
                                     Metric.SPEEDUP, 5.0))
    proc.record_baseline(baseline.seconds, "scalar jki loop")

    # ---- stage 3: feasibility from the roofline ----
    roofline = tb.roofline(cores=1)
    point = AppPoint.from_work("matmul", work)
    bound_seconds = work.flops / roofline.attainable(point.intensity)
    verdict = proc.assess_feasibility(bound_seconds)
    print(f"roofline: AI={point.intensity:.1f} FLOP/B -> "
          f"{roofline.classify(point.intensity)}; requirement {verdict.value}")

    # ---- stages 4-6: propose, apply (simulate), assess ----
    # the port model says the scalar loop is latency-bound on the FMA
    # chain: reordering alone cannot help; unrolling + SIMD can.
    from repro.simulator import analyze_loop, matmul_inner_unrolled

    print(f"port analysis: scalar inner loop is "
          f"{analyze_loop(body, tb.table).bound}-bound "
          f"-> unroll with independent accumulators, then vectorize")
    lanes = tb.cpu.vector.lanes(8)
    candidates = [
        ("reorder-ikj", matmul_trace(N, "ikj"), body, N ** 3),
        ("ikj+unroll4", matmul_trace(N, "ikj"),
         matmul_inner_unrolled(4), N ** 3 // 4),
        ("ikj+unroll4+simd", matmul_trace(N, "ikj"),
         matmul_inner_unrolled(4, vectorized=True), N ** 3 // (4 * lanes)),
    ]
    for name, trace, candidate_body, iterations in candidates:
        sim = model.run(trace, candidate_body, iterations)
        proc.propose(name, "from the locality + port analysis",
                     predicted_seconds=sim.optimistic_seconds)
        proc.apply(name, sim.seconds)
        met = proc.assess()
        print(f"  {name}: {sim.seconds:.3e}s "
              f"(x{baseline.seconds / sim.seconds:.2f}) "
              f"requirement {'MET' if met else 'not met yet'}")
        if met:
            break

    # ---- stage 7 ----
    print()
    print(proc.report())


if __name__ == "__main__":
    main()
