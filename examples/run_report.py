#!/usr/bin/env python
"""End-to-end run reports: record → tune → trace → build → compare.

SHARP renders every run into a report its users can actually read, and
graders in the source paper's course work from artifacts, not terminals.
This example exercises the whole ``repro.report`` surface on a throwaway
perfdb store:

1. **record** two benchmark runs (the second with an injected slowdown on
   one kernel, so the comparison has something to find);
2. **tune** a variant and persist the ``TuningResult`` JSON;
3. **trace** a measured run into a Chrome-trace file;
4. **build** one self-contained HTML report fusing perfdb history
   (sparklines + change points + mode splits), the span gantt, roofline
   placements with static app points, the tuning trajectory, and the
   static-analysis findings;
5. **compare** the two runs into a second HTML diff whose verdicts reuse
   the exact statistics of the CI regression gate.

Run:  PYTHONPATH=src python examples/run_report.py
      then open run_report.html and run_compare.html in a browser.

Everything is seeded and ``--now``-pinned, so two invocations of this
script produce byte-identical artifacts (modulo machine timings recorded
into the store itself).
"""

import tempfile
from pathlib import Path

from repro.kernels import REGISTRY, random_matrices
from repro.observe import tracing
from repro.observe.export import write_chrome_trace
from repro.perfdb.record import RunRecord
from repro.perfdb.store import PerfStore
from repro.report import build_report, compare_report, load_trace
from repro.timing import measure
from repro.tuning import Budget, RandomSearch, timed_objective, space_for, tune

N = 24
REPS = 5
NOW = 1_700_000_000.0  # pinned stamp: deterministic artifacts

workdir = Path(tempfile.mkdtemp(prefix="repro-report-demo-"))
store = PerfStore(workdir / "perfdb")
variant = REGISTRY.get("matmul", "numpy")
a, b, c = random_matrices(N, seed=0)

# 1. record two runs; the second injects a 3x slowdown on one benchmark
for label, inject in (("baseline", 1.0), ("candidate", 3.0)):
    samples = {}
    for bid, scale in ((f"matmul.numpy[n={N}]", 1.0),
                       (f"matmul.numpy.slowed[n={N}]", inject)):
        res = measure(lambda: variant.fn(a, b, c), repetitions=REPS, warmup=1)
        samples[bid] = [t * scale for t in res.times]
    store.append(RunRecord.new(samples, label=label))
    print(f"recorded {label}: {sorted(samples)}")

# 2. tune a tiled variant and persist the search history
tiled = REGISTRY.get("matmul", "tiled")
objective = timed_objective(tiled.fn, lambda config: (a, b, c),
                            repetitions=2, warmup=1)
result = tune(objective, space_for(tiled), RandomSearch(seed=0, max_samples=6),
              budget=Budget(max_evaluations=6),
              kernel="matmul", problem=f"n={N}")
tuning_path = workdir / "tuning.json"
tuning_path.write_text(result.to_json(), encoding="utf-8")
print(f"tuned: best {result.best_seconds:.3e}s with {result.best_config}")

# 3. trace one measured run into a Chrome-trace file
trace_path = workdir / "run.trace.json"
with tracing() as tracer:
    with tracer.span("demo.measure", category="measure", n=N):
        measure(lambda: variant.fn(a, b, c), repetitions=REPS, warmup=1)
    write_chrome_trace(trace_path, tracer.spans)
print(f"traced -> {trace_path}")

# 4. build the unified report
html = build_report(store, traces=[load_trace(trace_path)],
                    tuning=[result], analyze_kernel="matmul",
                    title="repro demo run report", now=NOW)
Path("run_report.html").write_text(html, encoding="utf-8")
print(f"report: wrote {len(html)} bytes -> run_report.html")
assert "Benchmark history" in html and "Roofline placements" in html

# 5. compare the two runs — the injected slowdown must be called out
runs = store.runs()
diff_html, regressed = compare_report(runs[-1], runs[0],
                                      title="repro demo compare", now=NOW)
Path("run_compare.html").write_text(diff_html, encoding="utf-8")
print(f"compare: wrote {len(diff_html)} bytes -> run_compare.html; "
      f"regressed={regressed}")
assert regressed, "the injected 3x slowdown must produce a regression verdict"
print("open run_report.html and run_compare.html in a browser")
