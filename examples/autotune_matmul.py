#!/usr/bin/env python
"""Auto-tune matmul's tile size — stage 5 of §2.3, automated.

The assignment-1 task "optimize the basic matmul by loop tiling" leaves one
question the lecture cannot answer in general: *which* tile size?  The
answer depends on the cache hierarchy and the interpreter, so it must be
searched — and the search itself should follow the course's measurement
discipline.  This example walks the seven-stage process with the auto-tuner
doing stage 5:

    stage 1   require a speedup over the default tile
    stage 2   baseline the registered default (tile=32)
    stage 3   feasibility from the Roofline bound
    stage 4-5 tune(): coordinate descent over power-of-two tiles,
              constrained to tiles fitting L1, 30-evaluation budget
    stage 6   assess the winner
    stage 7   print the process report + the tuning history

Run:  PYTHONPATH=src python examples/autotune_matmul.py
"""

from repro import EngineeringProcess, Metric, Requirement
from repro.kernels import REGISTRY, matmul_work, random_matrices
from repro.machine import generic_server_cpu
from repro.roofline import cpu_roofline
from repro.timing import measure
from repro.tuning import (
    Budget,
    CoordinateDescent,
    guidance_report,
    roofline_guide,
    space_for,
    tiles_fit_cache,
    tune_variant,
)

N = 48  # small enough that the scalar tiled loop finishes quickly


def main() -> None:
    variant = REGISTRY.get("matmul", "tiled")
    cpu = generic_server_cpu()
    work = matmul_work(N)

    # ---- stages 1-2: requirement + baseline at a naive first guess ----
    naive = {"tile": 4}  # a student's untuned starting point
    baseline = measure(
        lambda: variant.fn(*random_matrices(N), **naive),
        repetitions=3, warmup=1).best
    print(f"baseline {variant.qualified_name} n={N} {naive}: {baseline:.4e}s")

    proc = EngineeringProcess(f"matmul-tiled n={N}")
    proc.set_requirement(Requirement("beat the naive tile by 10%",
                                     Metric.SPEEDUP, 1.1))
    proc.record_baseline(baseline, f"naive {naive}")

    # ---- stage 3: feasibility from the Roofline bound ----
    roofline = cpu_roofline(cpu, cores=1)
    bound = work.flops / roofline.attainable(work.intensity)
    verdict = proc.assess_feasibility(bound)
    print(f"roofline bound {bound:.4e}s -> {verdict.value}")

    # ---- stages 4-5: the auto-tuner searches the tile axis ----
    l1 = cpu.cache("L1").capacity_bytes
    result = tune_variant(
        variant,
        setup=lambda cfg: random_matrices(N),
        strategy=CoordinateDescent(),
        problem=f"n={N}",
        constraints=[tiles_fit_cache(l1)],
        budget=Budget(max_evaluations=30),
        guide=roofline_guide(roofline, lambda cfg: work),
        process=proc,
        warmup=1, repetitions=3,
    )
    print()
    print(result.report())
    print()
    print(guidance_report(result))

    # ---- stages 6-7: assess and document ----
    met = proc.assess()
    print(f"\nrequirement met: {met}")
    print()
    print(proc.report())

    space = space_for(variant, constraints=[tiles_fit_cache(l1)])
    print(f"\nsearched {result.measurements} of {space.size()} L1-admissible "
          f"tile(s); winner {result.best_config} at {result.best_seconds:.4e}s")


if __name__ == "__main__":
    main()
