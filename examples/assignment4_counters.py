#!/usr/bin/env python
"""Assignment 4: performance counters and performance patterns.

Collects PAPI-style counters for SpMV, then walks the pattern catalogue:
each synthetic kernel demonstrates one pattern, the detector names it from
the counter values alone, and prescribes the fix.

Run:  python examples/assignment4_counters.py
"""

from repro.counters import (
    PATTERN_KERNELS,
    CounterSession,
    available_events,
    derived_metrics,
    diagnose,
    make_pattern_kernel,
)
from repro.kernels import banded_sparse
from repro.machine import generic_server_cpu, generic_server_table
from repro.simulator import spmv_csr_trace, spmv_inner_body


def main() -> None:
    cpu = generic_server_cpu()
    table = generic_server_table()
    print(f"available events ({len(available_events())}):",
          ", ".join(available_events()[:8]), "...")
    session = CounterSession(cpu, table)

    # ---- part 1: detailed counters for SpMV ----
    n = 12_000
    coo = banded_sparse(n, n - 1, fill=6.0 / (2 * n), seed=11)
    reading = session.count(spmv_csr_trace(coo), spmv_inner_body(), coo.nnz,
                            label=f"spmv-csr nnz={coo.nnz}")
    print()
    print(reading.report())
    print("\nderived metrics (LIKWID-style):")
    for key, value in sorted(derived_metrics(reading, cpu).items()):
        print(f"  {key:28s} {value:10.4f}")

    # ---- part 2: the pattern catalogue ----
    print("\npattern demonstrations (synthetic kernels):")
    for pattern in sorted(PATTERN_KERNELS):
        k = make_pattern_kernel(pattern, cpu)
        r = session.count(k.trace, k.body, k.iterations, label=k.name,
                          branch_mispredict_rate=k.mispredict_rate)
        top = diagnose(r, cpu)[0]
        flag = "OK " if top.pattern == k.expected_pattern else "?? "
        print(f"  {flag}{k.name:22s} -> {top.pattern:22s} "
              f"(score {top.score:.2f})")
        print(f"       evidence: {top.evidence}")
        print(f"       remedy  : {top.remedy}")


if __name__ == "__main__":
    main()
