#!/usr/bin/env python
"""Project example: 2-D stencil optimization — the paper's most popular project.

A complete project run (§4.3): reference implementation, experimental
setup, optimization ladder with *real* wall-clock measurements, a parallel
speedup curve through real threads (NumPy releases the GIL), and the
stage-7 report.

Run:  python examples/project_stencil.py
"""

import numpy as np

from repro import EngineeringProcess, Metric, Requirement
from repro.analytical import fit_power_law
from repro.kernels import (
    init_grid,
    jacobi_step_blocked,
    jacobi_step_inplace,
    jacobi_step_numpy,
    jacobi_step_scalar,
    stencil_work,
)
from repro.parallel import parallel_map
from repro.timing import measure, speedup

N = 512
SWEEPS = 20


def time_variant(step, n=N, sweeps=SWEEPS, repetitions=3) -> float:
    src = init_grid(n)
    dst = np.empty_like(src)

    def run():
        s, d = src, dst
        for _ in range(sweeps):
            step(s, d)
            s, d = d, s

    return measure(run, repetitions=repetitions, warmup=1).summary.median


def parallel_sweep_time(n=N, sweeps=SWEEPS, workers=2, repetitions=3) -> float:
    """Row-banded parallel Jacobi with a real thread pool."""
    src = init_grid(n)
    dst = np.empty_like(src)

    def band(lo, hi):
        lo = max(lo, 1)
        hi = min(hi, n - 1)
        if hi <= lo:
            return None
        dst[lo:hi, 1:-1] = 0.25 * (src[lo - 1:hi - 1, 1:-1]
                                   + src[lo + 1:hi + 1, 1:-1]
                                   + src[lo:hi, :-2] + src[lo:hi, 2:])
        return None

    def run():
        nonlocal src, dst
        for _ in range(sweeps):
            dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
            dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
            parallel_map(band, n, workers=workers)
            src, dst = dst, src

    return measure(run, repetitions=repetitions, warmup=1).summary.median


def main() -> None:
    work = stencil_work(N).scale(SWEEPS)
    print(f"project: {N}x{N} Jacobi heat plate, {SWEEPS} sweeps "
          f"({work.flops / 1e6:.0f} MFLOP)")

    # ---- weeks 2-3: reference version + experimental setup ----
    # the scalar reference is too slow at n=512; calibrate at small sizes
    # and extrapolate with a power-law fit (an assignment-2 technique)
    sizes = [32, 48, 64, 96]
    times = [time_variant(jacobi_step_scalar, n=s, sweeps=2, repetitions=1)
             for s in sizes]
    fit = fit_power_law([s * s for s in sizes], times)
    scalar_estimate = fit.predict(N * N) * (SWEEPS / 2)
    print(f"scalar reference: fitted T ~ points^{fit.exponent:.2f}, "
          f"estimated {scalar_estimate:.2f}s at n={N}")

    # profiling-first: confirm the sweep loop is the hotspot before
    # optimizing anything (the "no optimization without measuring" rule)
    from repro.profiling import amdahl_gate, profile_callable

    src = init_grid(96)
    dst = np.empty_like(src)
    profile = profile_callable(lambda: jacobi_step_scalar(src, dst))
    gain, worth = amdahl_gate(profile, "jacobi_step_scalar", assumed_speedup=100)
    print(f"profile: {profile.fraction('jacobi_step_scalar'):.0%} of time in "
          f"the sweep; optimizing it is {'worth it' if worth else 'pointless'} "
          f"(Amdahl-projected {gain:.1f}x)")

    proc = EngineeringProcess("jacobi-512")
    proc.set_requirement(Requirement("100x over the scalar reference",
                                     Metric.SPEEDUP, 100.0))
    proc.record_baseline(scalar_estimate, "pure-python scalar loops (extrapolated)")
    proc.assess_feasibility(bound=scalar_estimate / 5000)

    # ---- weeks 4-7: prototypes ----
    ladder = {
        "numpy-sliced": lambda: time_variant(jacobi_step_numpy),
        "numpy-inplace": lambda: time_variant(jacobi_step_inplace),
        "numpy-blocked64": lambda: time_variant(
            lambda s, d: jacobi_step_blocked(s, d, tile=64)),
        "threads-2": lambda: parallel_sweep_time(workers=2),
    }
    results = {}
    for name, run in ladder.items():
        t = run()
        results[name] = t
        proc.propose(name, "next rung of the ladder")
        proc.apply(name, t)
        print(f"  {name:16s} {t:8.4f}s  "
              f"(x{scalar_estimate / t:8.1f} vs scalar, "
              f"{work.bytes_total / t / 1e9:6.2f} GB/s)")
    met = proc.assess()

    # ---- correctness gate: all prototypes agree ----
    g = init_grid(64)
    ref = jacobi_step_numpy(g, np.empty_like(g)).copy()
    assert np.allclose(jacobi_step_inplace(g, np.empty_like(g)), ref)
    assert np.allclose(jacobi_step_blocked(g, np.empty_like(g), 16), ref)
    print("correctness: all prototypes agree with the reference")

    # ---- week 8: report ----
    print()
    print(proc.report())
    best = min(results.values())
    print(f"\nbest prototype: {speedup(scalar_estimate, best):,.0f}x over "
          f"the scalar reference; requirement met: {met}")


if __name__ == "__main__":
    main()
