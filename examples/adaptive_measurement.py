#!/usr/bin/env python
"""Adaptive measurement: sequential stopping, modes, and budgets, demoed.

Three synthetic timers with very different noise profiles — a quiet
kernel, a heavy-tailed one, and a bimodal one (the classic two-state
frequency-scaling signature) — are measured two ways:

    1. the fixed-repetition convention (every kernel pays the same cap)
    2. ``measure_adaptive`` (stop when the bootstrap CI of the median is
       inside the target, or at the cap — whichever comes first)

then the distribution-aware summary flags the bimodal sample, and a
``MeasurementBudget`` splits one global wall-clock budget across all
three, spending batches where the confidence interval is widest.

The timers are *simulated* with an injectable clock: each "repetition"
advances a fake clock by a seeded draw, so the demo is deterministic,
instant, and shows pure engine behaviour.  Swap in a real function and
drop the ``clock`` argument to measure for real.

Run:  python examples/adaptive_measurement.py
"""

import numpy as np

from repro.timing import MeasurementBudget, measure_adaptive, sample_summary

CAP = 60  # the fixed convention's repetition count, and the adaptive cap


class FakeClock:
    """A perf_counter stand-in advanced by each simulated repetition."""

    def __init__(self, draws):
        self.draws = iter(draws)
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self):
        self.now += float(next(self.draws))


def make_timer(draws):
    clock = FakeClock(draws)
    return clock.tick, clock


def quiet_draws(rng, n=10_000):
    return np.abs(rng.normal(1.0e-3, 5e-6, n))


def heavy_tailed_draws(rng, n=10_000):
    return rng.lognormal(mean=np.log(1.0e-3), sigma=0.6, size=n)


def bimodal_draws(rng, n=10_000):
    fast = rng.normal(1.0e-3, 1e-5, n)
    slow = rng.normal(2.0e-3, 2e-5, n)
    return np.abs(np.where(rng.random(n) < 0.5, fast, slow))


def main():
    rng = np.random.default_rng(7)
    timers = {
        "quiet": quiet_draws(rng),
        "heavy-tailed": heavy_tailed_draws(rng),
        "bimodal": bimodal_draws(rng),
    }

    print(f"fixed convention: every kernel pays {CAP} repetitions\n")
    print(f"{'kernel':>14s}  {'reps':>4s}  {'stop':>15s}  "
          f"{'achieved ci':>11s}  modes")
    total_adaptive = 0
    for name, draws in timers.items():
        fn, clock = make_timer(draws)
        res = measure_adaptive(fn, rel_ci=0.05, min_repetitions=5,
                               max_repetitions=CAP, warmup=2, clock=clock)
        total_adaptive += len(res.times)
        modes = ", ".join(f"{m.center:.2e}s x{m.n}" for m in res.sample.modes)
        print(f"{name:>14s}  {len(res.times):4d}  {res.stop_reason:>15s}  "
              f"{res.achieved_rel_ci:>10.1%}  {modes}")
    print(f"\nadaptive total: {total_adaptive} repetitions vs "
          f"{CAP * len(timers)} fixed "
          f"({CAP * len(timers) / total_adaptive:.1f}x fewer)")

    # the bimodal sample is flagged even though its global median is tight
    summary = sample_summary(list(bimodal_draws(rng, 60)))
    print(f"\nbimodal sample: multimodal={summary.multimodal} "
          f"n_modes={summary.n_modes} stable={summary.stable}")
    assert summary.multimodal and not summary.stable

    # one wall-clock budget across the suite: the quiet kernel gets its
    # minimum, the noisy ones get the rest, widest-CI first
    fns, clocks = {}, {}
    for name, draws in timers.items():
        fns[name], clocks[name] = make_timer(draws)

    class SuiteClock:  # the budget's notion of elapsed time: sum of all
        def __call__(self):
            return sum(c.now for c in clocks.values())

    budget = MeasurementBudget(max_seconds=0.12, rel_ci=0.05,
                               min_repetitions=5, max_repetitions=200,
                               clock=SuiteClock())
    results = budget.run(fns, warmup=1)
    print("\nbudgeted suite (120 ms wall-clock to split):")
    for name, res in results.items():
        print(f"{name:>14s}  {len(res.times):4d} reps  {res.stop_reason:>15s}"
              f"  ±{res.achieved_rel_ci:.1%}")
    quiet_reps = len(results["quiet"].times)
    assert quiet_reps <= min(len(r.times) for r in results.values())


if __name__ == "__main__":
    main()
