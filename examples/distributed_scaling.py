#!/usr/bin/env python
"""Scale-out example: distributed kernels on the simulated DAS-5.

Runs the mini-MPI programs the distributed lectures analyze: ping-pong
(network characterization), a distributed matvec strong-scaling sweep with
the analytical model overlaid, and a BSP run whose VAMPIR-style timeline
shows load imbalance.

Run:  python examples/distributed_scaling.py
"""

from repro.distributed import (
    MPISimulator,
    alpha_beta_from_cluster,
    best_algorithm,
    bsp_iterations,
    distributed_matvec,
    matvec_scaling_model,
    ping_pong,
    profile_text,
    strong_scaling,
    timeline_text,
)
from repro.machine import das5_cluster


def main() -> None:
    cluster = das5_cluster()
    net = alpha_beta_from_cluster(cluster)
    print(f"cluster: {cluster.name}, {cluster.n_nodes} nodes, "
          f"alpha={net.alpha * 1e6:.1f}us beta={net.beta / 1e9:.1f}GB/s")

    # ---- ping-pong: recover the network parameters empirically ----
    for nbytes in (0, 8 * 1024, 1 << 20):
        result = MPISimulator(2, net).run(ping_pong(10, nbytes))
        one_way = result.makespan / 20
        print(f"  ping-pong {nbytes:>8d}B: one-way {one_way * 1e6:8.2f}us "
              f"(model: {net.time(nbytes) * 1e6:8.2f}us)")

    # ---- collective algorithm selection ----
    print("\ncollective algorithm selection (p = 32):")
    for m in (128, 64 * 1024, 8 << 20):
        for coll in ("broadcast", "allreduce"):
            algo, t = best_algorithm(coll, net, 32, m)
            print(f"  {coll:9s} m={m:>9d}B -> {algo:18s} {t * 1e6:10.1f}us")

    # ---- strong scaling: DES vs analytical model ----
    n = 2048
    print(f"\ndistributed matvec strong scaling (n={n}):")
    model = matvec_scaling_model(n, net, seconds_per_flop=2e-10)
    modelled = strong_scaling(model, [1, 2, 4, 8, 16, 32])
    base = None
    for p in (1, 2, 4, 8, 16, 32):
        result = MPISimulator(p, net).run(
            distributed_matvec(n, 3, seconds_per_flop=2e-10))
        base = base or result.makespan
        print(f"  p={p:3d}  DES speedup {base / result.makespan:6.2f}   "
              f"model {modelled[p]:6.2f}   comm share "
              f"{result.communication_fraction():6.1%}")

    # ---- the VAMPIR view of load imbalance ----
    print("\nBSP iteration with 50% load imbalance (4 ranks):")
    result = MPISimulator(4, net).run(
        bsp_iterations(3, 2e-3, 256 * 1024, imbalance=0.5))
    print(timeline_text(result, width=64))
    print()
    print(profile_text(result))


if __name__ == "__main__":
    main()
