#!/usr/bin/env python
"""Benchmark-as-a-service, end to end on one machine.

Boots the repro.service job engine behind its HTTP front end, then plays
three tenants against it:

1. *alice* registers a custom matmul manifest and benchmarks it — the
   run lands in her perfdb shard;
2. *bob* submits the byte-identical workload and is served from the
   result cache (verified via the observe counters);
3. a seeded open-loop Poisson tenant floods the service, and the
   queueing module's M/M/c model is checked against the service's own
   measured waits — the toolbox modeling the system that runs it.

Run:  python examples/serve_benchmarks.py
"""

import tempfile
from pathlib import Path

from repro.observe.metrics import MetricsRegistry
from repro.perfdb.store import PerfStore
from repro.queueing import capacity_for
from repro.service import (
    AdmissionController,
    JobEngine,
    ServiceClient,
    self_model_check,
    start_server,
)

WORKERS = 2

MANIFEST = {
    "name": "matmul-demo",
    "kernel": "matmul",
    "variant": "numpy",
    "args": {"n": 128, "seed": 0},
    "repetitions": 3,
    "warmup": 1,
    "metrics": ["best_seconds", "median_seconds", "gflops"],
}


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-service-demo-"))
    engine = JobEngine(
        store=PerfStore(tmp / "perfdb"),
        workers=WORKERS,
        admission=AdmissionController(max_queue_depth=4096,
                                      tenant_rate=1000, tenant_burst=1000),
        metrics=MetricsRegistry())
    server, _ = start_server(engine, port=0)
    host, port = server.server_address[:2]
    client = ServiceClient(host, port)
    print(f"service up on http://{host}:{port} with {WORKERS} workers")
    print(f"builtin manifests: {', '.join(client.manifests())}\n")

    try:
        # -- 1. register + benchmark ------------------------------------------
        client.register_manifest(MANIFEST)
        job = client.submit("matmul-demo", tenant="alice")
        done = client.wait(job["job_id"], timeout=120.0)
        metrics = done["result"]["metrics"]
        print("alice's benchmark job:")
        print(f"  state={done['state']}  "
              f"best={metrics['best_seconds'] * 1e3:.2f} ms  "
              f"gflops={metrics['gflops']:.2f}")
        shard = engine.store.shard_files("alice")[0]
        print(f"  recorded to shard {shard.relative_to(engine.store.root)}\n")

        # -- 2. identical resubmission hits the cache -------------------------
        cached = client.submit("matmul-demo", tenant="bob")
        hits = engine.metrics.counter("service.cache_hits").value
        executed = engine.metrics.counter("service.jobs_executed").value
        print("bob submits the identical workload:")
        print(f"  state={cached['state']}  cached={cached['cached']}  "
              f"(cache_hits={hits}, executions={executed})\n")

        # -- 3. capacity planning + the self-model check ----------------------
        rate, mu = 60.0, 50.0
        print(f"planning: offered load {rate}/s at mu={mu}/s per worker "
              f"needs >= {capacity_for(rate, mu)} worker(s); "
              f"for Wq <= 10 ms: "
              f"{capacity_for(rate, mu, target_wait=0.010)}")
        print(f"\ndriving a seeded Poisson tenant "
              f"(lambda={rate}/s, mu={mu}/s, c={WORKERS}) ...")
        report = self_model_check(client, rate=rate, service_rate=mu,
                                  jobs=300, workers=WORKERS, seed=0)
        print(report.report())
        verdict = "within" if report.within(0.3) else "outside"
        print(f"  -> measured mean wait {verdict} 30% of the M/M/c model")
    finally:
        server.shutdown()
        engine.shutdown()
    print("\nservice stopped; perfdb left at", tmp)


if __name__ == "__main__":
    main()
