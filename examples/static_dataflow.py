#!/usr/bin/env python
"""The dataflow tier, end to end: report -> fix -> better static placement.

Nothing here runs a kernel at full size.  The abstract interpreter
(`repro.analyze.dataflow`) walks each variant's AST over a tiny
fixed-seed probe, propagating shapes/dtypes/contiguity and charging
*moved* traffic — every temporary and re-read, not just the compulsory
footprint — to the statement that caused it.  This script replays two
real fixes that landed in `repro.kernels`, keeping the pre-fix bodies
alive locally as the "before" variants:

    1. spmv.csr_numpy — L009 (copy-index): the gather `x[a.indices]`
       already produces a fresh array, so multiplying it into *another*
       fresh array allocates a second nnz-sized buffer for nothing.
       Fix: scale the gather in place.
    2. fft.vectorized — L007 (hidden-temp-chain) in the bit-reversal
       helper (three dying temporaries per bit) plus an L009 `.copy()`
       of a gather that is already a copy.  Fix: one reused scratch
       buffer and no redundant copy.

For each, the script prints the findings and the per-statement traffic
table for the "before" body, then compares both versions' static
estimates.  The two fixes improve *different* columns, and the tier
separates them honestly: the spmv fix eliminates a full-size temporary
allocation (same bytes moved — in-place writes the same cells, but one
malloc-and-page-touch disappears), while the fft fix removes genuinely
moved bytes, so its arithmetic intensity — and static roofline
placement — improves.

Run:  python examples/static_dataflow.py
"""

import inspect

import numpy as np

from repro.analyze.dataflow import dataflow_estimate, dataflow_variant
from repro.analyze.workcount import default_probes
from repro.kernels import REGISTRY
from repro.kernels.base import KernelVariant
from repro.machine import generic_server_cpu
from repro.roofline import AppPoint, cpu_roofline


# -- the pre-fix bodies, preserved verbatim ---------------------------------

def spmv_csr_before(a, x):
    """CSR SpMV as first written: gather feeding a second fresh array."""
    if a.nnz == 0:
        return np.zeros(a.shape[0])
    products = x[a.indices] * a.data
    y = np.zeros(a.shape[0])
    lengths = a.row_lengths()
    nonempty = np.nonzero(lengths)[0]
    if nonempty.size:
        starts = a.indptr[nonempty]
        y[nonempty] = np.add.reduceat(products, starts)
    return y


def bit_reverse_before(n):
    """Bit-reversal permutation: three dying temporaries per bit."""
    bits = int(np.log2(n))
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def fft_vectorized_before(x):
    """Stage-vectorized FFT copying a gather that is already fresh."""
    x = np.asarray(x, dtype=complex)
    n = x.size
    out = x[bit_reverse_before(n)].copy()
    size = 2
    while size <= n:
        half = size // 2
        tw = np.exp(-2j * np.pi * np.arange(half) / size)
        blocks = out.reshape(n // size, size)
        lo = blocks[:, :half]
        hi = blocks[:, half:] * tw
        blocks[:, :half], blocks[:, half:] = lo + hi, lo - hi
        size *= 2
    return out


def _variant(kernel, name, fn):
    shipped_work = REGISTRY.variants_of(kernel)[0].work
    return KernelVariant(kernel=kernel, name=name, fn=fn, work=shipped_work)


def _probe_args(kernel, name):
    # probe builders dispatch on the variant name (csr/csc/coo formats, ...)
    return default_probes()[kernel].build(name)[0]


def _statement_table(fn, est):
    lines = inspect.getsource(fn).splitlines()
    print(f"  {'line':>4s}  {'flops':>7s} {'moved ld':>9s} {'moved st':>9s} "
          f"{'temps':>5s}  source")
    for s in est.statements:
        if not (s.flops or s.loads_bytes or s.stores_bytes or s.temp_allocs):
            continue
        src = lines[s.lineno - 1].strip() if s.lineno <= len(lines) else "?"
        print(f"  {s.lineno:4d}  {s.flops:7.0f} {s.loads_bytes:9.0f} "
              f"{s.stores_bytes:9.0f} {s.temp_allocs:5d}  {src[:48]}")


def walk(kernel, before_fn, after_variant):
    before = _variant(kernel, f"{after_variant.name}_before", before_fn)
    args_before = _probe_args(kernel, before.name)
    args_after = _probe_args(kernel, after_variant.name)

    print(f"== {kernel}.{after_variant.name}: before the fix " + "=" * 20)
    for f in dataflow_variant(before):
        if f.rule in ("L007", "L008", "L009", "L010"):
            print(f"  {f}")
    est_before, _ = dataflow_estimate(before, args_before)
    _statement_table(before_fn, est_before)

    est_after, _ = dataflow_estimate(after_variant, args_after)
    print(f"\n  {'':8s} {'flops':>8s} {'moved bytes':>12s} {'footprint':>10s} "
          f"{'temps':>6s} {'temp bytes':>10s} {'AI (F/B)':>9s}")
    for label, est in (("before", est_before), ("after", est_after)):
        print(f"  {label:8s} {est.flops:8.0f} {est.bytes_total:12.0f} "
              f"{est.footprint_bytes:10.0f} {est.temp_allocs:6d} "
              f"{est.temp_bytes:10.0f} {est.intensity:9.3f}")

    # whatever the fix bought, it must not change the work itself
    assert est_after.flops == est_before.flops

    model = cpu_roofline(generic_server_cpu())
    pts = [AppPoint.from_estimate(f"{kernel} {l} (static)", e)
           for l, e in (("before", est_before), ("after", est_after))]
    print(f"\n  static placement on {model.name}:")
    for p in pts:
        print(f"    {p.name:28s} AI {p.intensity:7.3f} F/B -> "
              f"{model.attainable(p.intensity) / 1e9:7.1f} GF/s attainable")
    print()
    return est_before, est_after


# -- 1. the L009 gather fix in spmv.csr_numpy -------------------------------

spmv_after = REGISTRY.get("spmv", "csr_numpy")
b, a = walk("spmv", spmv_csr_before, spmv_after)

# an allocation win: in-place scaling writes the same cells (moved bytes
# unchanged) but one full-size temporary disappears
assert a.temp_allocs < b.temp_allocs
assert a.temp_bytes < b.temp_bytes
assert a.bytes_total == b.bytes_total

# and the shipped (fixed) variant no longer fires any traffic rule
assert not [f for f in dataflow_variant(spmv_after)
            if f.rule in ("L007", "L008", "L009", "L010")
            and f.severity == "warning"]

# -- 2. the L007 temp-chain + L009 copy fix in fft.vectorized ---------------

fft_after = REGISTRY.get("fft", "vectorized")
b, a = walk("fft", fft_vectorized_before, fft_after)

# a traffic win: the .copy() of an already-fresh gather moved real bytes,
# so removing it raises the static intensity — the roofline point climbs
assert a.bytes_total < b.bytes_total
assert a.intensity > b.intensity
assert a.temp_allocs < b.temp_allocs  # the scratch-buffer L007 fix, too

# the redundant copy is gone; the butterfly's remaining temp chain is a
# *declared* expectation (lint_expect), not an open warning
after_findings = dataflow_variant(fft_after)
assert not [f for f in after_findings if f.rule == "L009"]
assert all(f.severity != "warning" for f in after_findings)

print("both fixes verified: same flops, fewer temporaries, "
      "and the fft point climbs the roofline")
