#!/usr/bin/env python
"""Execution backends: real multicore speedup on the course's own kernels.

The paper's stage-4 lesson — pick the executor that matches where the
kernel spends its time — demonstrated with measured wall-clock, not a
model:

* a GIL-bound scalar matmul (threads cannot help, processes can: operands
  travel as zero-copy shared-memory views, never pickled matrices);
* a NumPy-bound matmul (the GIL is released inside BLAS, so threads and
  processes are both real parallelism);
* a backend-parallel tuning search whose history is byte-identical to the
  serial search.

Run:  python examples/backend_speedup.py
"""

import os

from repro.kernels import REGISTRY, matmul_chunked, random_matrices
from repro.parallel import ThreadBackend, compare_backends
from repro.tuning import EvaluationHarness, GridSearch, IntegerParam, SearchSpace

WORKERS = 4
N_SCALAR = 48
N_NUMPY = 256


def run_builder(n, inner):
    a, b, c = random_matrices(n, seed=0)

    def run(backend):
        c.fill(0.0)
        matmul_chunked(a, b, c, workers=WORKERS, backend=backend, inner=inner)

    return run


def heading(text):
    print(f"\n=== {text} ===")


def main():
    print(f"host exposes {os.cpu_count()} core(s); {WORKERS} workers requested")

    heading(f"GIL-bound scalar matmul (n={N_SCALAR})")
    for t in compare_backends(run_builder(N_SCALAR, "scalar"), workers=WORKERS,
                              repetitions=2, warmup=0):
        print(f"  {t}")
    print("  threads are GIL-capped here; only processes buy real speedup")

    heading(f"NumPy-bound matmul (n={N_NUMPY})")
    for t in compare_backends(run_builder(N_NUMPY, "numpy"), workers=WORKERS,
                              repetitions=2, warmup=0):
        print(f"  {t}")
    print("  BLAS releases the GIL: thread ≈ process")

    heading("backend-parallel tuning, byte-identical to serial")

    def objective(config):
        return 1e-3 * ((config["x"] - 5) ** 2 + 1)

    space = SearchSpace([IntegerParam("x", low=0, high=10, default_value=5)])
    serial = GridSearch().run(space, EvaluationHarness(objective, kernel="bowl"))
    with ThreadBackend(WORKERS) as backend:
        parallel = GridSearch().run(
            space, EvaluationHarness(objective, kernel="bowl", backend=backend))
    print(f"  serial best:   {serial.best_config}  ({len(serial.history)} evals)")
    print(f"  parallel best: {parallel.best_config}")
    print(f"  histories byte-identical: {serial.to_json() == parallel.to_json()}")

    heading("registered parallel variants")
    for variant in REGISTRY.tunable_variants():
        if variant.technique == "parallelization" and "chunked" in variant.name:
            knobs = ", ".join(t.name for t in variant.tunables)
            print(f"  {variant.qualified_name:<20s} tunables: {knobs}")


if __name__ == "__main__":
    main()
