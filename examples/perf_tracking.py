#!/usr/bin/env python
"""Longitudinal performance tracking: store, gate, and drift-scan demo.

Builds a deterministic synthetic benchmark history — ten runs of three
kernels where one kernel quietly steps 40% slower halfway through and
another regresses sharply in the final run — then walks the whole
`repro.perfdb` workflow over it:

    1. append RunRecords to a PerfStore (the JSONL history)
    2. pin a baseline
    3. gate the latest run with compare_runs (the `compare` CI gate)
    4. scan full histories for change points (`history_drift`)
    5. print the sparkline dashboard (`report`)

Everything here also works on *real* runs captured with
``python -m repro.perfdb record benchmarks/``; synthetic times just make
the demo reproducible anywhere.

Run:  python examples/perf_tracking.py
"""

import tempfile

import numpy as np

from repro.perfdb import (
    PerfStore,
    RunRecord,
    compare_runs,
    history_drift,
    report_text,
)

N_RUNS = 10
REPS = 15


def synthetic_times(rng, median):
    """One benchmark's repetition times: tight noise around a median."""
    return list(np.abs(rng.normal(median, 0.02 * median, REPS)))


def median_for(run_index, kernel):
    """The planted history: one drift step, one final-run regression."""
    if kernel == "matmul":
        # regresses sharply in the very last run (a bad commit)
        return 1.0e-3 if run_index < N_RUNS - 1 else 2.1e-3
    if kernel == "histogram":
        # steps 40% slower halfway through and stays there (quiet drift a
        # pairwise latest-vs-previous gate would never flag)
        return 4.0e-4 if run_index < N_RUNS // 2 else 5.6e-4
    return 2.5e-3  # stencil: healthy throughout


def main() -> None:
    rng = np.random.default_rng(7)
    store = PerfStore(tempfile.mkdtemp(prefix="perfdb-demo-"))

    print(f"== 1. recording {N_RUNS} synthetic runs -> {store.root}")
    for i in range(N_RUNS):
        samples = {f"kernels/{k}": synthetic_times(rng, median_for(i, k))
                   for k in ("matmul", "histogram", "stencil")}
        store.append(RunRecord.new(
            samples, label=f"edition{i}", machine={}, git_sha=f"{i:07x}a",
            created=1700000000.0 + 86400.0 * i))
    print(f"   stored {len(store.runs())} runs, "
          f"{len(store.benchmark_ids())} benchmarks each")

    print("\n== 2. pin the first run as baseline")
    baseline = store.set_baseline(store.runs()[0].run_id)
    print(f"   {baseline.describe()}")

    print("\n== 3. gate the latest run (what `compare` does in CI)")
    verdict = compare_runs(store.latest(), store.baseline())
    print(verdict.report())
    assert not verdict.ok, "the planted matmul regression must trip the gate"
    (worst,) = [r for r in verdict.regressions if "matmul" in r.benchmark_id]
    print(f"   -> CI would exit 1: {worst.benchmark_id} is "
          f"{worst.ratio:.2f}x the baseline")

    print("\n== 4. drift scan over full histories (what pairwise gates miss)")
    for bid in store.benchmark_ids():
        points = history_drift(store.runs(), bid)
        if not points:
            print(f"   {bid}: no change points")
        for cp in points:
            print(f"   {bid}: shifted {cp.rel_change:+.0%} at run "
                  f"{cp.run_id} (run #{cp.index})")
    assert any(history_drift(store.runs(), b) for b in store.benchmark_ids())

    print("\n== 5. the dashboard (what `report` prints)")
    print(report_text(store))


if __name__ == "__main__":
    main()
