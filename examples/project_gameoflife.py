#!/usr/bin/env python
"""Project example: Game of Life — the paper's second most popular project.

Optimization ladder with real timings (scalar -> vectorized -> convolution),
a Karp-Flatt look at where the time goes, and generation-rate reporting.

Run:  python examples/project_gameoflife.py
"""

import numpy as np

from repro.analytical import fit_power_law
from repro.kernels import (
    life_step_convolve,
    life_step_numpy,
    life_step_scalar,
    life_work,
    random_board,
    run_life,
)
from repro.timing import measure

N = 512
GENERATIONS = 10


def main() -> None:
    board = random_board(N, seed=3)
    work = life_work(N).scale(GENERATIONS)
    print(f"project: {N}x{N} Game of Life, {GENERATIONS} generations "
          f"({N * N * GENERATIONS / 1e6:.1f} M cell updates)")

    # scalar reference at small sizes + power-law extrapolation
    sizes = [32, 48, 64]
    times = [measure(lambda s=s: life_step_scalar(random_board(s, seed=1)),
                     repetitions=1, warmup=0).summary.median
             for s in sizes]
    fit = fit_power_law([s * s for s in sizes], times)
    scalar_estimate = fit.predict(N * N) * GENERATIONS
    print(f"scalar reference: T ~ cells^{fit.exponent:.2f}, "
          f"estimated {scalar_estimate:.1f}s for the full run")

    # a statistically disciplined comparison: medians, CIs, significance
    from repro.timing import compare_variants

    table = compare_variants({
        "numpy-shifted": lambda: run_life(board, GENERATIONS, life_step_numpy),
        "scipy-convolve": lambda: run_life(board, GENERATIONS,
                                           life_step_convolve),
    }, baseline="numpy-shifted", repetitions=5, warmup=1)
    print(table.report())
    results = {r.name: r.summary.median for r in table.results}
    for name, t in results.items():
        rate = N * N * GENERATIONS / t
        print(f"  {name:15s} {rate / 1e6:8.1f} Mcells/s  "
              f"(x{scalar_estimate / t:,.0f} vs scalar)")

    # correctness gate: both optimized variants track the scalar rule set
    small = random_board(64, seed=9)
    ref = life_step_scalar(small)
    assert np.array_equal(life_step_numpy(small), ref)
    assert np.array_equal(life_step_convolve(small), ref)
    print("correctness: optimized variants match the scalar rules")

    # reflection (lesson 5: report negative results too)
    best = min(results, key=results.get)
    worst = max(results, key=results.get)
    print(f"\nreflection: {best} wins; {worst} pays "
          f"{results[worst] / results[best]:.2f}x overhead"
          f" — a library is not automatically the fastest rung.")


if __name__ == "__main__":
    main()
