#!/usr/bin/env python
"""The source-transformation flywheel: lint → rewrite → verify → tune → record.

The static analyzer (`examples/static_analysis.py`) *names* the
anti-patterns in each registered variant; `repro.transform` *fixes* the
mechanical ones.  This script walks the whole loop on the shipped
registry:

    1. `transform_candidates` — a lint sweep picks every (variant, rule)
       pair a rewrite pass exists for
    2. `apply_rule`           — the pass rewrites the variant's AST; the
       synthesized `<variant>.auto_<rule>` function is verified by the
       shadow interpreter (work count), the hazard detector, a stale-
       lint-expect recomputation, and bit-exact fixed-seed probes before
       it may register
    3. `run_flywheel`         — verified autos are tuned (random search)
       and measured against their source variant with the adaptive
       engine; a speedup is claimed only when Mann-Whitney *and* the
       bootstrap ratio CI agree

Just as instructive as the rewrites are the refusals: the CSR dot
product is a floating-point reduction (vectorizing would reassociate),
the CSC kernel is a scatter, the FFT body carries five statements —
each is left untouched with the reason, exactly like a compiler's
vectorization report.

Run:  python examples/transform_flywheel.py          (honest sizes)
      REPRO_BENCH_SMOKE=1 python examples/transform_flywheel.py
"""

from repro.kernels import REGISTRY
from repro.kernels.base import KernelRegistry
from repro.transform import run_flywheel, transform_candidates

# -- 1. what would the flywheel even try? -----------------------------------

candidates = transform_candidates(REGISTRY)
print(f"{len(candidates)} rewrite candidate(s) from the lint sweep:")
for variant, rule in candidates:
    print(f"    {variant.qualified_name:24s} {rule}")
print()

# -- 2-3. the full loop, against a scratch registry -------------------------
#
# A fresh registry keeps the example re-runnable: the shipped REGISTRY
# never accumulates auto-variants behind your back.

scratch = KernelRegistry()
for kernel in REGISTRY.kernels():
    for variant in REGISTRY.variants_of(kernel):
        scratch.add(variant)

report = run_flywheel(registry=scratch)
print(report.render_text())
print()

# -- what registered, what refused, what got faster -------------------------

for entry in report.verified:
    auto = entry.report.auto_variant
    kernel, _, name = auto.partition(".")
    print(f"registered {auto}")
    print(f"    source: {scratch.get(kernel, name).description}")
for entry in report.gated_speedups:
    lo, hi = entry.ratio_ci
    print(f"gated speedup {entry.report.auto_variant}: "
          f"{entry.speedup:.2f}x (ratio CI [{lo:.3f}, {hi:.3f}])")

assert report.ok(), "the shipped registry must keep the flywheel green"
