#!/usr/bin/env python
"""Assignment 2: analytical modeling and microbenchmarking.

Models matmul and histogram at three granularities, calibrates the models
from the (simulated) microbenchmark suite and the instruction tables, and
evaluates each model against the simulated ground truth — the granularity/
accuracy/calibration-effort trade-off the assignment teaches.

Run:  python examples/assignment2_analytical.py
"""

from repro.analytical import (
    ECMModel,
    FunctionLevelModel,
    InstructionLevelModel,
    LoopLevelModel,
    LoopTerm,
    evaluate_model,
)
from repro.kernels import histogram_work, matmul_work, random_keys
from repro.machine import generic_server_cpu, generic_server_table
from repro.microbench import characterize_simulated
from repro.simulator import (
    CPUModel,
    analyze_loop,
    histogram_body,
    histogram_trace,
    matmul_inner_body,
    matmul_trace,
)

N_MM = 48
N_H = 50_000
BINS = 32_768


def main() -> None:
    cpu = generic_server_cpu()
    table = generic_server_table()
    simulator = CPUModel(cpu, table)
    single = characterize_simulated(cpu.with_cores(1), table)
    print(single.report())
    print()

    # ---- ground truth: the simulator ----
    truth = {
        "matmul": simulator.run(matmul_trace(N_MM, "ijk"),
                                matmul_inner_body(), N_MM ** 3).seconds,
        "histogram": simulator.run(
            histogram_trace(random_keys(N_H, BINS, seed=1), BINS),
            histogram_body(), N_H).seconds,
    }

    # ---- granularity 1: function-level (2 parameters) ----
    func = FunctionLevelModel(single)
    func_pred = {
        "matmul": func.predict_seconds(matmul_work(N_MM)),
        "histogram": func.predict_seconds(histogram_work(N_H, BINS)),
    }
    print(func.explain(matmul_work(N_MM)))
    print(func.explain(histogram_work(N_H, BINS)))

    # ---- granularity 2: loop-level (per-loop cycles from the port model) ----
    mm_cycles = analyze_loop(matmul_inner_body(), table).cycles_per_iteration
    h_cycles = analyze_loop(histogram_body(), table).cycles_per_iteration
    loop_mm = LoopLevelModel("matmul", (
        LoopTerm("inner k-loop", N_MM ** 3, mm_cycles / cpu.frequency_hz),
    ))
    loop_h = LoopLevelModel("histogram", (
        LoopTerm("bin loop", N_H, h_cycles / cpu.frequency_hz),
    ))
    print()
    print(loop_mm.explain())
    print(loop_h.explain())
    loop_pred = {"matmul": loop_mm.predict_seconds(),
                 "histogram": loop_h.predict_seconds()}

    # ---- granularity 3: instruction-level + cache simulation ----
    instr = InstructionLevelModel(cpu, table)
    instr_pred = {
        "matmul": instr.predict_seconds(matmul_inner_body(), N_MM ** 3,
                                        matmul_trace(N_MM, "ijk")),
        "histogram": instr.predict_seconds(
            histogram_body(), N_H,
            histogram_trace(random_keys(N_H, BINS, seed=1), BINS)),
    }
    print()
    print(instr.explain(matmul_inner_body(), N_MM ** 3))

    # ---- evaluate all three against the ground truth ----
    print()
    for name, preds in (("function-level", func_pred),
                        ("loop-level", loop_pred),
                        ("instruction-level", instr_pred)):
        ev = evaluate_model(name, preds, truth)
        print(ev.report())
        print()

    # ---- bonus: the ECM view of the SIMD triad ----
    from repro.simulator import triad_body

    ecm = ECMModel(cpu, table)
    pred = ecm.predict(triad_body(True), 2, 1, elements_per_iteration=4)
    print(pred.report())
    print("multicore scaling:",
          {p: round(c, 2) for p, c in ecm.scaling_curve(pred, 8).items()})


if __name__ == "__main__":
    main()
