#!/usr/bin/env python
"""Regenerate the paper's own artifacts: Figures 1-2, Tables 1-2, grading.

This is SW-2 + SW-3 plus the grading equations in one runnable script — the
closest thing to executing the paper's artifact appendix end to end.

Run:  python examples/course_report.py
"""

import numpy as np

from repro.course import (
    figure1_text,
    figure2_text,
    final_grade,
    metrics_csv,
    simulate_cohort,
    students_csv,
    table1_text,
    table2_text,
    totals,
    validate_graph,
)


def main() -> None:
    print(figure1_text())
    t = totals()
    print(f"\ntotals: {t['enrolled']} enrolled, {t['passed']} passed, "
          f"{t['respondents']} evaluation respondents over {t['editions']} years")

    print()
    print(table1_text())
    print()
    print(table2_text())
    print()
    print(figure2_text())
    problems = validate_graph()
    print(f"artifact graph audit: {'sound' if not problems else problems}")

    # ---- the grading scheme on one worked example + a cohort ----
    print("\ngrading: a student with project 8.2, assignments 8.0, exam 7.0, "
          "40 quiz points")
    print(f"  final grade (Eq.1): {final_grade(8.2, 8.0, 7.0, 40.0):.2f}")
    cohort = simulate_cohort(93, seed=2023)
    finals = np.array([s.final for s in cohort])
    print(f"  synthetic cohort of 93 completers: mean final "
          f"{finals.mean():.2f}, pass rate "
          f"{np.mean([s.passed for s in cohort]):.0%}")

    # ---- a generated in-class quiz (the S_Q machinery) ----
    from repro.course import generate_quiz

    quiz = generate_quiz(seed=2023)
    print()
    print(quiz.render())
    print(f"  (auto-graded; a perfect quiz adds "
          f"{final_grade(7.0, 7.0, 6.0, 70) - final_grade(7.0, 7.0, 6.0, 0):.1f} "
          f"to the final grade via Eq. 1)")

    # ---- the raw data artifacts ----
    print("\ndata/students.csv (DATA-1):")
    print("  " + students_csv().replace("\n", "\n  ").rstrip())
    print("data/metrics.csv (DATA-2): "
          f"{len(metrics_csv().splitlines()) - 1} rows")


if __name__ == "__main__":
    main()
