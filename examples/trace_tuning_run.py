#!/usr/bin/env python
"""Trace a full auto-tuning run into one Chrome/Perfetto timeline.

The course's workflow-profiling tools (Score-P, VAMPIR, VTune) all answer
the same question: *where did the time go?*  ``repro.observe`` answers it
for this repo's own machinery.  This example runs a real ``tune()`` over
matmul tile sizes through a ``ThreadBackend``, with tracing enabled, and
writes every layer — the search, each evaluation (cache hits included),
the batch dispatch, the worker-side chunk execution, and the individual
timed repetitions inside each chunk — into a single ``.trace.json``.

Open the file at https://ui.perfetto.dev (or chrome://tracing): each
worker appears as its own track, with ``timing.repetition`` spans nested
inside ``backend.chunk`` spans nested under the ``tuning.search`` span
on the coordinator track.

Run:  PYTHONPATH=src python examples/trace_tuning_run.py
      (set REPRO_BENCH_SMOKE=1 for a fast CI-sized run)

The objective closes over the problem arrays, so it is not picklable —
hence the thread backend here.  A module-level objective works the same
way through ``ProcessBackend``, with worker spans reconciled across pids.
"""

import os

from repro.kernels import REGISTRY, random_matrices
from repro.observe import gantt_text, tracing
from repro.tuning import (
    Budget,
    GridSearch,
    timed_objective,
    space_for,
    tune,
)
from repro.parallel import ThreadBackend

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 24 if SMOKE else 40
OUT = "trace_tuning_run.trace.json"


def main() -> None:
    variant = REGISTRY.get("matmul", "tiled")
    objective = timed_objective(variant.fn,
                                setup=lambda cfg: random_matrices(N),
                                warmup=1, repetitions=2 if SMOKE else 3)
    space = space_for(variant)

    with tracing() as tracer:
        with ThreadBackend(2) as backend:
            result = tune(objective, space, GridSearch(),
                          kernel=variant.qualified_name, problem=f"n={N}",
                          backend=backend,
                          budget=Budget(max_evaluations=space.size()))

    tracer.write_chrome_trace(OUT)

    print(result.report())
    print()
    spans = tracer.spans
    kinds = sorted({s.kind for s in spans})
    print(f"captured {len(spans)} spans across layers {kinds}")
    print(f"wrote {OUT} — open it at https://ui.perfetto.dev")
    print()
    print("worker-chunk timeline (same spans, text gantt):")
    chunks = [s for s in spans if s.name == "backend.chunk"]
    print(gantt_text(chunks, width=72, track=lambda s: s.attrs.get("rank"),
                     label="worker"))
    print()
    print(tracer.metrics.report())


if __name__ == "__main__":
    main()
