#!/usr/bin/env python
"""Assignment 1: the Roofline model, start to finish.

Reproduces the assignment pipeline: build the machine roofline (with the
extension ceilings), characterize matmul versions and STREAM triad on it,
optimize guided by the identified bottleneck, and re-model — including the
ASCII roofline chart the students would plot.

Run:  python examples/assignment1_roofline.py
"""

from repro.kernels import matmul_work, triad_work
from repro.machine import generic_server_cpu, generic_server_table
from repro.roofline import (
    AppPoint,
    ascii_roofline,
    cpu_roofline,
    hierarchical_bound,
    hierarchical_traffic,
)
from repro.simulator import (
    CPUModel,
    matmul_inner_body,
    matmul_tiled_trace,
    matmul_trace,
    stream_trace,
    triad_body,
)

N = 64


def main() -> None:
    cpu = generic_server_cpu()
    table = generic_server_table()
    roofline = cpu_roofline(cpu, cores=1)

    # --- model the machine ---
    print(f"machine: {cpu.name}, 1 core")
    print(f"  ridge point {roofline.ridge_point():.2f} FLOP/byte; "
          f"ceilings: {[c.name for c in roofline.compute]}")

    # --- characterize applications: algorithmic intensity ---
    points = [
        AppPoint.from_work("triad", triad_work(10 ** 6)),
        AppPoint.from_work(f"matmul n={N}", matmul_work(N)),
    ]

    # --- measure (simulate) the versions and place achieved points ---
    model = CPUModel(cpu, table)
    body = matmul_inner_body()
    flops = matmul_work(N).flops
    measured = []
    for name, trace in (
        ("matmul-jki", matmul_trace(N, "jki")),
        ("matmul-ijk", matmul_trace(N, "ijk")),
        ("matmul-ikj", matmul_trace(N, "ikj")),
        ("matmul-tiled16", matmul_tiled_trace(N, 16)),
    ):
        sim = model.run(trace, body, N ** 3)
        measured.append(AppPoint.from_traffic(name, flops,
                                              sim.counters.dram_bytes,
                                              seconds=sim.seconds))
    n_triad = 200_000
    sim = model.run(stream_trace(n_triad, "triad"), triad_body(True),
                    n_triad // 4)
    measured.append(AppPoint.from_traffic("triad", 2.0 * n_triad,
                                          sim.counters.dram_bytes,
                                          seconds=sim.seconds))

    print()
    print(roofline.report(points + measured))
    print()
    print(ascii_roofline(roofline, measured, width=64, height=16))

    # --- the extension: hierarchical roofline of the naive version ---
    print()
    traffic = hierarchical_traffic(cpu, matmul_trace(N, "ijk"))
    bound, level = hierarchical_bound(cpu, flops, traffic, cores=1)
    print("hierarchical roofline of matmul-ijk:")
    for t in traffic:
        print(f"  {t.level:5s} traffic {t.bytes_moved / 1e3:10.1f} KB "
              f"-> AI {flops / t.bytes_moved:8.2f} F/B")
    print(f"  binding level: {level} -> bound {bound / 1e9:.1f} GFLOP/s")


if __name__ == "__main__":
    main()
