"""Roofline extensions: cache-aware (hierarchical) roofline and helpers.

The lecture topic is "Roofline model *and extensions*": the plain model
charges all traffic to DRAM, which misclassifies kernels whose working set
lives in cache.  The **hierarchical roofline** instead measures the traffic
at *each* memory level (here: from the cache simulator) and places one
intensity point per level, bounding the kernel by every level's bandwidth
simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.specs import CPUSpec
from ..simulator.cache import MultiLevelCache
from ..simulator.trace import Trace
from .model import AppPoint, RooflineModel, cpu_roofline

__all__ = ["LevelTraffic", "hierarchical_traffic", "hierarchical_points",
           "hierarchical_bound", "effective_intensity"]


@dataclass(frozen=True)
class LevelTraffic:
    """Bytes a kernel moved at one memory-hierarchy level."""

    level: str
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.bytes_moved < 0:
            raise ValueError("traffic cannot be negative")


def hierarchical_traffic(cpu: CPUSpec, trace: Trace, policy: str = "lru",
                         prefetch: bool = True) -> list[LevelTraffic]:
    """Per-level data traffic of a trace, from cache simulation.

    Traffic *into* level k is (misses at level k-1) × line size; L1 traffic
    is every reference's payload (we charge one element, 8 bytes); DRAM
    traffic includes prefetch and writeback transfers.
    """
    hierarchy = MultiLevelCache(cpu.caches, policy=policy, prefetch=prefetch)
    hierarchy.access_trace(trace.addresses, trace.writes)
    out = [LevelTraffic("L1", float(len(trace) * 8))]
    caches = hierarchy.caches
    for k in range(1, len(caches)):
        line = caches[k].level.line_bytes
        # inflow = demand fills + prefetch fills of the level above
        fills = caches[k - 1].stats.misses + caches[k - 1].stats.prefetches
        out.append(LevelTraffic(caches[k].level.name, float(fills * line)))
    out.append(LevelTraffic("DRAM", float(hierarchy.dram_traffic_bytes())))
    return out


def hierarchical_points(name: str, flops: float,
                        traffic: list[LevelTraffic],
                        seconds: float | None = None) -> list[AppPoint]:
    """One roofline point per memory level (the hierarchical roofline).

    Each point's intensity is FLOPs divided by that level's traffic; levels
    with zero traffic are skipped (the kernel never spilled that far).
    """
    if flops <= 0:
        raise ValueError("flops must be positive")
    points = []
    for lt in traffic:
        if lt.bytes_moved > 0:
            points.append(AppPoint.from_traffic(f"{name}@{lt.level}", flops,
                                                lt.bytes_moved, seconds))
    return points


def hierarchical_bound(cpu: CPUSpec, flops: float,
                       traffic: list[LevelTraffic],
                       dtype_bytes: int = 8,
                       cores: int | None = None) -> tuple[float, str]:
    """Tightest performance bound over all levels: (FLOP/s, binding level).

    P ≤ min_level ( B_level · FLOPs / bytes_level ), and ≤ peak compute.
    """
    model = cpu_roofline(cpu, dtype_bytes=dtype_bytes, cores=cores)
    best = model.peak_flops
    binding = model.compute[0].name
    for lt in traffic:
        if lt.bytes_moved <= 0:
            continue
        try:
            bw = model._bandwidth(lt.level).bytes_per_s
        except KeyError:
            continue
        bound = bw * flops / lt.bytes_moved
        if bound < best:
            best, binding = bound, lt.level
    return best, binding


def effective_intensity(flops: float, hierarchy: MultiLevelCache) -> float:
    """Effective (DRAM) arithmetic intensity after caching.

    FLOPs divided by simulated DRAM traffic — what a measured roofline
    (e.g. with LIKWID's memory counters) reports, as opposed to the
    algorithmic intensity of the work model.
    """
    traffic = hierarchy.dram_traffic_bytes()
    if flops <= 0:
        raise ValueError("flops must be positive")
    if traffic == 0:
        return float("inf")
    return flops / traffic
