"""Text rendering of roofline models.

The assignment "suggests tools that can calculate and plot the model
automatically" but asks students to "reflect on the difference between
modeling by hand and by tool".  We provide both: :func:`ascii_roofline`
renders a log-log chart in plain text (terminal/report friendly, no plotting
dependency), and :func:`roofline_csv` exports the series for any external
plotting tool.
"""

from __future__ import annotations

import math

from .model import AppPoint, RooflineModel

__all__ = ["ascii_roofline", "roofline_csv", "log_space"]


def log_space(lo: float, hi: float, n: int) -> list[float]:
    """n log-spaced values in [lo, hi]."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if n < 2:
        raise ValueError("need at least two samples")
    step = (math.log10(hi) - math.log10(lo)) / (n - 1)
    return [10 ** (math.log10(lo) + i * step) for i in range(n)]


def ascii_roofline(model: RooflineModel, points: list[AppPoint] | None = None,
                   width: int = 72, height: int = 20,
                   intensity_range: tuple[float, float] = (2 ** -6, 2 ** 8)) -> str:
    """Render a log-log roofline chart as ASCII art.

    ``*`` marks the primary roofline, ``-`` secondary ceilings, letters mark
    application points (legend below the chart).
    """
    if width < 20 or height < 8:
        raise ValueError("chart too small to be legible")
    lo_i, hi_i = intensity_range
    if lo_i <= 0 or hi_i <= lo_i:
        raise ValueError("invalid intensity range")
    intensities = log_space(lo_i, hi_i, width)

    primary = [model.attainable(i) for i in intensities]
    secondary: list[list[float]] = []
    for comp in model.compute[1:]:
        secondary.append([min(comp.flops_per_s, model.peak_bandwidth * i)
                          for i in intensities])
    for bw in model.bandwidth[1:]:
        secondary.append([min(model.peak_flops, bw.bytes_per_s * i)
                          for i in intensities])

    lo_p = min(min(primary), *(min(s) for s in secondary)) if secondary else min(primary)
    hi_p = model.peak_flops
    points = points or []
    for p in points:
        if p.achieved_flops_per_s:
            lo_p = min(lo_p, p.achieved_flops_per_s)
            hi_p = max(hi_p, p.achieved_flops_per_s)
    lo_p /= 2  # margin
    log_lo, log_hi = math.log10(lo_p), math.log10(hi_p)

    def row_of(value: float) -> int:
        frac = (math.log10(max(value, lo_p)) - log_lo) / (log_hi - log_lo)
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for series, mark in [(s, "-") for s in secondary] + [(primary, "*")]:
        for x, val in enumerate(series):
            grid[height - 1 - row_of(val)][x] = mark

    legend: list[str] = []
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for idx, p in enumerate(points):
        if p.achieved_flops_per_s is None:
            continue
        x = _nearest_index(intensities, p.intensity)
        y = height - 1 - row_of(p.achieved_flops_per_s)
        letter = letters[idx % len(letters)]
        grid[y][x] = letter
        legend.append(f"  {letter}: {p.name} "
                      f"(AI={p.intensity:.3g}, {p.achieved_flops_per_s / 1e9:.2f} GFLOP/s)")

    lines = [f"{model.name}  [log-log: x=AI {lo_i:g}..{hi_i:g} F/B, "
             f"y={lo_p / 1e9:.3g}..{hi_p / 1e9:.3g} GFLOP/s]"]
    for r, row in enumerate(grid):
        y_label = 10 ** (log_hi - (log_hi - log_lo) * r / (height - 1))
        lines.append(f"{y_label / 1e9:8.2f}G |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.extend(legend)
    return "\n".join(lines)


def _nearest_index(values: list[float], target: float) -> int:
    best, best_d = 0, float("inf")
    log_t = math.log10(target)
    for i, v in enumerate(values):
        d = abs(math.log10(v) - log_t)
        if d < best_d:
            best, best_d = i, d
    return best


def roofline_csv(model: RooflineModel, n_samples: int = 64,
                 intensity_range: tuple[float, float] = (2 ** -6, 2 ** 8)) -> str:
    """CSV export: intensity column plus one attainable column per roof pair."""
    lo, hi = intensity_range
    intensities = log_space(lo, hi, n_samples)
    series = model.series(intensities)
    header = ",".join(["intensity_flop_per_byte"]
                      + [label.replace(",", ";") for label in series])
    rows = [header]
    for i, intensity in enumerate(intensities):
        row = [f"{intensity:.6g}"] + [f"{series[label][i]:.6g}" for label in series]
        rows.append(",".join(row))
    return "\n".join(rows)
