"""Roofline model and extensions (Assignment 1)."""

from .extensions import (
    LevelTraffic,
    effective_intensity,
    hierarchical_bound,
    hierarchical_points,
    hierarchical_traffic,
)
from .model import (
    AppPoint,
    BandwidthCeiling,
    ComputeCeiling,
    RooflineModel,
    cpu_roofline,
    gpu_roofline,
)
from .plot import ascii_roofline, log_space, roofline_csv

__all__ = [
    "ComputeCeiling",
    "BandwidthCeiling",
    "RooflineModel",
    "AppPoint",
    "cpu_roofline",
    "gpu_roofline",
    "LevelTraffic",
    "hierarchical_traffic",
    "hierarchical_points",
    "hierarchical_bound",
    "effective_intensity",
    "ascii_roofline",
    "roofline_csv",
    "log_space",
]
