"""The Roofline model (Williams, Waterman & Patterson, 2009) — Assignment 1.

The model bounds attainable performance P of a kernel with arithmetic
intensity I (FLOP/byte) on a machine with peak compute F (FLOP/s) and
sustainable memory bandwidth B (bytes/s):

    P(I) = min(F, B · I)

Assignment 1 has students build this model for a machine, characterize
matrix-multiplication variants on it, optimize guided by the identified
bottleneck, and re-model — demonstrating that the model "is able to capture
different versions of the same code".  This module supports exactly that
workflow: machine rooflines with multiple compute and bandwidth ceilings,
application characterization from work models / measurements / simulations,
bound classification, and text/CSV rendering for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.specs import CPUSpec, GPUSpec
from ..timing.metrics import WorkCount

__all__ = [
    "ComputeCeiling",
    "BandwidthCeiling",
    "RooflineModel",
    "AppPoint",
    "cpu_roofline",
    "gpu_roofline",
]


@dataclass(frozen=True)
class ComputeCeiling:
    """A horizontal roof: peak FLOP/s under some restriction.

    Restrictions order ceilings downwards: full SIMD+FMA peak, SIMD without
    FMA, scalar code, etc.  Assignment reports read off how much headroom a
    missing optimization leaves on the table.
    """

    name: str
    flops_per_s: float

    def __post_init__(self) -> None:
        if self.flops_per_s <= 0:
            raise ValueError(f"ceiling {self.name!r} must be positive")


@dataclass(frozen=True)
class BandwidthCeiling:
    """A diagonal roof: sustainable bandwidth of one memory level."""

    name: str
    bytes_per_s: float

    def __post_init__(self) -> None:
        if self.bytes_per_s <= 0:
            raise ValueError(f"ceiling {self.name!r} must be positive")


@dataclass(frozen=True)
class AppPoint:
    """One application (version) placed on the roofline.

    Attributes
    ----------
    name:
        Label, e.g. ``"matmul-ijk n=256"``.
    intensity:
        Arithmetic intensity in FLOP/byte.  *Algorithmic* intensity uses
        the work model's compulsory traffic; *effective* intensity divides
        by measured/simulated DRAM traffic instead (always ≤ algorithmic).
    achieved_flops_per_s:
        Measured performance, if available (None for model-only points).
    """

    name: str
    intensity: float
    achieved_flops_per_s: float | None = None

    def __post_init__(self) -> None:
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if self.achieved_flops_per_s is not None and self.achieved_flops_per_s < 0:
            raise ValueError("achieved performance cannot be negative")

    @classmethod
    def from_work(cls, name: str, work: WorkCount,
                  seconds: float | None = None) -> "AppPoint":
        """Point from a work model, optionally with a measured runtime."""
        achieved = work.flops / seconds if seconds else None
        return cls(name, work.intensity, achieved)

    @classmethod
    def from_traffic(cls, name: str, flops: float, traffic_bytes: float,
                     seconds: float | None = None) -> "AppPoint":
        """Point with *effective* intensity from measured/simulated traffic."""
        if flops <= 0 or traffic_bytes <= 0:
            raise ValueError("flops and traffic must be positive")
        achieved = flops / seconds if seconds else None
        return cls(name, flops / traffic_bytes, achieved)

    @classmethod
    def from_estimate(cls, name: str, estimate,
                      seconds: float | None = None) -> "AppPoint":
        """Point from a static estimate (duck-typed: ``flops``/``bytes_total``).

        Places a kernel variant on the roofline *without executing it*.
        Accepts either a :class:`~repro.analyze.WorkEstimate` (compulsory
        footprint from the shadow interpreter) or a
        :class:`~repro.analyze.DataflowEstimate`, whose ``bytes_total`` is
        *moved* traffic — temporaries and re-reads included — so a
        temp-chained variant lands at a lower static intensity than its
        ``out=`` twin.
        """
        return cls.from_traffic(name, estimate.flops, estimate.bytes_total,
                                seconds)


class RooflineModel:
    """A machine roofline: one or more compute and bandwidth ceilings.

    The *primary* ceilings (first of each list) define the classic
    two-segment roofline; extra ceilings add the refinements the course's
    "Roofline model and extensions" lecture covers (no-FMA, scalar, and
    per-cache-level bandwidth roofs).
    """

    def __init__(self, name: str, compute: list[ComputeCeiling],
                 bandwidth: list[BandwidthCeiling]):
        if not compute or not bandwidth:
            raise ValueError("need at least one compute and one bandwidth ceiling")
        self.name = name
        # list order is meaningful: the FIRST ceiling of each list is the
        # primary one (classic roofline = peak SIMD+FMA over DRAM); extra
        # ceilings are refinements, whatever their magnitude.
        self.compute = list(compute)
        self.bandwidth = list(bandwidth)

    # -- core queries -------------------------------------------------------

    @property
    def peak_flops(self) -> float:
        return self.compute[0].flops_per_s

    @property
    def peak_bandwidth(self) -> float:
        return self.bandwidth[0].bytes_per_s

    def ridge_point(self, compute_name: str | None = None,
                    bandwidth_name: str | None = None) -> float:
        """Intensity where the chosen roofs intersect (FLOP/byte)."""
        f = self._compute(compute_name).flops_per_s
        b = self._bandwidth(bandwidth_name).bytes_per_s
        return f / b

    def attainable(self, intensity: float, compute_name: str | None = None,
                   bandwidth_name: str | None = None) -> float:
        """P(I) = min(F, B·I) for the chosen ceilings."""
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        f = self._compute(compute_name).flops_per_s
        b = self._bandwidth(bandwidth_name).bytes_per_s
        return min(f, b * intensity)

    def classify(self, intensity: float, compute_name: str | None = None,
                 bandwidth_name: str | None = None) -> str:
        """``"memory-bound"`` or ``"compute-bound"`` vs the chosen roofs."""
        ridge = self.ridge_point(compute_name, bandwidth_name)
        return "memory-bound" if intensity < ridge else "compute-bound"

    def efficiency(self, point: AppPoint) -> float | None:
        """Achieved / attainable for a measured point (None if unmeasured)."""
        if point.achieved_flops_per_s is None:
            return None
        return point.achieved_flops_per_s / self.attainable(point.intensity)

    def bounding_ceiling(self, intensity: float) -> str:
        """Name of the primary ceiling binding at this intensity."""
        if intensity < self.ridge_point():
            return self.bandwidth[0].name
        return self.compute[0].name

    # -- reporting ------------------------------------------------------------

    def report(self, points: list[AppPoint]) -> str:
        """Plain-text assignment-style report placing points under the model."""
        lines = [f"Roofline model: {self.name}"]
        lines.append(f"  peak compute : {self.peak_flops / 1e9:10.2f} GFLOP/s"
                     f" ({self.compute[0].name})")
        lines.append(f"  peak bandwidth: {self.peak_bandwidth / 1e9:9.2f} GB/s"
                     f" ({self.bandwidth[0].name})")
        lines.append(f"  ridge point  : {self.ridge_point():10.3f} FLOP/byte")
        header = (f"  {'application':28s} {'AI(F/B)':>9s} {'bound':>14s} "
                  f"{'attainable':>12s} {'achieved':>10s} {'effic.':>7s}")
        lines.append(header)
        for p in points:
            att = self.attainable(p.intensity)
            eff = self.efficiency(p)
            ach = (f"{p.achieved_flops_per_s / 1e9:9.2f}G"
                   if p.achieved_flops_per_s is not None else "      n/a")
            eff_s = f"{eff:6.1%}" if eff is not None else "   n/a"
            lines.append(
                f"  {p.name:28s} {p.intensity:9.3f} {self.classify(p.intensity):>14s} "
                f"{att / 1e9:10.2f}G {ach:>10s} {eff_s:>7s}")
        return "\n".join(lines)

    def series(self, intensities: list[float]) -> dict[str, list[float]]:
        """Attainable-performance series per primary ceiling pair.

        Returns ``{label: [P(I), ...]}`` for plotting; one series per
        (compute, bandwidth) primary combination plus each extra ceiling.
        """
        out: dict[str, list[float]] = {}
        for comp in self.compute:
            for bw in self.bandwidth:
                label = f"{comp.name}|{bw.name}"
                out[label] = [min(comp.flops_per_s, bw.bytes_per_s * i)
                              for i in intensities]
        return out

    # -- helpers -----------------------------------------------------------

    def _compute(self, name: str | None) -> ComputeCeiling:
        if name is None:
            return self.compute[0]
        for c in self.compute:
            if c.name == name:
                return c
        raise KeyError(f"no compute ceiling {name!r}")

    def _bandwidth(self, name: str | None) -> BandwidthCeiling:
        if name is None:
            return self.bandwidth[0]
        for b in self.bandwidth:
            if b.name == name:
                return b
        raise KeyError(f"no bandwidth ceiling {name!r}")


def cpu_roofline(cpu: CPUSpec, dtype_bytes: int = 8,
                 cores: int | None = None,
                 include_cache_levels: bool = True,
                 measured_bandwidth: float | None = None) -> RooflineModel:
    """Roofline of a CPU spec, with the standard optimization ceilings.

    Compute roofs: SIMD+FMA peak, SIMD-without-FMA, scalar+FMA, scalar.
    Bandwidth roofs: DRAM (the spec's sustainable number, or a measured
    STREAM result if provided) plus, optionally, each cache level's
    bandwidth — the "cache-aware Roofline" extension.
    """
    n = cpu.cores if cores is None else cores
    peak = cpu.peak_flops(dtype_bytes, cores=n)
    fma_factor = 2 if cpu.vector.fma else 1
    simd_lanes = cpu.vector.lanes(dtype_bytes)
    compute = [ComputeCeiling("peak (SIMD+FMA)", peak)]
    if cpu.vector.fma:
        compute.append(ComputeCeiling("no FMA", peak / 2))
    compute.append(ComputeCeiling("scalar+FMA" if cpu.vector.fma else "scalar",
                                  peak / simd_lanes))
    if cpu.vector.fma:
        compute.append(ComputeCeiling("scalar", peak / simd_lanes / fma_factor))

    dram = measured_bandwidth if measured_bandwidth else cpu.stream_bandwidth
    bandwidth = [BandwidthCeiling("DRAM", dram)]
    if include_cache_levels:
        for level in cpu.caches:
            # bandwidth_bytes_per_cycle is per core: private caches
            # trivially, shared LLCs because they are sliced per core on
            # modern designs — so every cache roof scales with cores used.
            agg = level.bandwidth_bytes_per_cycle * cpu.frequency_hz * n
            bandwidth.append(BandwidthCeiling(level.name, agg))
    label = f"{cpu.name} ({n}/{cpu.cores} cores, fp{dtype_bytes * 8})"
    return RooflineModel(label, compute, bandwidth)


def gpu_roofline(gpu: GPUSpec, dtype_bytes: int = 4,
                 include_pcie: bool = True) -> RooflineModel:
    """Roofline of a GPU: device peak vs HBM, plus the PCIe transfer roof.

    The PCIe ceiling is the course's standard teaching device for offload
    decisions: a kernel whose data crosses the bus each call must clear the
    (much lower) PCIe roof, not the HBM one.
    """
    compute = [ComputeCeiling(f"fp{dtype_bytes * 8} peak", gpu.peak_flops(dtype_bytes))]
    bandwidth = [BandwidthCeiling("HBM", gpu.memory_bandwidth_bytes_per_s)]
    if include_pcie:
        bandwidth.append(BandwidthCeiling("PCIe", gpu.pcie_bandwidth_bytes_per_s))
    return RooflineModel(f"{gpu.name} (fp{dtype_bytes * 8})", compute, bandwidth)
