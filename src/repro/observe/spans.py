"""Structured spans and tracers — the toolbox's Score-P/VTune substitution.

A :class:`Span` is one named, timed interval with attributes; a
:class:`Tracer` collects spans (nested per thread, reconciled across
processes) and owns a :class:`~repro.observe.metrics.MetricsRegistry` for
the counters instrumented code attaches alongside.  The key property is
that tracing is **off by default and nearly free when off**: the active
tracer is a :class:`NullTracer` whose ``span()`` returns a shared no-op
context manager, so instrumented hot paths (``measure``'s repetition loop,
the tuning harness, backend chunk dispatch) pay only a method call and an
attribute lookup — the overhead benchmark in
``benchmarks/test_bench_observe.py`` pins this below a few percent.

Enable tracing three ways, most specific wins:

* pass ``tracer=`` explicitly to an instrumented entry point;
* install one for a region: ``with tracing() as t: ...`` (thread-local,
  safe under concurrent thread workers);
* set ``REPRO_TRACE=1`` in the environment (process-wide).

Span times come from ``time.perf_counter`` — on Linux a system-wide
monotonic clock — so spans captured in forked worker processes line up
with the parent's on one timeline; exporters normalize to the earliest
span start.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

from .metrics import METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
]


@dataclass(frozen=True)
class Span:
    """One named, closed time interval — the unit every exporter consumes.

    Picklable by construction (primitives only), because process-backend
    workers ship their spans back to the parent for reconciliation.
    ``start``/``end`` are ``perf_counter`` seconds; ``category`` groups
    spans for glyph/color selection (defaults to the name's first dotted
    component); ``attrs`` carries counters and metadata (config dicts,
    repetition seconds, operational intensity, ...).
    """

    name: str
    start: float
    end: float
    category: str = ""
    pid: int = 0
    tid: int = 0
    span_id: int = 0
    parent_id: int | None = None
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def kind(self) -> str:
        """Category if set, else the name's first dotted component."""
        return self.category or self.name.split(".", 1)[0]

    def with_attrs(self, **extra) -> "Span":
        return replace(self, attrs={**self.attrs, **extra})


class _SpanHandle:
    """Context manager for one in-flight span; records on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_start",
                 "_span_id", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(tracer._ids)
        stack.append(self._span_id)
        self._start = tracer._clock()
        return self

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute while the span is open."""
        self._attrs[key] = value

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._record(Span(
            name=self._name, start=self._start, end=end,
            category=self._category, pid=tracer.pid,
            tid=threading.get_ident(), span_id=self._span_id,
            parent_id=self._parent_id, attrs=dict(self._attrs)))


class _NullSpan:
    """Shared no-op span handle: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and metrics for one observed run.

    Thread-safe: spans may close concurrently from thread-pool workers.
    ``metrics`` defaults to the process-wide
    :data:`~repro.observe.metrics.METRICS` registry; pass a fresh
    :class:`MetricsRegistry` to isolate a run's counters.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 metrics: MetricsRegistry | None = None):
        self._clock = clock
        self.pid = os.getpid()
        self.metrics = metrics if metrics is not None else METRICS
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, category: str = "", **attrs) -> _SpanHandle:
        """Open a nested span: ``with tracer.span("tuning.evaluate"): ...``"""
        return _SpanHandle(self, name, category, attrs)

    def record(self, name: str, start: float, end: float, category: str = "",
               pid: int | None = None, tid: int | None = None,
               **attrs) -> Span:
        """Record a span from explicit, caller-measured timestamps."""
        span = Span(name=name, start=start, end=end, category=category,
                    pid=self.pid if pid is None else pid,
                    tid=threading.get_ident() if tid is None else tid,
                    span_id=next(self._ids), attrs=dict(attrs))
        self._record(span)
        return span

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- cross-tracer reconciliation ----------------------------------------

    def adopt(self, spans: Iterable[Span]) -> None:
        """Merge spans captured by another tracer (a shipped worker batch)."""
        spans = list(spans)
        with self._lock:
            self._spans.extend(spans)

    def drain(self) -> list[Span]:
        """Pop every recorded span (workers ship the drained batch back)."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    @property
    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    # -- metrics convenience -------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- exports (delegated) -------------------------------------------------

    def chrome_trace(self) -> dict:
        """Chrome ``trace_event`` document (see :mod:`repro.observe.export`)."""
        from .export import chrome_trace
        return chrome_trace(self.spans, metrics=self.metrics)

    def write_chrome_trace(self, path) -> None:
        from .export import write_chrome_trace
        write_chrome_trace(path, self.spans, metrics=self.metrics)

    def gantt(self, width: int = 80) -> str:
        """Text gantt of this tracer's spans (one row per pid/tid track)."""
        from .export import gantt_text
        return gantt_text(self.spans, width=width)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    ``span()`` returns a single shared handle, so the instrumented hot
    paths allocate nothing; metric methods drop their updates.
    """

    enabled = False

    def span(self, name: str, category: str = "", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float, category: str = "",
               pid: int | None = None, tid: int | None = None, **attrs):
        return None

    def adopt(self, spans: Iterable[Span]) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


# ---------------------------------------------------------------------------
# active-tracer resolution
# ---------------------------------------------------------------------------

_NULL = NullTracer()
_GLOBAL: Tracer | None = None
_ENV_TRACER: Tracer | None = None
_LOCAL = threading.local()


def get_tracer() -> Tracer:
    """The active tracer: thread-local > global > ``REPRO_TRACE`` > null."""
    tracer = getattr(_LOCAL, "tracer", None)
    if tracer is not None:
        return tracer
    if _GLOBAL is not None:
        return _GLOBAL
    if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
        global _ENV_TRACER
        if _ENV_TRACER is None:
            _ENV_TRACER = Tracer()
        return _ENV_TRACER
    return _NULL


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide (``None`` uninstalls); returns the
    previously installed tracer (which may also be ``None``)."""
    global _GLOBAL
    previous, _GLOBAL = _GLOBAL, tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Make ``tracer`` (default: a fresh :class:`Tracer`) active for this
    thread only — safe when thread-pool workers trace concurrently::

        with tracing() as t:
            measure(kernel)
        t.write_chrome_trace("run.trace.json")
    """
    tracer = Tracer() if tracer is None else tracer
    previous = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = tracer
    try:
        yield tracer
    finally:
        _LOCAL.tracer = previous
