"""Span exporters: Chrome ``trace_event`` JSON and the text gantt.

Two consumers of the same :class:`~repro.observe.spans.Span` stream:

* :func:`chrome_trace` / :func:`write_chrome_trace` emit the Chrome
  trace-event format (complete ``"ph": "X"`` events, microsecond
  timestamps) — load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to get the VAMPIR-style zoomable timeline the
  course demonstrates with Score-P traces;
* :func:`gantt_text` renders the same spans as a fixed-width text gantt,
  one row per track — the renderer
  :func:`repro.distributed.tracing.timeline_text` is built on, so the
  mini-MPI simulator and live tracers share one timeline implementation.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from typing import Callable, Iterable, Mapping, Sequence

from .metrics import MetricsRegistry
from .spans import Span

__all__ = ["chrome_trace", "write_chrome_trace", "gantt_text", "auto_glyphs"]


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def _json_safe(value):
    """Clamp attribute values to what JSON can carry."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        value = float(value) if isinstance(value, float) else value
        if isinstance(value, float) and not math.isfinite(value):
            return str(value)
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:  # numpy scalars
        return _json_safe(value.item())
    except AttributeError:
        return str(value)


def chrome_trace(spans: Iterable[Span],
                 metrics: MetricsRegistry | None = None,
                 epoch: float | None = None) -> dict:
    """Spans (plus an optional metrics snapshot) as a trace-event document.

    Timestamps are microseconds relative to ``epoch`` (default: the
    earliest span start across all processes — ``perf_counter`` is
    system-wide on Linux, so forked workers land on the parent's
    timeline).  Worker tracks that were reconciled with a ``rank``
    attribute get ``thread_name`` metadata, so the Perfetto track list
    reads ``rank 0..n-1`` instead of raw thread ids.
    """
    spans = list(spans)
    if epoch is None:
        epoch = min((s.start for s in spans), default=0.0)
    events: list[dict] = []
    track_names: dict[tuple[int, int], str] = {}
    for s in spans:
        args = {str(k): _json_safe(v) for k, v in s.attrs.items()}
        events.append({
            "name": s.name,
            "cat": s.kind,
            "ph": "X",
            "ts": (s.start - epoch) * 1e6,
            "dur": s.duration * 1e6,
            "pid": int(s.pid),
            "tid": int(s.tid),
            "args": args,
        })
        rank = s.attrs.get("rank")
        if rank is not None:
            track_names.setdefault((int(s.pid), int(s.tid)), f"rank {rank}")
    for (pid, tid), name in sorted(track_names.items()):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": name}})
    doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    return doc


def write_chrome_trace(path, spans: Iterable[Span],
                       metrics: MetricsRegistry | None = None) -> None:
    """Write :func:`chrome_trace` output to ``path`` (a ``.trace.json``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, metrics=metrics), fh, indent=1)


# ---------------------------------------------------------------------------
# text gantt
# ---------------------------------------------------------------------------

#: Fallback glyph cycle for kinds without an assigned glyph.
_GLYPH_POOL = "#*+o=%@&"


def auto_glyphs(kinds: Iterable[str]) -> dict[str, str]:
    """Stable kind->glyph assignment: first letter, then the pool."""
    glyphs: dict[str, str] = {}
    used: set[str] = set()
    pool = iter(_GLYPH_POOL * 4)
    for kind in sorted(set(kinds)):
        first = (kind[:1] or "?").upper()
        glyph = first if first not in used else next(
            (g for g in pool if g not in used), "?")
        glyphs[kind] = glyph
        used.add(glyph)
    return glyphs


def gantt_text(spans: Iterable[Span], width: int = 80,
               glyphs: Mapping[str, str] | None = None,
               track: Callable[[Span], object] | None = None,
               label: str = "track",
               t0: float | None = None, t1: float | None = None,
               tracks: Sequence | None = None,
               legend: bool = True) -> str:
    """Render spans as a text gantt: one row per track, one glyph per bucket.

    Each column is a ``(t1 - t0) / width`` bucket; the glyph shows the span
    kind that *dominates* the bucket (idle = space).  Zero-length spans
    (barriers, instant events) are rendered as their glyph whenever their
    bucket is idle-dominated — i.e. real work covers less than half the
    bucket — so instantaneous events are never outvoted into invisibility
    by a sliver of compute.

    ``track`` maps a span to its row key (default ``(pid, tid)``);
    ``tracks`` forces the row set and order (rows without spans render
    idle); ``t0``/``t1`` pin the time axis (default: span extent).
    """
    if width < 10:
        raise ValueError("timeline too narrow")
    spans = list(spans)
    if track is None:
        track = lambda s: (s.pid, s.tid)
    if t0 is None:
        t0 = min((s.start for s in spans), default=0.0)
    if t1 is None:
        t1 = max((s.end for s in spans), default=0.0)
    extent = t1 - t0
    if extent <= 0:
        return "(empty run)"
    if tracks is None:
        tracks = sorted({track(s) for s in spans})
    by_track: dict[object, list[Span]] = defaultdict(list)
    for s in spans:
        by_track[track(s)].append(s)
    if glyphs is None:
        glyphs = auto_glyphs(s.kind for s in spans)
    dt = extent / width
    lines = [f"timeline: {extent * 1e3:.3f} ms total, {dt * 1e6:.1f} us/column"]
    for key in tracks:
        durations: list[dict[str, float]] = [defaultdict(float)
                                             for _ in range(width)]
        instants: list[list[str]] = [[] for _ in range(width)]
        for s in by_track.get(key, ()):
            start, end = s.start - t0, s.end - t0
            b0 = min(width - 1, max(0, int(start / dt)))
            if s.end == s.start:
                instants[b0].append(s.kind)
                continue
            b1 = min(width - 1, int(max(start, end - 1e-15) / dt))
            for b in range(b0, b1 + 1):
                lo = max(start, b * dt)
                hi = min(end, (b + 1) * dt)
                if hi > lo:
                    durations[b][s.kind] += hi - lo
        row = []
        for b in range(width):
            busy = sum(durations[b].values())
            if instants[b] and busy < dt / 2:
                # instantaneous event in an idle-dominated bucket: show it
                row.append(glyphs.get(instants[b][-1], "?"))
            elif durations[b]:
                kind = max(durations[b], key=lambda k: durations[b][k])
                row.append(glyphs.get(kind, "?"))
            else:
                row.append(" ")
        lines.append(f"{label} {key!s:>3} |{''.join(row)}|")
    if legend:
        lines.append("legend: " + "  ".join(f"{g}={k}"
                                            for k, g in glyphs.items()))
    return "\n".join(lines)
