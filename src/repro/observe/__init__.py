"""Unified observability: structured tracing, metrics, and exporters.

The course's profiling/tracing lecture (Table 1: perf, VTune, Nsight,
Score-P, VAMPIR, Scalasca) teaches that optimization starts from
*measurement artifacts you can inspect*.  This package is that layer for
the toolbox — one span format, produced everywhere and consumed by every
view:

==============================  ==========================================
:mod:`repro.observe.spans`      :class:`Span`/:class:`Tracer` context
                                managers with per-thread nesting, a no-op
                                :class:`NullTracer` (tracing is off by
                                default and nearly free when off), the
                                ``REPRO_TRACE`` toggle, and cross-process
                                span adoption
:mod:`repro.observe.metrics`    :class:`MetricsRegistry` — counters,
                                gauges, histograms — with a process-wide
                                :data:`METRICS` default
:mod:`repro.observe.export`     Chrome ``trace_event`` JSON (open in
                                ``chrome://tracing`` / Perfetto) and the
                                shared text-gantt renderer behind
                                :func:`repro.distributed.tracing.timeline_text`
==============================  ==========================================

Instrumented subsystems: :func:`repro.timing.timers.measure` (one span per
warmup/timed repetition), the tuning harness (evaluate / cache-hit /
budget spans and counters), execution backends (worker-side per-chunk
spans shipped back and reconciled onto one timeline, pids/tids mapped to
ranks), and the microbenchmark harness (spans tagged with FLOPs, bytes,
and operational intensity for roofline overlays).

Quickstart::

    from repro.observe import tracing
    from repro.timing import measure

    with tracing() as tracer:
        measure(lambda: sum(range(10_000)), repetitions=5)
    tracer.write_chrome_trace("run.trace.json")   # -> chrome://tracing
    print(tracer.gantt(width=72))                 # text timeline
"""

from .export import auto_glyphs, chrome_trace, gantt_text, write_chrome_trace
from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    snapshot_delta,
)
from .spans import NullTracer, Span, Tracer, get_tracer, set_tracer, tracing

__all__ = [
    # spans
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "snapshot_delta",
    # exporters
    "chrome_trace",
    "write_chrome_trace",
    "gantt_text",
    "auto_glyphs",
]
