"""Process-wide metrics: counters, gauges, histograms.

The numerical counterpart to spans: where a span answers *when and how
long*, a metric answers *how often and how much*.  Instrumented code
reaches metrics through its tracer (:meth:`Tracer.count` & co.), so the
disabled path costs nothing; standalone use goes through a
:class:`MetricsRegistry` (or the shared :data:`METRICS` default).

All three instrument types are deliberately minimal — dict-backed, lock
protected, snapshot-able to plain JSON — because their job here is to ride
along in trace exports, not to feed a scrape endpoint.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS",
           "snapshot_delta"]

#: Default histogram bucket upper bounds: decades from 100ns to 1000s,
#: wide enough for any duration this toolbox measures.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-7, 4))


class Counter:
    """A monotonically increasing count (cache hits, measurements, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += n


class Gauge:
    """A point-in-time value that can move both ways (queue depth, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution summarized into fixed buckets plus running moments.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly ascending")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class MetricsRegistry:
    """Get-or-create home for named instruments; one per process by default.

    A name is bound to one instrument type for the registry's lifetime —
    asking for ``counter("x")`` after ``gauge("x")`` is an error, not a
    silent shadow.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, *args)
            elif not isinstance(instrument, cls):
                raise TypeError(f"metric {name!r} already registered as "
                                f"{type(instrument).__name__}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets)

    def snapshot(self) -> dict:
        """Plain-JSON view of every instrument (what exporters embed)."""
        with self._lock:
            instruments = dict(self._instruments)
        doc: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(instruments.items()):
            if isinstance(inst, Counter):
                doc["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                doc["gauges"][name] = None if math.isnan(inst.value) else inst.value
            elif isinstance(inst, Histogram):
                doc["histograms"][name] = {
                    "count": inst.count,
                    "total": inst.total,
                    "min": None if inst.count == 0 else inst.min,
                    "max": None if inst.count == 0 else inst.max,
                    "buckets": list(inst.buckets),
                    "counts": list(inst.counts),
                }
        return doc

    def report(self) -> str:
        """Readable one-line-per-instrument summary."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name:32s} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name:32s} {value}")
        for name, h in snap["histograms"].items():
            mean = h["total"] / h["count"] if h["count"] else float("nan")
            lines.append(f"histogram {name:32s} n={h['count']} "
                         f"mean={mean:.4e} min={h['min']} max={h['max']}")
        return "\n".join(lines) if lines else "(no metrics)"


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histogram counts/totals are subtracted (instruments absent
    from ``before`` count from zero); gauges keep their ``after`` value, as
    do histogram min/max, which cannot be windowed after the fact.  Zero
    counter deltas are dropped so the result names only what actually moved
    — this is the snapshot a :class:`~repro.perfdb.record.RunRecord`
    attaches to a recorded benchmark run.
    """
    doc: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            doc["counters"][name] = delta
    doc["gauges"] = dict(after.get("gauges", {}))
    for name, h in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name)
        if prev is None:
            doc["histograms"][name] = dict(h)
            continue
        counts = [c - p for c, p in zip(h["counts"], prev["counts"])]
        doc["histograms"][name] = {
            "count": h["count"] - prev["count"],
            "total": h["total"] - prev["total"],
            "min": h["min"],
            "max": h["max"],
            "buckets": list(h["buckets"]),
            "counts": counts,
        }
    return doc


#: The process-wide default registry tracers attach to.
METRICS = MetricsRegistry()
