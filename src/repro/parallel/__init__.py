"""Shared-memory and accelerator parallelism: schedules, teams, GPU model."""

from .gpu import (
    KernelConfig,
    Occupancy,
    OffloadDecision,
    gpu_kernel_time,
    occupancy,
    offload_analysis,
)
from .schedule import SCHEDULES, ScheduleResult, imbalance_ratio, simulate_schedule
from .threads import (
    ParallelPatternMatch,
    RegionCounters,
    SimulatedTeam,
    diagnose_parallel,
    parallel_map,
)

__all__ = [
    "SCHEDULES",
    "ScheduleResult",
    "simulate_schedule",
    "imbalance_ratio",
    "SimulatedTeam",
    "RegionCounters",
    "parallel_map",
    "diagnose_parallel",
    "ParallelPatternMatch",
    "KernelConfig",
    "Occupancy",
    "occupancy",
    "gpu_kernel_time",
    "OffloadDecision",
    "offload_analysis",
]
