"""Shared-memory and accelerator parallelism: schedules, teams, backends, GPU model."""

from .backends import (
    BACKENDS,
    ArrayHandle,
    BackendTiming,
    ExecutionBackend,
    LocalArray,
    ProcessBackend,
    SerialBackend,
    SharedArray,
    ThreadBackend,
    chunk_bounds,
    compare_backends,
    default_chunk,
    make_backend,
    open_backend,
)
from .gpu import (
    KernelConfig,
    Occupancy,
    OffloadDecision,
    gpu_kernel_time,
    occupancy,
    offload_analysis,
)
from .schedule import SCHEDULES, ScheduleResult, imbalance_ratio, simulate_schedule
from .threads import (
    ParallelPatternMatch,
    RegionCounters,
    SimulatedTeam,
    diagnose_parallel,
    parallel_map,
)

__all__ = [
    "SCHEDULES",
    "ScheduleResult",
    "simulate_schedule",
    "imbalance_ratio",
    "SimulatedTeam",
    "RegionCounters",
    "parallel_map",
    "diagnose_parallel",
    "ParallelPatternMatch",
    # execution backends
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ArrayHandle",
    "LocalArray",
    "SharedArray",
    "make_backend",
    "open_backend",
    "chunk_bounds",
    "default_chunk",
    "BackendTiming",
    "compare_backends",
    # GPU model
    "KernelConfig",
    "Occupancy",
    "occupancy",
    "gpu_kernel_time",
    "OffloadDecision",
    "offload_analysis",
]
