"""GPU execution model: occupancy, kernel time, offload decisions.

The course targets CPU+GPU heterogeneous nodes; its GPU material teaches the
CUDA execution model (SMs, warps, occupancy limits) and the offload
trade-off (kernel speedup vs PCIe transfer cost).  Without CUDA hardware we
model both analytically over :class:`~repro.machine.specs.GPUSpec` — the
occupancy calculation is exactly NVIDIA's occupancy-calculator arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.specs import CPUSpec, GPUSpec
from ..timing.metrics import WorkCount

__all__ = ["KernelConfig", "Occupancy", "occupancy", "gpu_kernel_time",
           "OffloadDecision", "offload_analysis"]


@dataclass(frozen=True)
class KernelConfig:
    """A CUDA-style kernel launch configuration."""

    threads_per_block: int
    registers_per_thread: int = 32
    shared_mem_per_block_bytes: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_block < 1:
            raise ValueError("need at least one thread per block")
        if self.registers_per_thread < 1:
            raise ValueError("need at least one register per thread")
        if self.shared_mem_per_block_bytes < 0:
            raise ValueError("shared memory cannot be negative")


@dataclass(frozen=True)
class Occupancy:
    """Occupancy analysis of one kernel configuration on one GPU."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limiter: str

    @property
    def percent(self) -> float:
        return 100.0 * self.occupancy


def occupancy(gpu: GPUSpec, config: KernelConfig) -> Occupancy:
    """NVIDIA occupancy-calculator arithmetic.

    Blocks per SM are limited by (a) warp slots, (b) the register file,
    (c) shared memory; occupancy is resident warps over the SM's maximum.
    """
    if config.threads_per_block > gpu.max_threads_per_block:
        raise ValueError(
            f"{config.threads_per_block} threads/block exceeds the device "
            f"limit {gpu.max_threads_per_block}")
    warps_per_block = math.ceil(config.threads_per_block / gpu.warp_size)

    by_warps = gpu.max_warps_per_sm // warps_per_block
    regs_per_block = config.registers_per_thread * config.threads_per_block
    by_regs = gpu.registers_per_sm // regs_per_block if regs_per_block else by_warps
    if config.shared_mem_per_block_bytes:
        by_smem = gpu.shared_mem_per_sm_bytes // config.shared_mem_per_block_bytes
    else:
        by_smem = by_warps
    by_threads = gpu.max_threads_per_sm // config.threads_per_block

    limits = [(by_warps, "warp-slots"), (by_threads, "thread-slots"),
              (by_regs, "registers"), (by_smem, "shared-memory")]
    blocks, limiter = min(limits, key=lambda lv: lv[0])
    if blocks == 0:
        return Occupancy(0, 0, 0.0, limiter)
    warps = blocks * warps_per_block
    return Occupancy(blocks, warps, warps / gpu.max_warps_per_sm, limiter)


def gpu_kernel_time(gpu: GPUSpec, work: WorkCount, config: KernelConfig,
                    dtype_bytes: int = 4) -> float:
    """Roofline-style kernel time with an occupancy-derated compute peak.

    T = launch_latency + max(flops / (peak · occupancy_factor),
                             bytes / HBM_bandwidth)

    where the occupancy factor saturates at ~50% occupancy (more warps than
    needed to hide latency add nothing — the standard rule of thumb).
    """
    occ = occupancy(gpu, config)
    if occ.occupancy == 0:
        raise ValueError("configuration yields zero occupancy; kernel cannot launch")
    factor = min(1.0, occ.occupancy / 0.5)
    t_comp = work.flops / (gpu.peak_flops(dtype_bytes) * factor)
    t_mem = work.bytes_total / gpu.memory_bandwidth_bytes_per_s
    return gpu.kernel_launch_latency_s + max(t_comp, t_mem)


@dataclass(frozen=True)
class OffloadDecision:
    """CPU-vs-GPU comparison for one kernel invocation."""

    cpu_seconds: float
    gpu_kernel_seconds: float
    transfer_seconds: float
    worthwhile: bool

    @property
    def gpu_total_seconds(self) -> float:
        return self.gpu_kernel_seconds + self.transfer_seconds

    @property
    def speedup(self) -> float:
        return self.cpu_seconds / self.gpu_total_seconds

    @property
    def breakeven_reuses(self) -> float:
        """Kernel invocations per transfer needed for offload to pay off.

        infinity when the GPU kernel alone is slower than the CPU.
        """
        gain = self.cpu_seconds - self.gpu_kernel_seconds
        if gain <= 0:
            return float("inf")
        return self.transfer_seconds / gain


def offload_analysis(cpu: CPUSpec, gpu: GPUSpec, work: WorkCount,
                     transfer_bytes: float, config: KernelConfig,
                     dtype_bytes: int = 4) -> OffloadDecision:
    """Decide whether offloading one kernel call is worthwhile.

    CPU time uses the Roofline bound for the *host* (optimistic for the
    CPU, which biases the analysis against offload — the conservative
    teaching default).
    """
    if transfer_bytes < 0:
        raise ValueError("transfer bytes cannot be negative")
    cpu_seconds = max(work.flops / cpu.peak_flops(8),
                      work.bytes_total / cpu.stream_bandwidth)
    kernel_seconds = gpu_kernel_time(gpu, work, config, dtype_bytes)
    transfer_seconds = transfer_bytes / gpu.pcie_bandwidth_bytes_per_s
    return OffloadDecision(
        cpu_seconds=cpu_seconds,
        gpu_kernel_seconds=kernel_seconds,
        transfer_seconds=transfer_seconds,
        worthwhile=kernel_seconds + transfer_seconds < cpu_seconds,
    )
