"""Pluggable execution backends: serial, threads, and zero-copy processes.

The course's stage-4/stage-5 loop (implement → tune) wants students to
observe *real* multicore speedup on the course's own kernels, but a
``ThreadPoolExecutor`` cannot deliver it for pure-Python scalar code: the
GIL serializes every bytecode-bound chunk.  This module is the paper's
OpenMP substitution made honest — one decomposition, three executors:

* :class:`SerialBackend` — runs chunks inline; the baseline and the
  reference every parallel result is cross-checked against.
* :class:`ThreadBackend` — a thread pool; real speedup only for
  GIL-releasing (NumPy) chunk bodies.
* :class:`ProcessBackend` — a process pool whose operand arrays live in
  ``multiprocessing.shared_memory``: workers receive a tiny
  ``(name, shape, dtype)`` handle and map the *same physical pages*, so
  matrices are never pickled and scalar Python chunks scale across cores.

Array sharing is uniform across backends through :class:`ArrayHandle`:
``backend.share(a)`` returns a handle whose ``.array`` is either the
caller's array itself (serial/thread — already shared address space) or a
shared-memory view (process).  Kernels write through the handle and call
:meth:`ExecutionBackend.gather` to land results back in the caller's
buffer; for serial/thread that is a no-op, preserving in-place semantics.

Backends are context managers and release everything they own on exit:
worker processes are joined and shared segments unlinked even when a chunk
raises (the resource-hygiene tests assert both).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable, Iterable, Sequence

import numpy as np

from ..observe import Span, get_tracer, tracing

__all__ = [
    "BACKENDS",
    "ArrayHandle",
    "LocalArray",
    "SharedArray",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "open_backend",
    "chunk_bounds",
    "BackendTiming",
    "compare_backends",
]

#: Registered backend names, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


# ---------------------------------------------------------------------------
# array handles
# ---------------------------------------------------------------------------


class ArrayHandle(ABC):
    """A backend-appropriate reference to a NumPy array.

    ``.array`` is the view workers read and write; ``release()`` frees any
    resources the handle owns and is idempotent.
    """

    @property
    @abstractmethod
    def array(self) -> np.ndarray:
        ...

    def release(self) -> None:  # pragma: no cover - trivial default
        pass

    @property
    def released(self) -> bool:
        """True once the handle holds no releasable resources."""
        return True


class LocalArray(ArrayHandle):
    """Serial/thread handle: the caller's array itself (zero copies)."""

    __slots__ = ("_array",)

    def __init__(self, array: np.ndarray):
        self._array = array

    @property
    def array(self) -> np.ndarray:
        return self._array


# Worker-side cache of attached segments, keyed by segment name.  Pool
# workers are reused across tasks, so each worker attaches a segment once;
# the cache is bounded because segment names never recur (the owner picks
# fresh names) but a long-lived backend can stream many arrays through.
_ATTACH_CACHE: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
_ATTACH_CACHE_MAX = 64


def _attached_view(name: str, shape: tuple, dtype: str) -> np.ndarray:
    cached = _ATTACH_CACHE.get(name)
    if cached is None:
        if len(_ATTACH_CACHE) >= _ATTACH_CACHE_MAX:
            _, (old_shm, _) = _ATTACH_CACHE.popitem()
            old_shm.close()
        shm = shared_memory.SharedMemory(name=name)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        _ATTACH_CACHE[name] = (shm, view)
        return view
    return cached[1]


def _rebuild_shared(name: str, shape: tuple, dtype: str) -> "SharedArray":
    return SharedArray(name=name, shape=shape, dtype=dtype)


class SharedArray(ArrayHandle):
    """Process handle: an array living in a ``shared_memory`` segment.

    Picklable by *name* only — sending the handle to a worker costs a few
    dozen bytes regardless of array size; the worker re-attaches the
    segment and builds a view over the same physical pages (zero copies
    after the initial :meth:`wrap`).

    The creating process owns the segment: :meth:`release` closes *and*
    unlinks it.  Attached (worker-side) instances only ever close.
    """

    def __init__(self, name: str, shape: tuple, dtype: str,
                 shm: shared_memory.SharedMemory | None = None,
                 owner: bool = False):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = str(dtype)
        self._shm = shm
        self._owner = owner
        self._released = False

    @classmethod
    def wrap(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment (the one copy paid)."""
        arr = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        return cls(name=shm.name, shape=arr.shape, dtype=arr.dtype.str,
                   shm=shm, owner=True)

    @property
    def array(self) -> np.ndarray:
        if self._released:
            raise RuntimeError(f"shared segment {self.name} already released")
        if self._shm is None:  # worker side: attach lazily, cache per process
            return _attached_view(self.name, self.shape, self.dtype)
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                          buffer=self._shm.buf)

    def release(self) -> None:
        if self._released or self._shm is None:
            self._released = True
            return
        self._released = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    @property
    def released(self) -> bool:
        return self._released

    def __reduce__(self):
        return _rebuild_shared, (self.name, self.shape, self.dtype)


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------


class _TracedChunk:
    """Worker-side wrapper: run one chunk under a capture tracer.

    Installed by :meth:`ExecutionBackend.map` when tracing is enabled.  The
    worker (a pool thread or a forked process) runs the chunk inside a
    fresh thread-local tracer, so nested instrumentation (``measure`` calls
    inside an objective, say) is captured too; the drained spans travel
    back with the result and the parent reconciles them onto its timeline.
    Module-level and slot-only so the process backend can pickle it
    whenever ``fn`` itself is picklable — the same constraint plain
    ``map`` already imposes.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item):
        with tracing() as tracer:
            with tracer.span("backend.chunk", category="backend"):
                result = self.fn(item)
        return result, tracer.drain()


class ExecutionBackend(ABC):
    """Uniform executor interface over one chunk decomposition.

    ``map(fn, items)`` applies a callable to every item and returns the
    results **in input order** — never completion order — so chunked
    kernels are deterministic regardless of scheduling.  Backends are
    context managers; :meth:`close` is idempotent and releases every
    resource the backend still owns (pools, shared segments).
    """

    name = "abstract"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self._handles: list[ArrayHandle] = []
        self._closed = False
        # (pid, tid) -> rank labels, stable across map() calls on this backend
        self._worker_ranks: dict[tuple[int, int], int] = {}

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shutdown()
        finally:
            for handle in self._handles:
                handle.release()
            self._handles.clear()

    def _shutdown(self) -> None:  # pragma: no cover - trivial default
        pass

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{self.name} backend already closed")

    # -- data ---------------------------------------------------------------

    def share(self, array: np.ndarray) -> ArrayHandle:
        """Expose ``array`` to workers without pickling its contents.

        The backend keeps a safety-net reference and releases any segment
        still live at :meth:`close`; callers that release per-invocation
        (the chunked kernels do) make that a no-op.
        """
        self._check_open()
        handle = self._share(array)
        self._handles = [h for h in self._handles if not h.released]
        self._handles.append(handle)
        return handle

    def _share(self, array: np.ndarray) -> ArrayHandle:
        return LocalArray(array)

    def gather(self, handle: ArrayHandle, out: np.ndarray) -> np.ndarray:
        """Land a written-to handle back into the caller's buffer."""
        if handle.array is not out:
            np.copyto(out, handle.array)
        return out

    # -- execution ----------------------------------------------------------

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]``, possibly concurrently.

        With tracing enabled (see :mod:`repro.observe`), each chunk runs
        under a worker-side capture tracer; its spans are shipped back
        with the result and reconciled onto the caller's timeline, with
        each distinct worker ``(pid, tid)`` mapped to a stable rank.  The
        disabled path dispatches ``fn`` untouched.
        """
        self._check_open()
        tracer = get_tracer()
        if not tracer.enabled:
            return self._map(fn, items)
        items = list(items)
        with tracer.span("backend.map", category="backend",
                         backend=self.name, workers=self.workers,
                         chunks=len(items)):
            shipped = self._map(_TracedChunk(fn), items)
        results = []
        for result, spans in shipped:
            self._reconcile(tracer, spans)
            results.append(result)
        return results

    def _reconcile(self, tracer, spans: list[Span]) -> None:
        """Adopt worker spans, stamping each with its worker's rank."""
        adopted = []
        for span in spans:
            rank = self._worker_ranks.setdefault(
                (span.pid, span.tid), len(self._worker_ranks))
            adopted.append(span.with_attrs(rank=rank, backend=self.name))
        tracer.adopt(adopted)

    @abstractmethod
    def _map(self, fn: Callable, items: Iterable) -> list:
        """Backend-specific dispatch of ``fn`` over ``items``, in order."""
        ...


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference each parallel backend must match."""

    name = "serial"

    def __init__(self, workers: int = 1):
        super().__init__(workers)

    def _map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: shared address space, GIL-limited."""

    name = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def _map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def _shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution with zero-copy shared-memory operands.

    Prefers the ``fork`` start method where available (workers inherit the
    imported interpreter, so spawn-up is milliseconds, not import time) and
    falls back to the platform default otherwise.  ``share()`` places the
    array in a shared segment owned by this backend; segments are unlinked
    at :meth:`close` even if a task raised.
    """

    name = "process"

    def __init__(self, workers: int = 2, start_method: str | None = None):
        super().__init__(workers)
        if start_method is None:
            start_method = "fork" if "fork" in get_all_start_methods() else None
        ctx = get_context(start_method) if start_method else get_context()
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

    def _map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def _share(self, array: np.ndarray) -> ArrayHandle:
        return SharedArray.wrap(array)

    def _shutdown(self) -> None:
        self._pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# construction and decomposition helpers
# ---------------------------------------------------------------------------

_BACKEND_TYPES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(backend: str, workers: int = 2) -> ExecutionBackend:
    """Construct a backend by registered name (see :data:`BACKENDS`)."""
    try:
        cls = _BACKEND_TYPES[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}") from None
    if backend == "serial":
        return cls()
    return cls(workers)


@contextmanager
def open_backend(backend: "str | ExecutionBackend", workers: int = 2):
    """Yield a backend, owning its lifecycle only when built here.

    A string constructs a fresh backend that is closed on exit; an
    :class:`ExecutionBackend` instance is *borrowed* — yielded as-is and
    left open, so callers can amortize one process pool across many kernel
    invocations (the chunked kernels and ``parallel_map`` accept both).
    """
    if isinstance(backend, ExecutionBackend):
        yield backend
        return
    built = make_backend(backend, workers)
    try:
        with built:
            yield built
    finally:
        pass


def chunk_bounds(n: int, chunk_size: int) -> list[tuple[int, int]]:
    """Half-open ``(lo, hi)`` chunk bounds covering ``[0, n)`` in order."""
    if n < 1:
        raise ValueError("n must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def default_chunk(n: int, workers: int) -> int:
    """One chunk per worker — the static-schedule default."""
    return max(1, math.ceil(n / max(1, workers)))


# ---------------------------------------------------------------------------
# timing integration: measured (not modelled) backend comparisons
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendTiming:
    """Measured wall-clock of one backend on one chunked workload."""

    backend: str
    workers: int
    seconds: float
    speedup: float  # vs. the serial backend in the same comparison

    def __str__(self) -> str:
        return (f"{self.backend:>8s} x{self.workers}: {self.seconds:.4e}s "
                f"({self.speedup:.2f}x)")


def compare_backends(run: Callable[[ExecutionBackend], object],
                     workers: int,
                     backends: Sequence[str] = BACKENDS,
                     repetitions: int = 3,
                     warmup: int = 1) -> list[BackendTiming]:
    """Measure ``run(backend)`` under each backend with proper methodology.

    ``run`` receives a live backend and performs one full chunked workload
    through it (pool spawn-up is *excluded* from the timed region — the
    steady-state regime a tuning loop amortizes into).  Timing goes through
    :func:`repro.timing.timers.measure` (warmup + repetitions, best rep),
    and speedups are reported against the ``serial`` entry, which is
    prepended if absent so the ratio is always well-defined.
    """
    from ..timing.timers import measure

    names = list(backends)
    if "serial" not in names:
        names.insert(0, "serial")
    best: dict[str, float] = {}
    for name in names:
        with make_backend(name, workers) as backend:
            result = measure(lambda: run(backend),
                             repetitions=repetitions, warmup=warmup)
        best[name] = result.best
    serial = best["serial"]
    return [BackendTiming(name, 1 if name == "serial" else workers,
                          best[name], serial / best[name])
            for name in names]
