"""OpenMP-style loop scheduling and load balance.

The course's optimization lectures cover shared-memory parallelization with
OpenMP; the choice of loop schedule (``static``, ``dynamic``, ``guided``,
chunk sizes) against non-uniform iteration costs is a standard exam topic
and a recurring project issue (SpMV rows, Game-of-Life regions).  This
module simulates the schedules exactly as the OpenMP runtime defines them
over an explicit per-iteration cost vector, yielding per-thread busy times,
makespan, and imbalance metrics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ScheduleResult", "simulate_schedule", "imbalance_ratio", "SCHEDULES"]

SCHEDULES = ("static", "static-chunked", "dynamic", "guided")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one parallel loop."""

    schedule: str
    threads: int
    per_thread_busy: tuple[float, ...]
    makespan: float
    chunks_dispatched: int
    overhead: float

    @property
    def total_work(self) -> float:
        return sum(self.per_thread_busy)

    @property
    def imbalance(self) -> float:
        """(max - mean) / mean of per-thread busy time (0 = perfect)."""
        mean = self.total_work / self.threads
        if mean == 0:
            return 0.0
        return (max(self.per_thread_busy) - mean) / mean

    @property
    def efficiency(self) -> float:
        """Useful work / (threads × makespan)."""
        if self.makespan == 0:
            return 1.0
        return self.total_work / (self.threads * self.makespan)


def _chunk_bounds_static(n: int, threads: int) -> list[tuple[int, int, int]]:
    """(thread, lo, hi) blocks for OpenMP's default static schedule."""
    out = []
    base = n // threads
    extra = n % threads
    lo = 0
    for t in range(threads):
        size = base + (1 if t < extra else 0)
        out.append((t, lo, lo + size))
        lo += size
    return out


def simulate_schedule(costs: Sequence[float], threads: int,
                      schedule: str = "static", chunk: int | None = None,
                      dispatch_overhead: float = 0.0) -> ScheduleResult:
    """Simulate one parallel-for over per-iteration ``costs``.

    Parameters
    ----------
    costs:
        Cost (seconds) of each iteration, in loop order.
    threads:
        Team size.
    schedule:
        ``static`` (one contiguous block per thread), ``static-chunked``
        (round-robin chunks), ``dynamic`` (first-free-thread-takes-next-
        chunk), or ``guided`` (dynamic with geometrically shrinking
        chunks).
    chunk:
        Chunk size for the chunked/dynamic schedules (OpenMP defaults:
        dynamic -> 1, guided -> 1 minimum, static-chunked requires one).
    dispatch_overhead:
        Seconds charged to a thread per chunk it acquires — the knob that
        makes ``dynamic,1`` lose on cheap iterations (the classic
        trade-off students must measure).
    """
    cost_arr = np.asarray(costs, dtype=float)
    if cost_arr.ndim != 1 or cost_arr.size == 0:
        raise ValueError("need a non-empty 1-D cost vector")
    if np.any(cost_arr < 0):
        raise ValueError("iteration costs cannot be negative")
    if threads < 1:
        raise ValueError("need at least one thread")
    if dispatch_overhead < 0:
        raise ValueError("overhead cannot be negative")
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
    n = cost_arr.size

    busy = [0.0] * threads
    dispatched = 0
    overhead_total = 0.0

    if schedule == "static":
        for t, lo, hi in _chunk_bounds_static(n, threads):
            if hi > lo:
                busy[t] += float(cost_arr[lo:hi].sum()) + dispatch_overhead
                overhead_total += dispatch_overhead
                dispatched += 1
    elif schedule == "static-chunked":
        if chunk is None or chunk < 1:
            raise ValueError("static-chunked requires a positive chunk size")
        for c, lo in enumerate(range(0, n, chunk)):
            hi = min(lo + chunk, n)
            t = c % threads
            busy[t] += float(cost_arr[lo:hi].sum()) + dispatch_overhead
            overhead_total += dispatch_overhead
            dispatched += 1
    else:
        # work-queue schedules: a min-heap of (available_time, thread)
        if chunk is None:
            chunk = 1
        if chunk < 1:
            raise ValueError("chunk must be positive")
        heap = [(0.0, t) for t in range(threads)]
        heapq.heapify(heap)
        lo = 0
        remaining = n
        while remaining > 0:
            if schedule == "guided":
                size = max(chunk, remaining // threads)
            else:  # dynamic
                size = chunk
            size = min(size, remaining)
            hi = lo + size
            t_avail, t = heapq.heappop(heap)
            t_done = t_avail + dispatch_overhead + float(cost_arr[lo:hi].sum())
            busy[t] = t_done
            overhead_total += dispatch_overhead
            dispatched += 1
            heapq.heappush(heap, (t_done, t))
            lo = hi
            remaining -= size

    makespan = max(busy)
    return ScheduleResult(
        schedule=schedule if chunk is None else f"{schedule},{chunk}",
        threads=threads,
        per_thread_busy=tuple(busy),
        makespan=makespan,
        chunks_dispatched=dispatched,
        overhead=overhead_total,
    )


def imbalance_ratio(per_thread_times: Sequence[float]) -> float:
    """(max - mean)/mean over per-thread busy times.

    LIKWID's load-imbalance metric; > ~0.2 flags the load-imbalance
    pattern in the parallel diagnosis.
    """
    arr = np.asarray(per_thread_times, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty time vector")
    mean = float(arr.mean())
    if mean == 0:
        return 0.0
    return float((arr.max() - mean) / mean)
