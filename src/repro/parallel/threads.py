"""Shared-memory execution: a simulated thread team and a real one.

Two planes, as everywhere in this library:

* :class:`SimulatedTeam` — a deterministic model of a fork-join region:
  per-iteration costs + schedule + synchronization overheads (fork/join
  barrier, critical sections, false-sharing penalties) produce per-thread
  timelines and parallel counters.  Feeds the parallel performance
  patterns (load imbalance, synchronization overhead, false sharing).
* :func:`parallel_map` — an actual chunk runner over the pluggable
  execution backends of :mod:`repro.parallel.backends` (serial, threads,
  zero-copy processes), used by the examples to measure true speedup
  curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .backends import ExecutionBackend, chunk_bounds, default_chunk, open_backend
from .schedule import ScheduleResult, imbalance_ratio, simulate_schedule

__all__ = [
    "RegionCounters",
    "SimulatedTeam",
    "parallel_map",
    "diagnose_parallel",
    "ParallelPatternMatch",
]


@dataclass(frozen=True)
class RegionCounters:
    """Counters of one simulated parallel region."""

    threads: int
    makespan_seconds: float
    per_thread_busy: tuple[float, ...]
    barrier_seconds: float
    critical_seconds: float
    false_sharing_seconds: float
    schedule: str

    @property
    def imbalance(self) -> float:
        return imbalance_ratio(self.per_thread_busy)

    @property
    def sync_fraction(self) -> float:
        """Share of the region spent on synchronization artifacts."""
        if self.makespan_seconds == 0:
            return 0.0
        sync = self.barrier_seconds + self.critical_seconds + self.false_sharing_seconds
        return sync / self.makespan_seconds


class SimulatedTeam:
    """A fork-join thread team with OpenMP-like cost knobs.

    Parameters
    ----------
    threads:
        Team size.
    fork_join_seconds:
        Fixed cost of opening + closing one parallel region (barrier).
    critical_seconds_per_entry:
        Serialized cost each time any thread enters a critical section.
    false_sharing_seconds_per_event:
        Coherence-miss cost per false-sharing event (a write to a cache
        line another thread is using).
    """

    def __init__(self, threads: int, fork_join_seconds: float = 5e-6,
                 critical_seconds_per_entry: float = 2e-7,
                 false_sharing_seconds_per_event: float = 1e-7):
        if threads < 1:
            raise ValueError("need at least one thread")
        if min(fork_join_seconds, critical_seconds_per_entry,
               false_sharing_seconds_per_event) < 0:
            raise ValueError("costs cannot be negative")
        self.threads = threads
        self.fork_join_seconds = fork_join_seconds
        self.critical_seconds_per_entry = critical_seconds_per_entry
        self.false_sharing_seconds_per_event = false_sharing_seconds_per_event

    def run_region(self, iteration_costs: Sequence[float],
                   schedule: str = "static", chunk: int | None = None,
                   dispatch_overhead: float = 0.0,
                   critical_entries: int = 0,
                   false_sharing_events: int = 0) -> RegionCounters:
        """Simulate one parallel-for region.

        ``critical_entries`` counts entries into a critical section across
        the whole loop (they serialize); ``false_sharing_events`` counts
        coherence bounces (they inflate every thread's time).
        """
        if critical_entries < 0 or false_sharing_events < 0:
            raise ValueError("event counts cannot be negative")
        sched = simulate_schedule(iteration_costs, self.threads, schedule,
                                  chunk=chunk, dispatch_overhead=dispatch_overhead)
        critical_total = critical_entries * self.critical_seconds_per_entry
        fs_per_thread = (false_sharing_events * self.false_sharing_seconds_per_event
                         / self.threads)
        busy = tuple(b + fs_per_thread for b in sched.per_thread_busy)
        # critical sections serialize: they extend the makespan directly
        makespan = max(busy) + critical_total + self.fork_join_seconds
        return RegionCounters(
            threads=self.threads,
            makespan_seconds=makespan,
            per_thread_busy=busy,
            barrier_seconds=self.fork_join_seconds,
            critical_seconds=critical_total,
            false_sharing_seconds=fs_per_thread * self.threads,
            schedule=sched.schedule,
        )

    def speedup_curve(self, iteration_costs: Sequence[float],
                      max_threads: int | None = None,
                      schedule: str = "static", chunk: int | None = None,
                      dispatch_overhead: float = 0.0) -> dict[int, float]:
        """Simulated strong-scaling speedup over thread counts."""
        top = self.threads if max_threads is None else max_threads
        if top < 1:
            raise ValueError("need at least one thread")
        serial = float(np.sum(np.asarray(iteration_costs, dtype=float)))
        out: dict[int, float] = {}
        for p in range(1, top + 1):
            team = SimulatedTeam(p, self.fork_join_seconds,
                                 self.critical_seconds_per_entry,
                                 self.false_sharing_seconds_per_event)
            region = team.run_region(iteration_costs, schedule, chunk,
                                     dispatch_overhead)
            out[p] = serial / region.makespan_seconds
        return out


class _ChunkCall:
    """Picklable adapter turning ``fn(lo, hi)`` into ``fn(bounds)``."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[int, int], object]):
        self.fn = fn

    def __call__(self, bounds: tuple[int, int]) -> object:
        return self.fn(*bounds)


def parallel_map(chunk_fn: Callable[[int, int], object], n: int,
                 workers: int, chunk: int | None = None,
                 *, chunk_size: int | None = None,
                 backend: "str | ExecutionBackend | None" = None) -> list[object]:
    """Run ``chunk_fn(lo, hi)`` over [0, n) through an execution backend.

    A thin wrapper over :mod:`repro.parallel.backends` that keeps the
    historical signature.  Results are **always** returned in input (chunk)
    order, whatever the completion order.  ``chunk_size`` is the preferred
    spelling of the legacy ``chunk`` parameter (they are aliases; passing
    conflicting values is an error).  ``backend`` selects the executor:
    ``None`` keeps the historical behaviour (inline for ``workers == 1``,
    a thread pool otherwise); a name from :data:`~repro.parallel.backends.BACKENDS`
    or a live :class:`~repro.parallel.backends.ExecutionBackend` (borrowed,
    left open) runs the chunks there instead.  For real speedup the chunk
    body must release the GIL under ``"thread"`` but not under
    ``"process"`` — provided ``chunk_fn`` is picklable.
    """
    if n < 1 or workers < 1:
        raise ValueError("n and workers must be positive")
    if chunk is not None and chunk_size is not None and chunk != chunk_size:
        raise ValueError(f"chunk={chunk} conflicts with chunk_size={chunk_size}")
    size = chunk_size if chunk_size is not None else chunk
    if size is None:
        size = default_chunk(n, workers)
    if size < 1:
        raise ValueError("chunk must be positive")
    bounds = chunk_bounds(n, size)
    if backend is None:
        backend = "serial" if workers == 1 else "thread"
    with open_backend(backend, workers) as ex:
        return ex.map(_ChunkCall(chunk_fn), bounds)


@dataclass(frozen=True)
class ParallelPatternMatch:
    """A detected parallel-efficiency pathology."""

    pattern: str
    score: float
    evidence: str
    remedy: str

    @property
    def detected(self) -> bool:
        return self.score >= 0.5


def diagnose_parallel(region: RegionCounters) -> list[ParallelPatternMatch]:
    """Rank the parallel patterns for one region's counters.

    Covers the multi-thread patterns of Treibig et al. that single-core
    counters cannot see: load imbalance, synchronization overhead, and
    false sharing.
    """
    matches = []
    imb = region.imbalance
    matches.append(ParallelPatternMatch(
        "load-imbalance",
        max(0.0, min(1.0, (imb - 0.05) / 0.3)),
        f"per-thread busy-time imbalance {imb:.0%}",
        "dynamic/guided schedule, finer chunks, better decomposition",
    ))
    if region.makespan_seconds > 0:
        crit = region.critical_seconds / region.makespan_seconds
    else:
        crit = 0.0
    matches.append(ParallelPatternMatch(
        "synchronization-overhead",
        max(0.0, min(1.0, (crit - 0.02) / 0.25)),
        f"critical sections take {crit:.0%} of the region",
        "privatize + reduce; atomics; lock-free updates; coarser regions",
    ))
    if region.makespan_seconds > 0:
        fs = region.false_sharing_seconds / region.makespan_seconds
    else:
        fs = 0.0
    matches.append(ParallelPatternMatch(
        "false-sharing",
        max(0.0, min(1.0, (fs - 0.02) / 0.25)),
        f"coherence traffic accounts for {fs:.0%} of the region",
        "pad per-thread data to cache-line boundaries",
    ))
    return sorted(matches, key=lambda m: -m.score)
