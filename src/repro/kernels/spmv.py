"""Sparse matrix-vector multiplication (SpMV) — assignments 3 and 4.

Assignment 3 provides three versions of SpMV "based on the three classical
storage models, CSR, CSC, and COO".  We implement the storage formats from
scratch (the course's provided C code reads Matrix Market files into exactly
these structures) together with scalar and vectorized kernels per format.

SpMV is the canonical *input-dependent* kernel: runtime depends not just on
matrix dimensions but on the nonzero count, row-length distribution, and
bandwidth (distance of nonzeros from the diagonal, which controls reuse of
the input vector).  That is precisely why assignment 3 uses it to motivate
statistical models.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from ..parallel.backends import chunk_bounds, default_chunk, open_backend
from ..timing.metrics import WorkCount
from .base import TunableParam, register

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "random_sparse",
    "banded_sparse",
    "spmv_work",
    "spmv_csr_scalar",
    "spmv_csr_numpy",
    "spmv_csr_chunked",
    "spmv_csc_scalar",
    "spmv_csc_numpy",
    "spmv_coo_scalar",
    "spmv_coo_numpy",
    "matrix_features",
]

_VAL_BYTES = 8  # float64 values
_IDX_BYTES = 8  # int64 indices


@dataclass(frozen=True)
class COOMatrix:
    """Coordinate format: parallel (row, col, val) triplet arrays.

    Triplets are kept in row-major sorted order (the order a Matrix Market
    reader naturally produces after sorting), which the conversion routines
    rely on.
    """

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        n, m = self.shape
        if n < 1 or m < 1:
            raise ValueError("matrix dimensions must be positive")
        if not (self.rows.shape == self.cols.shape == self.vals.shape) or self.rows.ndim != 1:
            raise ValueError("rows/cols/vals must be 1-D arrays of equal length")
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= n:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= m:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def to_csr(self) -> "CSRMatrix":
        order = np.lexsort((self.cols, self.rows))
        rows, cols, vals = self.rows[order], self.cols[order], self.vals[order]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.shape, indptr, cols.astype(np.int64), vals.astype(float))

    def to_csc(self) -> "CSCMatrix":
        order = np.lexsort((self.rows, self.cols))
        rows, cols, vals = self.rows[order], self.cols[order], self.vals[order]
        indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(self.shape, indptr, rows.astype(np.int64), vals.astype(float))


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed Sparse Row: indptr (n+1), indices (col per nnz), data."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        n, m = self.shape
        if self.indptr.shape != (n + 1,):
            raise ValueError("indptr must have length nrows+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise ValueError("indices/data must be 1-D of equal length")
        if self.nnz and (self.indices.min() < 0 or self.indices.max() >= m):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            dense[i, self.indices[lo:hi]] += self.data[lo:hi]
        return dense

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_lengths())
        return COOMatrix(self.shape, rows, self.indices.copy(), self.data.copy())


@dataclass(frozen=True)
class CSCMatrix:
    """Compressed Sparse Column: indptr (m+1), indices (row per nnz), data."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        n, m = self.shape
        if self.indptr.shape != (m + 1,):
            raise ValueError("indptr must have length ncols+1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise ValueError("indices/data must be 1-D of equal length")
        if self.nnz and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError("row index out of range")

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def col_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        for j in range(self.shape[1]):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            dense[self.indices[lo:hi], j] += self.data[lo:hi]
        return dense

    def to_coo(self) -> COOMatrix:
        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), self.col_lengths())
        order = np.lexsort((self.indices, cols))  # keep row-major triplet order
        return COOMatrix(self.shape, self.indices[order].astype(np.int64),
                         cols[order], self.data[order])


def random_sparse(n: int, m: int | None = None, density: float = 0.01,
                  seed: int = 0) -> COOMatrix:
    """Uniform random sparse matrix with ~``density·n·m`` nonzeros.

    Duplicate coordinates are removed (keeping one), so the realized nnz can
    be slightly below the target; at assignment densities (<5%) the
    difference is negligible.
    """
    m = n if m is None else m
    if n < 1 or m < 1:
        raise ValueError("dimensions must be positive")
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    target = max(1, int(round(density * n * m)))
    flat = rng.choice(n * m, size=target, replace=False)
    rows, cols = np.divmod(flat.astype(np.int64), m)
    order = np.lexsort((cols, rows))
    vals = rng.standard_normal(target)
    return COOMatrix((n, m), rows[order], cols[order], vals)


def banded_sparse(n: int, bandwidth: int, fill: float = 1.0, seed: int = 0) -> COOMatrix:
    """Banded n×n matrix: nonzeros within ``bandwidth`` of the diagonal.

    ``fill`` is the fraction of in-band slots populated.  Bandwidth controls
    reuse distance of the input vector — the feature assignment 3's models
    must learn.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if bandwidth < 0 or bandwidth >= n:
        raise ValueError("bandwidth must be in [0, n)")
    if not 0 < fill <= 1:
        raise ValueError("fill must be in (0, 1]")
    rng = np.random.default_rng(seed)
    rows_list, cols_list = [], []
    for i in range(n):
        lo, hi = max(0, i - bandwidth), min(n, i + bandwidth + 1)
        cols = np.arange(lo, hi, dtype=np.int64)
        if fill < 1.0:
            keep = rng.random(cols.size) < fill
            keep[cols == i] = True  # always keep the diagonal
            cols = cols[keep]
        rows_list.append(np.full(cols.size, i, dtype=np.int64))
        cols_list.append(cols)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = rng.standard_normal(rows.size)
    return COOMatrix((n, n), rows, cols, vals)


def spmv_work(n: int, m: int, nnz: int) -> WorkCount:
    """Work of ``y = A·x`` for an n×m matrix with ``nnz`` nonzeros.

    2 FLOPs per nonzero (multiply + add).  Algorithmic traffic: values +
    one index per nonzero, the row/col pointer array, x and y once each.
    """
    if n < 1 or m < 1 or nnz < 0:
        raise ValueError("invalid matrix parameters")
    flops = 2.0 * nnz
    loads = (nnz * (_VAL_BYTES + _IDX_BYTES)  # values and indices
             + (n + 1) * _IDX_BYTES            # pointer array (CSR view)
             + m * _VAL_BYTES)                 # input vector
    stores = n * _VAL_BYTES
    return WorkCount(flops=flops, loads_bytes=loads, stores_bytes=stores,
                     int_ops=float(2 * nnz))


def _work_from_matrix(matrix, _x=None) -> WorkCount:
    return spmv_work(matrix.shape[0], matrix.shape[1], matrix.nnz)


@register("spmv", "csr_scalar", _work_from_matrix, "row-wise scalar CSR SpMV",
          metadata={"lint_expect": ("scalar-loop",)})
def spmv_csr_scalar(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Scalar CSR SpMV: sequential row scan, gathered x accesses."""
    _check_x(a, x)
    indptr, indices, data = a.indptr, a.indices, a.data  # hoisted lookups
    y = np.zeros(a.shape[0])
    for i in range(a.shape[0]):
        acc = 0.0
        for p in range(indptr[i], indptr[i + 1]):
            acc += data[p] * x[indices[p]]
        y[i] = acc
    return y


@register("spmv", "csr_numpy", _work_from_matrix,
          "CSR SpMV with a vectorized gather + segmented reduction",
          technique="vectorization")
def spmv_csr_numpy(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized CSR SpMV via gather and ``np.add.reduceat``."""
    _check_x(a, x)
    if a.nnz == 0:
        return np.zeros(a.shape[0])
    products = x[a.indices]  # the gather is already a fresh array:
    products *= a.data       # scale it in place instead of allocating again
    y = np.zeros(a.shape[0])
    lengths = a.row_lengths()
    nonempty = np.nonzero(lengths)[0]
    if nonempty.size:
        starts = a.indptr[nonempty]
        y[nonempty] = np.add.reduceat(products, starts)
    return y


def _spmv_csr_rows(hptr, hidx, hdat, hx, hy, inner: str,
                   bounds: tuple[int, int]) -> None:
    """Compute ``y[lo:hi]`` for one CSR row range through array handles.

    Row ranges own disjoint slices of ``y`` (CSR's gift to parallelism —
    no scatter, unlike CSC), so ranges never race.  Empty rows inside the
    range are left at the zero the output was initialized with.
    """
    lo, hi = bounds
    indptr, indices = hptr.array, hidx.array
    data, x, y = hdat.array, hx.array, hy.array
    if inner == "scalar":
        for i in range(lo, hi):
            acc = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                acc += data[p] * x[indices[p]]
            y[i] = acc
        return
    start, end = int(indptr[lo]), int(indptr[hi])
    if end == start:
        return
    products = data[start:end] * x[indices[start:end]]
    lengths = np.diff(indptr[lo:hi + 1])
    nonempty = np.nonzero(lengths)[0]
    if nonempty.size:
        starts = indptr[lo + nonempty] - start
        y[lo + nonempty] = np.add.reduceat(products, starts)


@register("spmv", "csr_chunked", _work_from_matrix,
          "row-range CSR SpMV over a pluggable execution backend",
          technique="parallelization",
          tunables=(TunableParam("workers", "int", 2, low=1, high=8,
                                 description="backend worker count"),
                    TunableParam("backend", "choice", "thread",
                                 choices=("serial", "thread", "process"),
                                 description="execution backend"),
                    TunableParam("inner", "choice", "numpy",
                                 choices=("numpy", "scalar"),
                                 description="per-range inner kernel")))
def spmv_csr_chunked(a: CSRMatrix, x: np.ndarray, workers: int = 2,
                     backend: str = "thread", inner: str = "numpy",
                     chunk_size: int | None = None) -> np.ndarray:
    """CSR SpMV with independent row ranges on an execution backend.

    The four CSR arrays and ``x`` travel as zero-copy shared-memory views
    under the process backend; each range writes its own ``y`` slice into
    a shared output gathered once at the end.
    """
    _check_x(a, x)
    if inner not in ("numpy", "scalar"):
        raise ValueError(f"unknown inner kernel {inner!r}")
    n = a.shape[0]
    y = np.zeros(n)
    bounds = chunk_bounds(n, chunk_size or default_chunk(n, workers))
    with open_backend(backend, workers) as ex:
        handles = [ex.share(arr) for arr in
                   (a.indptr, a.indices, a.data, x, y)]
        try:
            ex.map(partial(_spmv_csr_rows, *handles, inner), bounds)
            ex.gather(handles[-1], y)
        finally:
            for h in handles:
                h.release()
    return y


@register("spmv", "csc_scalar", _work_from_matrix,
          "column-wise scalar CSC SpMV (scattered y updates)",
          metadata={"lint_expect": ("scalar-loop",)})
def spmv_csc_scalar(a: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """Scalar CSC SpMV: streams columns, scatters into y.

    The scatter makes the *output* access data-dependent — the mirror image
    of CSR's gathered input, and the reason CSC parallelizes poorly without
    atomics.
    """
    _check_x(a, x)
    indptr, indices, data = a.indptr, a.indices, a.data  # hoisted lookups
    y = np.zeros(a.shape[0])
    for j in range(a.shape[1]):
        xj = x[j]
        for p in range(indptr[j], indptr[j + 1]):
            y[indices[p]] += data[p] * xj
    return y


@register("spmv", "csc_numpy", _work_from_matrix,
          "CSC SpMV with vectorized scatter-add", technique="vectorization")
def spmv_csc_numpy(a: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized CSC SpMV via ``np.add.at`` scatter."""
    _check_x(a, x)
    if a.nnz == 0:
        return np.zeros(a.shape[0])
    col_ids = np.arange(a.shape[1], dtype=np.int64)
    cols = np.repeat(col_ids, a.col_lengths())
    products = x[cols]  # reuse the gather buffer:
    products *= a.data  # in-place scale, no second temporary
    y = np.zeros(a.shape[0])
    np.add.at(y, a.indices, products)
    return y


@register("spmv", "coo_scalar", _work_from_matrix, "triplet-stream scalar COO SpMV",
          metadata={"lint_expect": ("scalar-loop",)})
def spmv_coo_scalar(a: COOMatrix, x: np.ndarray) -> np.ndarray:
    """Scalar COO SpMV: one scattered update per triplet."""
    _check_x(a, x)
    y = np.zeros(a.shape[0])
    for r, c, v in zip(a.rows, a.cols, a.vals):
        y[r] += v * x[c]
    return y


@register("spmv", "coo_numpy", _work_from_matrix,
          "COO SpMV with vectorized scatter-add", technique="vectorization")
def spmv_coo_numpy(a: COOMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized COO SpMV via ``np.add.at``."""
    _check_x(a, x)
    y = np.zeros(a.shape[0])
    if a.nnz:
        products = x[a.cols]  # reuse the gather buffer:
        products *= a.vals    # in-place scale, no second temporary
        np.add.at(y, a.rows, products)
    return y


def _check_x(a, x: np.ndarray) -> None:
    if x.ndim != 1 or x.size != a.shape[1]:
        raise ValueError(f"x must have length {a.shape[1]}, got shape {x.shape}")


def matrix_features(coo: COOMatrix) -> dict[str, float]:
    """Feature vector describing a sparse matrix (assignment 3's inputs).

    These are the features the statistical models train on: size, nonzero
    count/density, row-length statistics (load balance), and mean/max
    distance from the diagonal (vector-reuse proxy).
    """
    n, m = coo.shape
    csr = coo.to_csr()
    lengths = csr.row_lengths().astype(float)
    if coo.nnz:
        band = np.abs(coo.rows.astype(float) - coo.cols.astype(float))
        mean_band, max_band = float(band.mean()), float(band.max())
    else:
        mean_band = max_band = 0.0
    return {
        "n_rows": float(n),
        "n_cols": float(m),
        "nnz": float(coo.nnz),
        "density": coo.nnz / float(n * m),
        "row_mean": float(lengths.mean()),
        "row_std": float(lengths.std()),
        "row_max": float(lengths.max()),
        "empty_rows": float(np.count_nonzero(lengths == 0)),
        "mean_bandwidth": mean_band,
        "max_bandwidth": max_band,
    }
