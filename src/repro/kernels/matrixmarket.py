"""Matrix Market I/O for the sparse kernels.

The paper's artifact appendix notes the assignment frameworks use
"open-source code available online (e.g., code for reading matrices in the
matrix market format)" — SpMV assignments traditionally run on SuiteSparse
matrices shipped as ``.mtx`` files.  This module implements the coordinate
subset of the format (the part sparse solvers actually use): real/integer/
pattern fields, general/symmetric/skew-symmetric symmetry, 1-based indices,
``%`` comments.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .spmv import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "loads", "dumps"]

_FIELDS = ("real", "integer", "pattern")
_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def loads(text: str) -> COOMatrix:
    """Parse Matrix Market coordinate text into a :class:`COOMatrix`."""
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty matrix market payload")
    header = lines[0].strip().lower().split()
    if (len(header) != 5 or header[0] != "%%matrixmarket"
            or header[1] != "matrix" or header[2] != "coordinate"):
        raise ValueError(
            "expected '%%MatrixMarket matrix coordinate <field> <symmetry>'")
    field, symmetry = header[3], header[4]
    if field not in _FIELDS:
        raise ValueError(f"unsupported field {field!r} (supported: {_FIELDS})")
    if symmetry not in _SYMMETRIES:
        raise ValueError(
            f"unsupported symmetry {symmetry!r} (supported: {_SYMMETRIES})")

    body = [ln for ln in lines[1:] if ln.strip() and not ln.lstrip().startswith("%")]
    if not body:
        raise ValueError("missing size line")
    size_parts = body[0].split()
    if len(size_parts) != 3:
        raise ValueError(f"malformed size line: {body[0]!r}")
    n_rows, n_cols, nnz = (int(x) for x in size_parts)
    if n_rows < 1 or n_cols < 1 or nnz < 0:
        raise ValueError("invalid matrix dimensions")
    entries = body[1:]
    if len(entries) != nnz:
        raise ValueError(f"size line promises {nnz} entries, found {len(entries)}")

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=float)
    for k, line in enumerate(entries):
        parts = line.split()
        expected = 2 if field == "pattern" else 3
        if len(parts) != expected:
            raise ValueError(f"entry {k}: expected {expected} fields, got {line!r}")
        r, c = int(parts[0]) - 1, int(parts[1]) - 1  # 1-based in the file
        if not (0 <= r < n_rows and 0 <= c < n_cols):
            raise ValueError(f"entry {k}: index ({r + 1}, {c + 1}) out of range")
        rows[k], cols[k] = r, c
        vals[k] = 1.0 if field == "pattern" else float(parts[2])

    if symmetry != "general":
        # the file stores the lower triangle; materialize the mirror
        off_diag = rows != cols
        if symmetry == "skew-symmetric" and bool(np.any(~off_diag)):
            raise ValueError("skew-symmetric matrices cannot store the diagonal")
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows = cols[off_diag]
        mirror_cols = rows[off_diag]
        mirror_vals = sign * vals[off_diag]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])

    order = np.lexsort((cols, rows))
    return COOMatrix((n_rows, n_cols), rows[order], cols[order], vals[order])


def dumps(matrix: COOMatrix, field: str = "real",
          comment: str | None = None) -> str:
    """Serialize a :class:`COOMatrix` as general coordinate Matrix Market."""
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    buf = io.StringIO()
    buf.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    if comment:
        for line in comment.splitlines():
            buf.write(f"% {line}\n")
    buf.write(f"{matrix.shape[0]} {matrix.shape[1]} {matrix.nnz}\n")
    for r, c, v in zip(matrix.rows.tolist(), matrix.cols.tolist(),
                       matrix.vals.tolist()):
        if field == "pattern":
            buf.write(f"{r + 1} {c + 1}\n")
        elif field == "integer":
            buf.write(f"{r + 1} {c + 1} {int(round(v))}\n")
        else:
            buf.write(f"{r + 1} {c + 1} {v:.17g}\n")
    return buf.getvalue()


def read_matrix_market(path: str | Path) -> COOMatrix:
    """Read a ``.mtx`` file."""
    return loads(Path(path).read_text(encoding="utf-8"))


def write_matrix_market(matrix: COOMatrix, path: str | Path,
                        field: str = "real", comment: str | None = None) -> None:
    """Write a ``.mtx`` file."""
    Path(path).write_text(dumps(matrix, field=field, comment=comment),
                          encoding="utf-8")
