"""Assignment and project workloads, each in several optimization variants.

Importing this package populates :data:`repro.kernels.REGISTRY` with every
variant; examples and benchmarks discover kernels through it.
"""

from .base import REGISTRY, KernelRegistry, KernelVariant, TunableParam, register
from .fft import (
    bit_reverse_permutation,
    dft_direct,
    dft_work,
    fft_iterative,
    fft_numpy,
    fft_recursive,
    fft_vectorized,
    fft_work,
    random_signal,
)
from .gameoflife import (
    glider_board,
    life_step_convolve,
    life_step_numpy,
    life_step_scalar,
    life_work,
    random_board,
    run_life,
)
from .histogram import (
    histogram_numpy,
    histogram_privatized,
    histogram_scalar,
    histogram_sorted,
    histogram_work,
    random_keys,
)
from .matrixmarket import (
    dumps as matrix_market_dumps,
    loads as matrix_market_loads,
    read_matrix_market,
    write_matrix_market,
)
from .matmul import (
    LOOP_ORDERS,
    matmul_blocked_numpy,
    matmul_loop,
    matmul_numpy,
    matmul_parallel,
    matmul_tiled,
    matmul_traffic_lower_bound,
    matmul_work,
    random_matrices,
)
from .spmv import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    banded_sparse,
    matrix_features,
    random_sparse,
    spmv_coo_numpy,
    spmv_coo_scalar,
    spmv_csc_numpy,
    spmv_csc_scalar,
    spmv_csr_numpy,
    spmv_csr_scalar,
    spmv_work,
)
from .stencil import (
    init_grid,
    jacobi_solve,
    jacobi_step_blocked,
    jacobi_step_inplace,
    jacobi_step_numpy,
    jacobi_step_scalar,
    stencil_work,
)
from .stream import (
    STREAM_KERNELS,
    add_work,
    copy_work,
    scale_work,
    stream_add,
    stream_arrays,
    stream_copy,
    stream_scale,
    stream_triad,
    triad_work,
)

__all__ = [
    "REGISTRY",
    "KernelRegistry",
    "KernelVariant",
    "TunableParam",
    "register",
    # matmul
    "LOOP_ORDERS",
    "matmul_loop",
    "matmul_tiled",
    "matmul_numpy",
    "matmul_parallel",
    "matmul_blocked_numpy",
    "matmul_work",
    "matmul_traffic_lower_bound",
    "random_matrices",
    # histogram
    "histogram_scalar",
    "histogram_sorted",
    "histogram_numpy",
    "histogram_privatized",
    "histogram_work",
    "random_keys",
    # spmv
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "random_sparse",
    "banded_sparse",
    "matrix_features",
    "spmv_work",
    "spmv_csr_scalar",
    "spmv_csr_numpy",
    "spmv_csc_scalar",
    "spmv_csc_numpy",
    "spmv_coo_scalar",
    "spmv_coo_numpy",
    "read_matrix_market",
    "write_matrix_market",
    "matrix_market_loads",
    "matrix_market_dumps",
    # stream
    "STREAM_KERNELS",
    "stream_arrays",
    "stream_copy",
    "stream_scale",
    "stream_add",
    "stream_triad",
    "copy_work",
    "scale_work",
    "add_work",
    "triad_work",
    # stencil
    "init_grid",
    "jacobi_solve",
    "jacobi_step_scalar",
    "jacobi_step_numpy",
    "jacobi_step_inplace",
    "jacobi_step_blocked",
    "stencil_work",
    # game of life
    "random_board",
    "glider_board",
    "life_step_scalar",
    "life_step_numpy",
    "life_step_convolve",
    "life_work",
    "run_life",
    # fft
    "dft_direct",
    "fft_recursive",
    "fft_iterative",
    "fft_vectorized",
    "fft_numpy",
    "fft_work",
    "dft_work",
    "bit_reverse_permutation",
    "random_signal",
]
