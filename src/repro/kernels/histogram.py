"""Histogram — assignment 2's data-dependent kernel.

Assignment 2 adds "basic histogram calculation, aiming to add data-dependent
behavior as an additional modeling challenge": the memory access pattern of
the bin-increment depends on the *values* of the input, so a purely static
analytical model cannot predict cache behaviour without a distribution
assumption.  Variants:

* ``scalar`` — the textbook loop;
* ``sorted_input`` — same loop over pre-sorted data (perfect bin locality;
  isolates the data-dependence effect);
* ``numpy`` — ``np.bincount``-based vectorized version;
* ``privatized`` — per-chunk private histograms merged at the end, the
  standard parallelization that trades memory for contention (here it also
  demonstrates the reduction pattern sequentially).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..parallel.backends import chunk_bounds, default_chunk, open_backend
from ..timing.metrics import WorkCount
from .base import TunableParam, register

__all__ = [
    "histogram_work",
    "histogram_scalar",
    "histogram_sorted",
    "histogram_numpy",
    "histogram_privatized",
    "histogram_chunked",
    "random_keys",
]

_DTYPE_BYTES = 8  # int64 keys and counts


def histogram_work(n: int, bins: int) -> WorkCount:
    """Work of histogramming ``n`` keys into ``bins`` buckets.

    No floating-point work; each element costs one key load, one count
    load-modify-store, and index arithmetic.  Algorithmic traffic charges
    the input once and the histogram once.
    """
    if n < 1 or bins < 1:
        raise ValueError("n and bins must be positive")
    loads = _DTYPE_BYTES * (n + bins)
    stores = _DTYPE_BYTES * bins
    return WorkCount(flops=0.0, loads_bytes=loads, stores_bytes=stores,
                     int_ops=float(2 * n))


def random_keys(n: int, bins: int, *, seed: int = 0,
                distribution: str = "uniform", alpha: float = 1.2) -> np.ndarray:
    """Generate ``n`` integer keys in ``[0, bins)``.

    ``distribution`` selects the data-dependence regime the assignment
    studies: ``uniform`` scatters increments over all bins, ``zipf``
    concentrates them in a few hot bins (cache-friendly, branch-predictable),
    ``sorted`` is uniform but ordered (perfect locality).
    """
    if n < 1 or bins < 1:
        raise ValueError("n and bins must be positive")
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        keys = rng.integers(0, bins, size=n)
    elif distribution == "zipf":
        if alpha <= 1.0:
            raise ValueError("zipf alpha must exceed 1")
        keys = (rng.zipf(alpha, size=n) - 1) % bins
    elif distribution == "sorted":
        keys = np.sort(rng.integers(0, bins, size=n))
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    return keys.astype(np.int64)


def _check_keys(keys: np.ndarray, bins: int) -> None:
    if keys.ndim != 1 or keys.size == 0:
        raise ValueError("keys must be a non-empty 1-D array")
    if bins < 1:
        raise ValueError("bins must be positive")


@register("histogram", "scalar", histogram_work, "textbook scalar histogram loop")
def histogram_scalar(keys: np.ndarray, bins: int) -> np.ndarray:
    """Count occurrences with an explicit loop; returns int64 counts."""
    _check_keys(keys, bins)
    counts = np.zeros(bins, dtype=np.int64)
    for key in keys:
        k = int(key)
        if not 0 <= k < bins:
            raise ValueError(f"key {k} outside [0, {bins})")
        counts[k] += 1
    return counts


@register("histogram", "sorted_input", histogram_work,
          "scalar loop over sorted keys — removes data-dependent locality",
          technique="data-layout")
def histogram_sorted(keys: np.ndarray, bins: int) -> np.ndarray:
    """Sort keys first, then run the scalar loop.

    The extra sort is *work-inefficient* but gives the increment stream
    perfect spatial locality, demonstrating that the kernel's cost is
    dominated by the access pattern, not the arithmetic.
    """
    _check_keys(keys, bins)
    return histogram_scalar(np.sort(keys), bins)


@register("histogram", "numpy", histogram_work,
          "np.bincount — the vectorized library endpoint", technique="vectorization")
def histogram_numpy(keys: np.ndarray, bins: int) -> np.ndarray:
    """Vectorized histogram via ``np.bincount``."""
    _check_keys(keys, bins)
    if keys.min() < 0 or keys.max() >= bins:
        raise ValueError("keys outside [0, bins)")
    return np.bincount(keys, minlength=bins).astype(np.int64)


@register("histogram", "privatized", histogram_work,
          "chunk-private histograms merged at the end (parallel reduction shape)",
          technique="privatization",
          tunables=(TunableParam("chunks", "int", 4, low=1, high=16,
                                 description="number of private partial histograms"),))
def histogram_privatized(keys: np.ndarray, bins: int, chunks: int = 4) -> np.ndarray:
    """Privatized histogram: one partial histogram per chunk, then a merge.

    This is the sequential skeleton of the OpenMP reduction version; the
    parallel simulator replays the same decomposition with timing.
    """
    _check_keys(keys, bins)
    if chunks < 1:
        raise ValueError("chunks must be positive")
    partials = np.zeros((chunks, bins), dtype=np.int64)
    for c, chunk in enumerate(np.array_split(keys, chunks)):
        if chunk.size:
            if chunk.min() < 0 or chunk.max() >= bins:
                raise ValueError("keys outside [0, bins)")
            partials[c] = np.bincount(chunk, minlength=bins)
    return partials.sum(axis=0)


def _histogram_chunk(hkeys, bins: int, inner: str,
                     bounds: tuple[int, int]) -> np.ndarray:
    """Private partial histogram of ``keys[lo:hi]``; merged by the caller.

    Returns the ``bins``-sized partial (small, so shipping it back is
    cheap); the key array itself is a zero-copy view under the process
    backend.
    """
    lo, hi = bounds
    keys = hkeys.array[lo:hi]
    if keys.size and (keys.min() < 0 or keys.max() >= bins):
        raise ValueError("keys outside [0, bins)")
    if inner == "numpy":
        return np.bincount(keys, minlength=bins).astype(np.int64)
    counts = np.zeros(bins, dtype=np.int64)
    for key in keys:
        counts[int(key)] += 1
    return counts


@register("histogram", "chunked", histogram_work,
          "privatize-and-merge histogram over a pluggable execution backend",
          technique="parallelization",
          tunables=(TunableParam("workers", "int", 2, low=1, high=8,
                                 description="backend worker count"),
                    TunableParam("backend", "choice", "thread",
                                 choices=("serial", "thread", "process"),
                                 description="execution backend"),
                    TunableParam("inner", "choice", "numpy",
                                 choices=("numpy", "scalar"),
                                 description="per-chunk inner kernel")))
def histogram_chunked(keys: np.ndarray, bins: int, workers: int = 2,
                      backend: str = "thread", inner: str = "numpy",
                      chunk_size: int | None = None) -> np.ndarray:
    """Parallel privatized histogram: per-chunk partials, merged at the end.

    The real-execution counterpart of :func:`histogram_privatized`: the same
    privatize-and-merge decomposition, but the partials are computed by an
    execution backend.  The merge is a deterministic in-order sum, so the
    result is bit-identical to the serial variants for any backend.
    """
    _check_keys(keys, bins)
    if inner not in ("numpy", "scalar"):
        raise ValueError(f"unknown inner kernel {inner!r}")
    bounds = chunk_bounds(keys.size,
                          chunk_size or default_chunk(keys.size, workers))
    with open_backend(backend, workers) as ex:
        hkeys = ex.share(keys)
        try:
            partials = ex.map(partial(_histogram_chunk, hkeys, bins, inner), bounds)
        finally:
            hkeys.release()
    total = np.zeros(bins, dtype=np.int64)
    for part in partials:
        total += part
    return total
