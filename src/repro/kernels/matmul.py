"""Dense matrix multiplication — the workhorse of assignments 1 and 2.

Assignment 1 hands students "a basic matrix multiplication code" and suggests
*loop reordering* and *loop tiling*; the point is different versions of the
same computation with different performance envelopes, all capturable by the
Roofline model.  We provide:

* all six scalar loop orders (``ijk`` … ``kji``) in pure Python — these have
  identical FLOP counts but radically different memory-access locality,
  which the cache simulator exposes;
* a tiled/blocked variant;
* NumPy variants standing in for the vectorized/optimized C versions
  (``numpy_dot`` plays the role of the tuned BLAS endpoint students compare
  against).

All variants compute ``C += A @ B`` on C-contiguous float64 arrays and are
cross-checked against each other in the test suite.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..parallel.backends import chunk_bounds, default_chunk, open_backend
from ..timing.metrics import WorkCount
from .base import TunableParam, register

__all__ = [
    "LOOP_ORDERS",
    "matmul_loop",
    "matmul_ijk",
    "matmul_ikj",
    "matmul_jik",
    "matmul_jki",
    "matmul_kij",
    "matmul_kji",
    "matmul_tiled",
    "matmul_numpy",
    "matmul_dot",
    "matmul_parallel",
    "matmul_chunked",
    "matmul_blocked_numpy",
    "matmul_work",
    "matmul_traffic_lower_bound",
    "random_matrices",
]

LOOP_ORDERS = ("ijk", "ikj", "jik", "jki", "kij", "kji")

_DTYPE_BYTES = 8  # float64 throughout


def matmul_work(n: int, m: int | None = None, k: int | None = None) -> WorkCount:
    """Algorithmic work of ``C(n×m) += A(n×k) @ B(k×m)``.

    FLOPs are exactly ``2·n·m·k``.  The *algorithmic* traffic charges each
    matrix once (compulsory misses only): reads of A, B and C plus the write
    of C — the standard "perfect cache" assumption of naive Roofline
    characterization.  Real traffic for out-of-cache sizes is far higher;
    :func:`matmul_traffic_lower_bound` gives the tighter capacity-aware
    bound used by the cache-aware roofline.
    """
    m = n if m is None else m
    k = n if k is None else k
    if min(n, m, k) < 1:
        raise ValueError("matrix dimensions must be positive")
    flops = 2.0 * n * m * k
    loads = _DTYPE_BYTES * (n * k + k * m + n * m)
    stores = _DTYPE_BYTES * (n * m)
    # address arithmetic: one index update per inner iteration
    return WorkCount(flops=flops, loads_bytes=loads, stores_bytes=stores,
                     int_ops=float(n * m * k))


def matmul_traffic_lower_bound(n: int, cache_bytes: float) -> float:
    """Hong-Kung-style I/O lower bound for square n×n matmul.

    Any schedule must move at least ``n^3 / sqrt(M_words)`` words between a
    cache of ``M_words`` words and memory (up to a constant).  Returned in
    bytes; used to bound how much tiling can help.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if cache_bytes <= 0:
        raise ValueError("cache size must be positive")
    words = cache_bytes / _DTYPE_BYTES
    return _DTYPE_BYTES * (n**3) / np.sqrt(words)


def random_matrices(n: int, seed: int = 0,
                    m: int | None = None, k: int | None = None):
    """(A, B, C) test operands: A is n×k, B is k×m, C is zeros n×m."""
    m = n if m is None else m
    k = n if k is None else k
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, k))
    b = rng.standard_normal((k, m))
    c = np.zeros((n, m))
    return a, b, c


def _check_operands(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[int, int, int]:
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise ValueError("matmul operands must be 2-D")
    n, k = a.shape
    k2, m = b.shape
    if k != k2 or c.shape != (n, m):
        raise ValueError(f"shape mismatch: A{a.shape} B{b.shape} C{c.shape}")
    return n, m, k


def matmul_loop(a: np.ndarray, b: np.ndarray, c: np.ndarray, order: str = "ijk") -> np.ndarray:
    """Scalar triple loop in the given ``order``; updates and returns ``c``.

    ``order`` is a permutation of "ijk": i indexes rows of A/C, j columns of
    B/C, k the contraction dimension.  For C-contiguous arrays, orders with
    ``j`` innermost stream B and C rows (good locality), while ``k``
    innermost strides down B's columns (poor locality).
    """
    if sorted(order) != ["i", "j", "k"]:
        raise ValueError(f"order must be a permutation of 'ijk', got {order!r}")
    n, m, k = _check_operands(a, b, c)
    ranges = {"i": range(n), "j": range(m), "k": range(k)}
    o0, o1, o2 = order
    idx = {}
    for idx[o0] in ranges[o0]:
        for idx[o1] in ranges[o1]:
            for idx[o2] in ranges[o2]:
                i, j, kk = idx["i"], idx["j"], idx["k"]
                c[i, j] += a[i, kk] * b[kk, j]
    return c


def _order_variant(order: str):
    def impl(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        return matmul_loop(a, b, c, order=order)

    impl.__name__ = f"matmul_{order}"
    impl.__doc__ = f"Scalar matmul with loop order {order} (see matmul_loop)."
    return impl


matmul_ijk = register("matmul", "ijk", matmul_work,
                      "scalar triple loop, ijk (textbook) order")(_order_variant("ijk"))
matmul_ikj = register("matmul", "ikj", matmul_work,
                      "scalar triple loop, ikj order (streams B and C rows)",
                      technique="loop-reordering")(_order_variant("ikj"))
matmul_jik = register("matmul", "jik", matmul_work, "scalar triple loop, jik order",
                      technique="loop-reordering")(_order_variant("jik"))
matmul_jki = register("matmul", "jki", matmul_work,
                      "scalar triple loop, jki order (column-major friendly)",
                      technique="loop-reordering")(_order_variant("jki"))
matmul_kij = register("matmul", "kij", matmul_work, "scalar triple loop, kij order",
                      technique="loop-reordering")(_order_variant("kij"))
matmul_kji = register("matmul", "kji", matmul_work,
                      "scalar triple loop, kji order (worst C-layout locality)",
                      technique="loop-reordering")(_order_variant("kji"))


@register("matmul", "tiled", matmul_work,
          "scalar loop blocked into cache-sized tiles", technique="tiling",
          tunables=(TunableParam("tile", "pow2", 32, low=4, high=256,
                                 description="square tile edge (elements)"),),
          metadata={"lint_expect": ("scalar-loop",)})
def matmul_tiled(a: np.ndarray, b: np.ndarray, c: np.ndarray, tile: int = 32) -> np.ndarray:
    """Cache-blocked scalar matmul with square tiles of edge ``tile``.

    Each (ti, tj, tk) tile triple fits ``3·tile²`` elements; choosing
    ``tile`` so that this is within L1/L2 turns the k-loop's capacity misses
    into hits — the effect assignment 1 asks students to demonstrate.
    """
    if tile < 1:
        raise ValueError("tile must be positive")
    n, m, k = _check_operands(a, b, c)
    for ti in range(0, n, tile):
        ti_end = min(ti + tile, n)
        for tk in range(0, k, tile):
            tk_end = min(tk + tile, k)
            for tj in range(0, m, tile):
                tj_end = min(tj + tile, m)
                for i in range(ti, ti_end):
                    for kk in range(tk, tk_end):
                        aik = a[i, kk]
                        for j in range(tj, tj_end):
                            c[i, j] += aik * b[kk, j]
    return c


@register("matmul", "numpy", matmul_work,
          "BLAS-backed np.matmul — the 'tuned library' endpoint",
          technique="vectorization")
def matmul_numpy(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """``C += A @ B`` through NumPy's BLAS; the optimized reference point."""
    _check_operands(a, b, c)
    c += a @ b
    return c


@register("matmul", "dot", matmul_work,
          "np.dot library call — the pre-PEP-465 spelling of matmul.numpy",
          technique="library",
          metadata={"lint_expect": ("dot-matmul",),
                    "workcount_expect": ("np.dot is opaque to the shadow "
                                         "interpreter; BLAS flops uncounted")})
def matmul_dot(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """``C += np.dot(A, B)`` — same BLAS as matmul.numpy, dated idiom.

    Kept as the L005 exemplar the transform tier rewrites to ``@``.
    """
    _check_operands(a, b, c)
    c += np.dot(a, b)
    return c


@register("matmul", "parallel", matmul_work,
          "row-block parallel matmul over a real thread pool",
          technique="parallelization",
          tunables=(TunableParam("workers", "int", 2, low=1, high=8,
                                 description="thread-pool size"),))
def matmul_parallel(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                    workers: int = 2) -> np.ndarray:
    """``C += A @ B`` with row blocks distributed over real threads.

    Assignment 1's final task: "implement and Roofline-model a parallel
    version of matrix multiplication".  NumPy's BLAS releases the GIL, so
    the thread pool yields true parallel execution; the per-worker block
    product keeps each thread's working set contiguous.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    n, m, k = _check_operands(a, b, c)
    if workers == 1:
        c += a @ b
        return c
    from concurrent.futures import ThreadPoolExecutor

    block = (n + workers - 1) // workers

    def do_block(lo: int) -> None:
        hi = min(lo + block, n)
        c[lo:hi] += a[lo:hi] @ b

    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(do_block, range(0, n, block)))
    return c


def _matmul_rows(ha, hb, hc, inner: str, bounds: tuple[int, int]) -> None:
    """One row-block ``C[lo:hi] += A[lo:hi] @ B`` through array handles.

    Module-level (hence picklable) so the process backend can ship it; the
    handles resolve to shared-memory views there and to the caller's own
    arrays under the serial/thread backends.
    """
    lo, hi = bounds
    a, b, c = ha.array, hb.array, hc.array
    if inner == "numpy":
        c[lo:hi] += a[lo:hi] @ b
        return
    k, m = b.shape
    for i in range(lo, hi):
        for kk in range(k):
            aik = a[i, kk]
            for j in range(m):
                c[i, j] += aik * b[kk, j]


@register("matmul", "chunked", matmul_work,
          "row-block matmul over a pluggable execution backend",
          technique="parallelization",
          tunables=(TunableParam("workers", "int", 2, low=1, high=8,
                                 description="backend worker count"),
                    TunableParam("backend", "choice", "thread",
                                 choices=("serial", "thread", "process"),
                                 description="execution backend"),
                    TunableParam("inner", "choice", "numpy",
                                 choices=("numpy", "scalar"),
                                 description="per-block inner kernel")))
def matmul_chunked(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                   workers: int = 2, backend: str = "thread",
                   inner: str = "numpy", chunk_size: int | None = None) -> np.ndarray:
    """``C += A @ B`` as independent row blocks on an execution backend.

    The decomposition is fixed; only the executor varies — the point of the
    backend subsystem.  With ``inner="scalar"`` the block body is pure
    Python (GIL-bound): the thread backend cannot speed it up but the
    process backend can, since operands travel as zero-copy shared-memory
    views, never pickled matrices.  ``backend`` may also be a live
    :class:`~repro.parallel.backends.ExecutionBackend` to amortize one pool
    across calls (it is borrowed, not closed).
    """
    if inner not in ("numpy", "scalar"):
        raise ValueError(f"unknown inner kernel {inner!r}")
    n, m, k = _check_operands(a, b, c)
    bounds = chunk_bounds(n, chunk_size or default_chunk(n, workers))
    with open_backend(backend, workers) as ex:
        ha, hb, hc = ex.share(a), ex.share(b), ex.share(c)
        try:
            ex.map(partial(_matmul_rows, ha, hb, hc, inner), bounds)
            ex.gather(hc, c)
        finally:
            for h in (ha, hb, hc):
                h.release()
    return c


@register("matmul", "blocked_numpy", matmul_work,
          "tile loop with NumPy inner kernels — tiling at a coarser grain",
          technique="tiling",
          tunables=(TunableParam("tile", "pow2", 128, low=16, high=512,
                                 description="square tile edge (elements)"),))
def matmul_blocked_numpy(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                         tile: int = 128) -> np.ndarray:
    """Blocked matmul whose inner tile product uses NumPy.

    Demonstrates that once the inner kernel is compute-efficient, blocking
    matters only for sizes whose working set exceeds the cache.
    """
    if tile < 1:
        raise ValueError("tile must be positive")
    n, m, k = _check_operands(a, b, c)
    for ti in range(0, n, tile):
        ti_end = min(ti + tile, n)
        for tk in range(0, k, tile):
            tk_end = min(tk + tile, k)
            a_blk = a[ti:ti_end, tk:tk_end]
            for tj in range(0, m, tile):
                tj_end = min(tj + tile, m)
                c[ti:ti_end, tj:tj_end] += a_blk @ b[tk:tk_end, tj:tj_end]
    return c
