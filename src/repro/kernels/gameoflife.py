"""Conway's Game of Life — the second most popular student project (§5.1).

Life is a 9-point boolean stencil; its optimization ladder differs from
Jacobi's because the update is branchy (birth/survival rules) rather than
arithmetic.  Variants:

* ``scalar`` — nested loops with an explicit neighbour count;
* ``numpy`` — vectorized neighbour sum via shifted slices on a
  zero-padded board;
* ``convolve`` — neighbour sum as a convolution (scipy), the "use a tuned
  library" endpoint.

Boards are 2-D uint8 arrays with 0 = dead, 1 = alive and *dead boundary*
(non-periodic), so all variants agree exactly.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve as _convolve

from ..timing.metrics import WorkCount
from .base import register

__all__ = [
    "life_work",
    "life_step_scalar",
    "life_step_numpy",
    "life_step_convolve",
    "random_board",
    "glider_board",
    "run_life",
]

_KERNEL = np.array([[1, 1, 1], [1, 0, 1], [1, 1, 1]], dtype=np.uint8)


def life_work(n: int, m: int | None = None) -> WorkCount:
    """Work of one Life generation on an n×m board.

    8 neighbour adds + rule evaluation per cell; traffic charges the board
    once in and once out (1 byte per cell).
    """
    m = n if m is None else m
    if n < 1 or m < 1:
        raise ValueError("board dimensions must be positive")
    cells = n * m
    return WorkCount(flops=0.0, loads_bytes=float(cells), stores_bytes=float(cells),
                     int_ops=float(10 * cells))


def random_board(n: int, m: int | None = None, density: float = 0.3,
                 seed: int = 0) -> np.ndarray:
    """Random board with ~``density`` live fraction."""
    m = n if m is None else m
    if n < 1 or m < 1:
        raise ValueError("board dimensions must be positive")
    if not 0 <= density <= 1:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    return (rng.random((n, m)) < density).astype(np.uint8)


def glider_board(n: int = 16) -> np.ndarray:
    """An n×n board containing a single glider — a correctness fixture."""
    if n < 5:
        raise ValueError("board too small for a glider")
    board = np.zeros((n, n), dtype=np.uint8)
    glider = [(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)]
    for r, c in glider:
        board[r, c] = 1
    return board


def _check_board(board: np.ndarray) -> None:
    if board.ndim != 2 or board.size == 0:
        raise ValueError("board must be a non-empty 2-D array")
    if board.dtype != np.uint8:
        raise ValueError("board must be uint8 (0=dead, 1=alive)")
    if board.max(initial=0) > 1:
        raise ValueError("board values must be 0 or 1")


def _apply_rules(board: np.ndarray, neighbours: np.ndarray) -> np.ndarray:
    # survive on 2 or 3 neighbours, birth on exactly 3; for a validated 0/1
    # board this is exactly (neighbours == 3) | ((neighbours == 2) & alive),
    # which needs one chained temporary instead of five
    alive = neighbours == 3
    two = neighbours == 2
    two &= board == 1
    alive |= two
    return alive.astype(np.uint8)


@register("gameoflife", "scalar", life_work, "nested-loop Life generation",
          metadata={"lint_expect": ("scalar-loop",)})
def life_step_scalar(board: np.ndarray) -> np.ndarray:
    """One generation with explicit loops; dead cells beyond the edge."""
    _check_board(board)
    n, m = board.shape
    out = np.zeros_like(board)
    for i in range(n):
        for j in range(m):
            count = 0
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    if di == 0 and dj == 0:
                        continue
                    ni, nj = i + di, j + dj
                    if 0 <= ni < n and 0 <= nj < m:
                        count += board[ni, nj]
            alive = board[i, j]
            out[i, j] = 1 if (count == 3 or (alive and count == 2)) else 0
    return out


@register("gameoflife", "numpy", life_work,
          "vectorized Life via shifted slices on a padded board",
          technique="vectorization",
          metadata={"workcount_expect":
                    "accumulates through explicit pad/neighbour scratch "
                    "buffers; the declared model counts only the board-"
                    "sized read and write"})
def life_step_numpy(board: np.ndarray) -> np.ndarray:
    """One generation with a padded shifted-slice neighbour sum.

    The eight shifted reads accumulate into one preallocated buffer with
    ``np.add(..., out=)`` — no temporary per ``+`` — and the pad is an
    explicit zeroed frame rather than an ``np.pad``-then-``astype`` chain.
    """
    _check_board(board)
    n, m = board.shape
    padded = np.zeros((n + 2, m + 2), dtype=np.int16)
    padded[1:-1, 1:-1] = board
    neighbours = np.zeros((n, m), dtype=np.int16)
    np.add(padded[:-2, :-2], padded[:-2, 1:-1], out=neighbours)
    np.add(neighbours, padded[:-2, 2:], out=neighbours)
    np.add(neighbours, padded[1:-1, :-2], out=neighbours)
    np.add(neighbours, padded[1:-1, 2:], out=neighbours)
    np.add(neighbours, padded[2:, :-2], out=neighbours)
    np.add(neighbours, padded[2:, 1:-1], out=neighbours)
    np.add(neighbours, padded[2:, 2:], out=neighbours)
    return _apply_rules(board, neighbours)


@register("gameoflife", "convolve", life_work,
          "Life via scipy convolution — the library endpoint",
          technique="library")
def life_step_convolve(board: np.ndarray) -> np.ndarray:
    """One generation with the neighbour count done by ``scipy.ndimage``."""
    _check_board(board)
    neighbours = _convolve(board.astype(np.int16), _KERNEL.astype(np.int16),
                           mode="constant", cval=0)
    return _apply_rules(board, neighbours)


def run_life(board: np.ndarray, generations: int,
             step=life_step_numpy) -> np.ndarray:
    """Advance ``board`` by ``generations`` steps with the chosen variant."""
    if generations < 0:
        raise ValueError("generations cannot be negative")
    current = board
    for _ in range(generations):
        current = step(current)
    return current
