"""2D stencil kernels — the paper's most popular student project.

Section 5.1: "Recurring projects are, in decreasing order of popularity:
2D stencil code optimization …".  We provide a 5-point Jacobi stencil (heat
diffusion) with the optimization ladder a typical project walks:

* ``scalar`` — nested Python loops;
* ``numpy`` — sliced, fully vectorized update;
* ``inplace_numpy`` — vectorized with preallocated output (no temporaries);
* ``blocked`` — spatially tiled traversal (cache blocking);

plus work models and a convergence-checking driver used by the project
example.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from ..parallel.backends import chunk_bounds, default_chunk, open_backend
from ..timing.metrics import WorkCount
from .base import TunableParam, register

__all__ = [
    "stencil_work",
    "jacobi_step_scalar",
    "jacobi_step_numpy",
    "jacobi_step_inplace",
    "jacobi_step_blocked",
    "jacobi_step_chunked",
    "jacobi_solve",
    "init_grid",
]

_B = 8  # float64


def stencil_work(n: int, m: int | None = None) -> WorkCount:
    """Work of one 5-point Jacobi sweep on the interior of an n×m grid.

    4 adds + 1 multiply per interior point; traffic charges the input and
    output grids once each (streaming lower bound).
    """
    m = n if m is None else m
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3 to have an interior")
    interior = (n - 2) * (m - 2)
    return WorkCount(flops=5.0 * interior, loads_bytes=_B * n * m,
                     stores_bytes=_B * interior, int_ops=float(4 * interior))


def init_grid(n: int, m: int | None = None, hot_edge: float = 100.0) -> np.ndarray:
    """n×m grid, zero interior, one hot boundary row (top) — a heat plate."""
    m = n if m is None else m
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3")
    grid = np.zeros((n, m))
    grid[0, :] = hot_edge
    return grid


def _check_grids(src: np.ndarray, dst: np.ndarray) -> tuple[int, int]:
    if src.ndim != 2 or src.shape != dst.shape:
        raise ValueError("src/dst must be 2-D arrays of identical shape")
    n, m = src.shape
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3")
    if src is dst:
        raise ValueError("Jacobi requires distinct src and dst grids")
    return n, m


@register("stencil", "scalar", stencil_work, "5-point Jacobi sweep, nested loops",
          metadata={"lint_expect": ("scalar-loop",)})
def jacobi_step_scalar(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """One Jacobi sweep with explicit loops; boundary copied through."""
    n, m = _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    for i in range(1, n - 1):
        for j in range(1, m - 1):
            dst[i, j] = 0.25 * (src[i - 1, j] + src[i + 1, j]
                                + src[i, j - 1] + src[i, j + 1])
    return dst


@register("stencil", "numpy", stencil_work, "5-point Jacobi sweep, sliced numpy",
          technique="vectorization",
          metadata={"lint_expect": ("missing-out", "hidden-temp-chain")})
def jacobi_step_numpy(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """One Jacobi sweep with whole-array slicing."""
    _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    dst[1:-1, 1:-1] = 0.25 * (src[:-2, 1:-1] + src[2:, 1:-1]
                              + src[1:-1, :-2] + src[1:-1, 2:])
    return dst


@register("stencil", "inplace_numpy", stencil_work,
          "sliced numpy with explicit out= buffers (no temporaries)",
          technique="memory-reuse")
def jacobi_step_inplace(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Jacobi sweep writing through ``out=`` to avoid temporary arrays.

    Demonstrates the guide's "in-place operations / be easy on the memory"
    advice: four binary ops, zero heap allocations.
    """
    _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    interior = dst[1:-1, 1:-1]
    np.add(src[:-2, 1:-1], src[2:, 1:-1], out=interior)
    np.add(interior, src[1:-1, :-2], out=interior)
    np.add(interior, src[1:-1, 2:], out=interior)
    interior *= 0.25
    return dst


@register("stencil", "blocked", stencil_work,
          "spatially tiled Jacobi sweep (numpy inner blocks)", technique="tiling",
          tunables=(TunableParam("tile", "pow2", 64, low=16, high=512,
                                 description="square spatial tile edge"),),
          metadata={"lint_expect": ("missing-out", "hidden-temp-chain")})
def jacobi_step_blocked(src: np.ndarray, dst: np.ndarray, tile: int = 64) -> np.ndarray:
    """Jacobi sweep over square spatial tiles.

    For grids far larger than LLC, tiling keeps each tile's halo resident
    while it is consumed; the simulator quantifies the traffic reduction.
    """
    if tile < 1:
        raise ValueError("tile must be positive")
    n, m = _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    for ti in range(1, n - 1, tile):
        ti_end = min(ti + tile, n - 1)
        for tj in range(1, m - 1, tile):
            tj_end = min(tj + tile, m - 1)
            dst[ti:ti_end, tj:tj_end] = 0.25 * (
                src[ti - 1:ti_end - 1, tj:tj_end] + src[ti + 1:ti_end + 1, tj:tj_end]
                + src[ti:ti_end, tj - 1:tj_end - 1] + src[ti:ti_end, tj + 1:tj_end + 1])
    return dst


def _jacobi_band(hsrc, hdst, inner: str, bounds: tuple[int, int]) -> None:
    """Sweep interior rows ``[lo, hi)`` of a tile band through handles.

    Jacobi reads only ``src`` and writes disjoint ``dst`` rows, so bands
    are independent — the classic halo-free data-parallel sweep.  Bounds
    are absolute grid row indices inside the interior.
    """
    lo, hi = bounds
    src, dst = hsrc.array, hdst.array
    if inner == "numpy":
        dst[lo:hi, 1:-1] = 0.25 * (src[lo - 1:hi - 1, 1:-1] + src[lo + 1:hi + 1, 1:-1]
                                   + src[lo:hi, :-2] + src[lo:hi, 2:])
        return
    m = src.shape[1]
    for i in range(lo, hi):
        for j in range(1, m - 1):
            dst[i, j] = 0.25 * (src[i - 1, j] + src[i + 1, j]
                                + src[i, j - 1] + src[i, j + 1])


@register("stencil", "chunked", stencil_work,
          "row-band tile sweep over a pluggable execution backend",
          technique="parallelization",
          tunables=(TunableParam("workers", "int", 2, low=1, high=8,
                                 description="backend worker count"),
                    TunableParam("backend", "choice", "thread",
                                 choices=("serial", "thread", "process"),
                                 description="execution backend"),
                    TunableParam("inner", "choice", "numpy",
                                 choices=("numpy", "scalar"),
                                 description="per-band inner kernel")))
def jacobi_step_chunked(src: np.ndarray, dst: np.ndarray,
                        workers: int = 2, backend: str = "thread",
                        inner: str = "numpy",
                        chunk_size: int | None = None) -> np.ndarray:
    """One Jacobi sweep as independent interior row bands on a backend.

    The grids travel to process workers as zero-copy shared-memory views;
    each band writes a disjoint slab of ``dst``, so no merge is needed —
    only the gather back into the caller's ``dst``.
    """
    if inner not in ("numpy", "scalar"):
        raise ValueError(f"unknown inner kernel {inner!r}")
    n, m = _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    interior = n - 2
    bounds = [(lo + 1, hi + 1)  # shift [0, interior) to absolute rows
              for lo, hi in chunk_bounds(interior,
                                         chunk_size or default_chunk(interior, workers))]
    with open_backend(backend, workers) as ex:
        hsrc, hdst = ex.share(src), ex.share(dst)
        try:
            ex.map(partial(_jacobi_band, hsrc, hdst, inner), bounds)
            ex.gather(hdst, dst)
        finally:
            hsrc.release()
            hdst.release()
    return dst


def jacobi_solve(grid: np.ndarray, tol: float = 1e-4, max_iters: int = 10_000,
                 step=jacobi_step_numpy) -> tuple[np.ndarray, int]:
    """Iterate ``step`` until the max update falls below ``tol``.

    Returns (final grid, iterations).  The project example sweeps ``step``
    over variants and compares time-to-solution, the metric that matters.
    """
    if tol <= 0:
        raise ValueError("tol must be positive")
    if max_iters < 1:
        raise ValueError("max_iters must be positive")
    src = grid.copy()
    dst = np.empty_like(src)
    for it in range(1, max_iters + 1):
        step(src, dst)
        delta = float(np.max(np.abs(dst - src)))
        src, dst = dst, src
        if delta < tol:
            return src, it
    return src, max_iters
