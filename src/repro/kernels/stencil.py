"""2D stencil kernels — the paper's most popular student project.

Section 5.1: "Recurring projects are, in decreasing order of popularity:
2D stencil code optimization …".  We provide a 5-point Jacobi stencil (heat
diffusion) with the optimization ladder a typical project walks:

* ``scalar`` — nested Python loops;
* ``numpy`` — sliced, fully vectorized update;
* ``inplace_numpy`` — vectorized with preallocated output (no temporaries);
* ``blocked`` — spatially tiled traversal (cache blocking);

plus work models and a convergence-checking driver used by the project
example.
"""

from __future__ import annotations

import numpy as np

from ..timing.metrics import WorkCount
from .base import TunableParam, register

__all__ = [
    "stencil_work",
    "jacobi_step_scalar",
    "jacobi_step_numpy",
    "jacobi_step_inplace",
    "jacobi_step_blocked",
    "jacobi_solve",
    "init_grid",
]

_B = 8  # float64


def stencil_work(n: int, m: int | None = None) -> WorkCount:
    """Work of one 5-point Jacobi sweep on the interior of an n×m grid.

    4 adds + 1 multiply per interior point; traffic charges the input and
    output grids once each (streaming lower bound).
    """
    m = n if m is None else m
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3 to have an interior")
    interior = (n - 2) * (m - 2)
    return WorkCount(flops=5.0 * interior, loads_bytes=_B * n * m,
                     stores_bytes=_B * interior, int_ops=float(4 * interior))


def init_grid(n: int, m: int | None = None, hot_edge: float = 100.0) -> np.ndarray:
    """n×m grid, zero interior, one hot boundary row (top) — a heat plate."""
    m = n if m is None else m
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3")
    grid = np.zeros((n, m))
    grid[0, :] = hot_edge
    return grid


def _check_grids(src: np.ndarray, dst: np.ndarray) -> tuple[int, int]:
    if src.ndim != 2 or src.shape != dst.shape:
        raise ValueError("src/dst must be 2-D arrays of identical shape")
    n, m = src.shape
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3")
    if src is dst:
        raise ValueError("Jacobi requires distinct src and dst grids")
    return n, m


@register("stencil", "scalar", stencil_work, "5-point Jacobi sweep, nested loops")
def jacobi_step_scalar(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """One Jacobi sweep with explicit loops; boundary copied through."""
    n, m = _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    for i in range(1, n - 1):
        for j in range(1, m - 1):
            dst[i, j] = 0.25 * (src[i - 1, j] + src[i + 1, j]
                                + src[i, j - 1] + src[i, j + 1])
    return dst


@register("stencil", "numpy", stencil_work, "5-point Jacobi sweep, sliced numpy",
          technique="vectorization")
def jacobi_step_numpy(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """One Jacobi sweep with whole-array slicing."""
    _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    dst[1:-1, 1:-1] = 0.25 * (src[:-2, 1:-1] + src[2:, 1:-1]
                              + src[1:-1, :-2] + src[1:-1, 2:])
    return dst


@register("stencil", "inplace_numpy", stencil_work,
          "sliced numpy with explicit out= buffers (no temporaries)",
          technique="memory-reuse")
def jacobi_step_inplace(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Jacobi sweep writing through ``out=`` to avoid temporary arrays.

    Demonstrates the guide's "in-place operations / be easy on the memory"
    advice: four binary ops, zero heap allocations.
    """
    _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    interior = dst[1:-1, 1:-1]
    np.add(src[:-2, 1:-1], src[2:, 1:-1], out=interior)
    np.add(interior, src[1:-1, :-2], out=interior)
    np.add(interior, src[1:-1, 2:], out=interior)
    interior *= 0.25
    return dst


@register("stencil", "blocked", stencil_work,
          "spatially tiled Jacobi sweep (numpy inner blocks)", technique="tiling",
          tunables=(TunableParam("tile", "pow2", 64, low=16, high=512,
                                 description="square spatial tile edge"),))
def jacobi_step_blocked(src: np.ndarray, dst: np.ndarray, tile: int = 64) -> np.ndarray:
    """Jacobi sweep over square spatial tiles.

    For grids far larger than LLC, tiling keeps each tile's halo resident
    while it is consumed; the simulator quantifies the traffic reduction.
    """
    if tile < 1:
        raise ValueError("tile must be positive")
    n, m = _check_grids(src, dst)
    dst[0, :], dst[-1, :] = src[0, :], src[-1, :]
    dst[:, 0], dst[:, -1] = src[:, 0], src[:, -1]
    for ti in range(1, n - 1, tile):
        ti_end = min(ti + tile, n - 1)
        for tj in range(1, m - 1, tile):
            tj_end = min(tj + tile, m - 1)
            dst[ti:ti_end, tj:tj_end] = 0.25 * (
                src[ti - 1:ti_end - 1, tj:tj_end] + src[ti + 1:ti_end + 1, tj:tj_end]
                + src[ti:ti_end, tj - 1:tj_end - 1] + src[ti:ti_end, tj + 1:tj_end + 1])
    return dst


def jacobi_solve(grid: np.ndarray, tol: float = 1e-4, max_iters: int = 10_000,
                 step=jacobi_step_numpy) -> tuple[np.ndarray, int]:
    """Iterate ``step`` until the max update falls below ``tol``.

    Returns (final grid, iterations).  The project example sweeps ``step``
    over variants and compares time-to-solution, the metric that matters.
    """
    if tol <= 0:
        raise ValueError("tol must be positive")
    if max_iters < 1:
        raise ValueError("max_iters must be positive")
    src = grid.copy()
    dst = np.empty_like(src)
    for it in range(1, max_iters + 1):
        step(src, dst)
        delta = float(np.max(np.abs(dst - src)))
        src, dst = dst, src
        if delta < tol:
            return src, it
    return src, max_iters
