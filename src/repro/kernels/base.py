"""Common kernel infrastructure.

Every assignment workload (matmul, histogram, SpMV, STREAM, stencil, Game of
Life, FFT) is packaged as a set of *variants* of the same computation —
exactly how the assignments hand students "a basic code" plus suggested
optimizations.  A variant couples:

* a callable that performs the computation,
* a :class:`~repro.timing.metrics.WorkCount` model of its algorithmic work,
* metadata (optimization technique, expected bound) used by reports.

The registry lets the toolbox, examples, and benchmarks discover variants by
kernel/variant name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

from ..timing.metrics import WorkCount

__all__ = ["TunableParam", "KernelVariant", "KernelRegistry", "REGISTRY", "register"]


@dataclass(frozen=True)
class TunableParam:
    """Declared tunable knob of a kernel variant.

    Pure metadata — the auto-tuner (:mod:`repro.tuning`) converts these
    into search-space parameters via ``space_for``.  ``kind`` selects the
    axis shape:

    * ``"int"``   — integers ``low..high`` with stride ``step``;
    * ``"pow2"``  — powers of two in ``[low, high]``;
    * ``"choice"``— the explicit ``choices`` tuple.
    """

    name: str
    kind: str
    default: object
    low: int | None = None
    high: int | None = None
    step: int = 1
    choices: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tunable needs a name")
        if self.kind not in ("int", "pow2", "choice"):
            raise ValueError(f"{self.name}: unknown tunable kind {self.kind!r}")
        if self.kind == "choice":
            if not self.choices:
                raise ValueError(f"{self.name}: choice tunable needs choices")
            if self.default not in self.choices:
                raise ValueError(f"{self.name}: default {self.default!r} not a choice")
        else:
            if self.low is None or self.high is None:
                raise ValueError(f"{self.name}: {self.kind} tunable needs low and high")
            if not self.low <= self.default <= self.high:
                raise ValueError(
                    f"{self.name}: default {self.default} outside [{self.low}, {self.high}]")


@dataclass(frozen=True)
class KernelVariant:
    """One implementation variant of a kernel.

    Attributes
    ----------
    kernel:
        Kernel family name, e.g. ``"matmul"``.
    name:
        Variant name, e.g. ``"tiled"``.
    fn:
        The implementation.  Signatures vary by family; families document
        theirs.
    work:
        Callable mapping the same problem-size arguments to a
        :class:`WorkCount`.
    description:
        One-line description used by generated reports.
    technique:
        Optimization technique demonstrated (``"loop-reordering"``,
        ``"tiling"``, ``"vectorization"``, ...) or ``"baseline"``.
    tunables:
        Declared tunable keyword parameters of ``fn`` (empty for variants
        with nothing to tune); consumed by :mod:`repro.tuning`.
    metadata:
        Free-form analysis metadata.  Recognized keys:

        * ``lint_expect`` — tuple of :mod:`repro.analyze` rule slugs this
          variant *intentionally* exhibits (the scalar "basic code" students
          start from declares ``"scalar-loop"`` here instead of being a
          false positive).  Expected findings are reported but never fail
          the analysis gate; expectations that stop matching are flagged as
          stale so the metadata cannot rot.
        * ``workcount_expect`` — reason string acknowledging that the
          static work-count estimate legitimately diverges from the
          declared :class:`WorkCount` model (downgrades the divergence
          finding to informational).
    """

    kernel: str
    name: str
    fn: Callable
    work: Callable[..., WorkCount]
    description: str = ""
    technique: str = "baseline"
    tunables: tuple[TunableParam, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # freeze the mapping so a frozen dataclass stays actually immutable
        object.__setattr__(self, "metadata", MappingProxyType(dict(self.metadata)))

    @property
    def qualified_name(self) -> str:
        return f"{self.kernel}.{self.name}"

    @property
    def lint_expect(self) -> tuple[str, ...]:
        """Rule slugs this variant intentionally exhibits (see ``metadata``)."""
        return tuple(self.metadata.get("lint_expect", ()))

    @property
    def is_tunable(self) -> bool:
        return bool(self.tunables)

    def tunable(self, name: str) -> TunableParam:
        for t in self.tunables:
            if t.name == name:
                return t
        raise KeyError(f"{self.qualified_name} has no tunable {name!r}")

    def default_config(self) -> dict:
        """Default value of every declared tunable."""
        return {t.name: t.default for t in self.tunables}


class KernelRegistry:
    """Name-indexed store of :class:`KernelVariant` objects."""

    def __init__(self) -> None:
        self._variants: dict[str, KernelVariant] = {}

    def add(self, variant: KernelVariant) -> KernelVariant:
        key = variant.qualified_name
        if key in self._variants:
            raise ValueError(f"variant {key!r} already registered")
        self._variants[key] = variant
        return variant

    def get(self, kernel: str, name: str) -> KernelVariant:
        key = f"{kernel}.{name}"
        try:
            return self._variants[key]
        except KeyError:
            raise KeyError(f"no variant {key!r}; known: {sorted(self._variants)}") from None

    def variants_of(self, kernel: str) -> list[KernelVariant]:
        out = [v for v in self._variants.values() if v.kernel == kernel]
        if not out:
            raise KeyError(f"no kernel family {kernel!r}")
        return out

    def kernels(self) -> list[str]:
        return sorted({v.kernel for v in self._variants.values()})

    def tunable_variants(self, kernel: str | None = None) -> list[KernelVariant]:
        """Variants declaring at least one tunable, optionally per family."""
        return [v for v in self._variants.values()
                if v.is_tunable and (kernel is None or v.kernel == kernel)]

    def __len__(self) -> int:
        return len(self._variants)

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._variants


#: Global registry populated at import time by the kernel modules.
REGISTRY = KernelRegistry()


def register(
    kernel: str,
    name: str,
    work: Callable[..., WorkCount],
    description: str = "",
    technique: str = "baseline",
    tunables: tuple[TunableParam, ...] = (),
    metadata: Mapping[str, object] | None = None,
):
    """Decorator registering a function as a kernel variant."""

    def deco(fn: Callable) -> Callable:
        REGISTRY.add(
            KernelVariant(
                kernel=kernel,
                name=name,
                fn=fn,
                work=work,
                description=description,
                technique=technique,
                tunables=tuple(tunables),
                metadata=dict(metadata or {}),
            )
        )
        return fn

    return deco
