"""Common kernel infrastructure.

Every assignment workload (matmul, histogram, SpMV, STREAM, stencil, Game of
Life, FFT) is packaged as a set of *variants* of the same computation —
exactly how the assignments hand students "a basic code" plus suggested
optimizations.  A variant couples:

* a callable that performs the computation,
* a :class:`~repro.timing.metrics.WorkCount` model of its algorithmic work,
* metadata (optimization technique, expected bound) used by reports.

The registry lets the toolbox, examples, and benchmarks discover variants by
kernel/variant name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..timing.metrics import WorkCount

__all__ = ["KernelVariant", "KernelRegistry", "REGISTRY", "register"]


@dataclass(frozen=True)
class KernelVariant:
    """One implementation variant of a kernel.

    Attributes
    ----------
    kernel:
        Kernel family name, e.g. ``"matmul"``.
    name:
        Variant name, e.g. ``"tiled"``.
    fn:
        The implementation.  Signatures vary by family; families document
        theirs.
    work:
        Callable mapping the same problem-size arguments to a
        :class:`WorkCount`.
    description:
        One-line description used by generated reports.
    technique:
        Optimization technique demonstrated (``"loop-reordering"``,
        ``"tiling"``, ``"vectorization"``, ...) or ``"baseline"``.
    """

    kernel: str
    name: str
    fn: Callable
    work: Callable[..., WorkCount]
    description: str = ""
    technique: str = "baseline"

    @property
    def qualified_name(self) -> str:
        return f"{self.kernel}.{self.name}"


class KernelRegistry:
    """Name-indexed store of :class:`KernelVariant` objects."""

    def __init__(self) -> None:
        self._variants: dict[str, KernelVariant] = {}

    def add(self, variant: KernelVariant) -> KernelVariant:
        key = variant.qualified_name
        if key in self._variants:
            raise ValueError(f"variant {key!r} already registered")
        self._variants[key] = variant
        return variant

    def get(self, kernel: str, name: str) -> KernelVariant:
        key = f"{kernel}.{name}"
        try:
            return self._variants[key]
        except KeyError:
            raise KeyError(f"no variant {key!r}; known: {sorted(self._variants)}") from None

    def variants_of(self, kernel: str) -> list[KernelVariant]:
        out = [v for v in self._variants.values() if v.kernel == kernel]
        if not out:
            raise KeyError(f"no kernel family {kernel!r}")
        return out

    def kernels(self) -> list[str]:
        return sorted({v.kernel for v in self._variants.values()})

    def __len__(self) -> int:
        return len(self._variants)

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._variants


#: Global registry populated at import time by the kernel modules.
REGISTRY = KernelRegistry()


def register(
    kernel: str,
    name: str,
    work: Callable[..., WorkCount],
    description: str = "",
    technique: str = "baseline",
):
    """Decorator registering a function as a kernel variant."""

    def deco(fn: Callable) -> Callable:
        REGISTRY.add(
            KernelVariant(
                kernel=kernel,
                name=name,
                fn=fn,
                work=work,
                description=description,
                technique=technique,
            )
        )
        return fn

    return deco
