"""STREAM microbenchmark kernels (McCalpin).

Assignment 2 names STREAM as a model-calibration tool; the microbenchmark
suite (:mod:`repro.microbench.memory`) runs these kernels to characterize a
machine's sustainable bandwidth, and the Roofline assignment uses Triad as
the archetypal memory-bound code.

Each kernel reports STREAM's conventional traffic accounting (e.g. Triad
moves 3 arrays = 24 bytes/iteration for float64, ignoring write-allocate
traffic, exactly as the original benchmark does).
"""

from __future__ import annotations

import numpy as np

from ..timing.metrics import WorkCount
from .base import register

__all__ = [
    "stream_arrays",
    "copy_work", "scale_work", "add_work", "triad_work",
    "stream_copy", "stream_scale", "stream_add", "stream_triad",
    "stream_triad_scalar",
    "STREAM_KERNELS",
]

_B = 8  # float64


def stream_arrays(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Allocate the three STREAM arrays a, b, c of length ``n``."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    return rng.random(n), rng.random(n), rng.random(n)


def copy_work(n: int) -> WorkCount:
    """c = a: 0 FLOP, 16 bytes/element."""
    _check_n(n)
    return WorkCount(flops=0.0, loads_bytes=_B * n, stores_bytes=_B * n)


def scale_work(n: int) -> WorkCount:
    """b = s*c: 1 FLOP, 16 bytes/element."""
    _check_n(n)
    return WorkCount(flops=float(n), loads_bytes=_B * n, stores_bytes=_B * n)


def add_work(n: int) -> WorkCount:
    """c = a+b: 1 FLOP, 24 bytes/element."""
    _check_n(n)
    return WorkCount(flops=float(n), loads_bytes=2 * _B * n, stores_bytes=_B * n)


def triad_work(n: int) -> WorkCount:
    """a = b+s*c: 2 FLOP, 24 bytes/element."""
    _check_n(n)
    return WorkCount(flops=2.0 * n, loads_bytes=2 * _B * n, stores_bytes=_B * n)


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError("n must be positive")


def _check_same(*arrays: np.ndarray) -> int:
    n = arrays[0].size
    for a in arrays:
        if a.ndim != 1 or a.size != n:
            raise ValueError("STREAM arrays must be 1-D and equally sized")
    return n


@register("stream", "copy", lambda a, c: copy_work(a.size), "STREAM Copy: c = a")
def stream_copy(a: np.ndarray, c: np.ndarray) -> np.ndarray:
    """c[:] = a[:] (in place, no allocation)."""
    _check_same(a, c)
    np.copyto(c, a)
    return c


@register("stream", "scale", lambda c, b, s=3.0: scale_work(c.size),
          "STREAM Scale: b = s*c")
def stream_scale(c: np.ndarray, b: np.ndarray, s: float = 3.0) -> np.ndarray:
    """b[:] = s * c[:]."""
    _check_same(c, b)
    np.multiply(c, s, out=b)
    return b


@register("stream", "add", lambda a, b, c: add_work(a.size), "STREAM Add: c = a+b")
def stream_add(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """c[:] = a[:] + b[:]."""
    _check_same(a, b, c)
    np.add(a, b, out=c)
    return c


@register("stream", "triad", lambda a, b, c, s=3.0: triad_work(a.size),
          "STREAM Triad: a = b + s*c")
def stream_triad(a: np.ndarray, b: np.ndarray, c: np.ndarray, s: float = 3.0) -> np.ndarray:
    """a[:] = b[:] + s * c[:] — the canonical memory-bound kernel."""
    _check_same(a, b, c)
    np.multiply(c, s, out=a)
    np.add(a, b, out=a)
    return a


@register("stream", "triad_scalar", lambda a, b, c, s=3.0: triad_work(a.size),
          "STREAM Triad, element at a time — the 'basic code' handout",
          metadata={"lint_expect": ("scalar-loop",)})
def stream_triad_scalar(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                        s: float = 3.0) -> np.ndarray:
    """a[i] = b[i] + s*c[i], one element per iteration.

    Deliberately scalar (``lint_expect`` declares the L001): the starting
    point the transform flywheel rewrites into the vectorized Triad.
    """
    n = _check_same(a, b, c)
    for i in range(n):
        a[i] = b[i] + s * c[i]
    return a


#: Kernel name -> (callable taking pre-allocated arrays, per-n work model).
STREAM_KERNELS = {
    "copy": (stream_copy, copy_work),
    "scale": (stream_scale, scale_work),
    "add": (stream_add, add_work),
    "triad": (stream_triad, triad_work),
}
