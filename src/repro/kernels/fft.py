"""Radix-2 FFT — one of the paper's "exotic" student projects (§5.1).

FFT optimization projects contrast an O(n²) DFT with O(n log n) FFTs and
then chase constant factors (recursion → iteration → vectorized butterflies
→ tuned library).  We implement that exact ladder:

* ``dft`` — direct O(n²) summation (the naive reference);
* ``recursive`` — textbook Cooley-Tukey recursion;
* ``iterative`` — bit-reversal + iterative butterflies (no recursion
  overhead, sequential access);
* ``vectorized`` — iterative schedule with whole-stage NumPy butterflies;
* ``numpy`` — ``np.fft.fft``, the tuned library endpoint.

All variants compute the unnormalized forward DFT and are cross-checked
against NumPy in the tests.
"""

from __future__ import annotations

import cmath

import numpy as np

from ..timing.metrics import WorkCount
from .base import register

__all__ = [
    "fft_work",
    "dft_work",
    "dft_direct",
    "fft_recursive",
    "fft_iterative",
    "fft_vectorized",
    "fft_numpy",
    "bit_reverse_permutation",
    "random_signal",
]

_B = 16  # complex128


def dft_work(n: int) -> WorkCount:
    """Work of the direct O(n²) DFT: ~8 real FLOP per complex MAC."""
    _check_pow2(n, allow_any=True)
    return WorkCount(flops=8.0 * n * n, loads_bytes=_B * n, stores_bytes=_B * n,
                     int_ops=float(n * n))


def fft_work(n: int) -> WorkCount:
    """Work of a radix-2 FFT: ~5 n log2 n real FLOP (standard accounting)."""
    _check_pow2(n)
    stages = int(np.log2(n))
    return WorkCount(flops=5.0 * n * stages, loads_bytes=_B * n, stores_bytes=_B * n,
                     int_ops=float(n * stages))


def _check_pow2(n: int, allow_any: bool = False) -> None:
    if n < 1:
        raise ValueError("n must be positive")
    if not allow_any and n & (n - 1):
        raise ValueError(f"radix-2 FFT needs a power-of-two length, got {n}")


def random_signal(n: int, seed: int = 0) -> np.ndarray:
    """Complex test signal of length ``n``."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


@register("fft", "dft", dft_work, "direct O(n^2) DFT — the naive reference",
          metadata={"lint_expect": ("hidden-temp-chain",),
                    "workcount_expect":
                    "rebuilds the complex twiddle row per output bin; the "
                    "declared 8n^2 model counts only the multiply-accumulate"})
def dft_direct(x: np.ndarray) -> np.ndarray:
    """Direct DFT by summation (vectorized inner product per output)."""
    x = np.asarray(x, dtype=complex)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("signal must be a non-empty 1-D array")
    n = x.size
    k = np.arange(n)
    out = np.empty(n, dtype=complex)
    for i in range(n):
        out[i] = np.sum(x * np.exp(-2j * np.pi * i * k / n))
    return out


@register("fft", "recursive", fft_work, "textbook recursive Cooley-Tukey",
          technique="algorithmic",
          metadata={"lint_expect": ("hidden-temp-chain",),
                    "workcount_expect":
                    "recomputes np.exp twiddle factors at every recursion "
                    "level; the declared 5n·log2(n) model assumes them free"})
def fft_recursive(x: np.ndarray) -> np.ndarray:
    """Recursive radix-2 Cooley-Tukey FFT."""
    x = np.asarray(x, dtype=complex)
    _check_pow2(x.size)

    def rec(v: np.ndarray) -> np.ndarray:
        n = v.size
        if n == 1:
            return v.copy()
        even = rec(v[0::2])
        odd = rec(v[1::2])
        tw = np.exp(-2j * np.pi * np.arange(n // 2) / n) * odd
        return np.concatenate([even + tw, even - tw])

    return rec(x)


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices.

    The per-bit update runs through one reused scratch buffer instead of
    allocating three temporaries per iteration.
    """
    _check_pow2(n)
    bits = int(np.log2(n))
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    scratch = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        np.right_shift(idx, b, out=scratch)
        scratch &= 1
        scratch <<= bits - 1 - b
        rev |= scratch
    return rev


@register("fft", "iterative", fft_work,
          "bit-reversal + iterative butterflies (scalar)", technique="loop-restructuring",
          metadata={"lint_expect": ("scalar-loop",),
                    "workcount_expect":
                    "bit-reversal permutation scratch buffers; the declared "
                    "5n·log2(n) model counts only signal traffic"})
def fft_iterative(x: np.ndarray) -> np.ndarray:
    """Iterative in-place radix-2 FFT with scalar butterflies."""
    x = np.asarray(x, dtype=complex)
    n = x.size
    _check_pow2(n)
    out = x[bit_reverse_permutation(n)]  # the gather is already a fresh copy
    size = 2
    while size <= n:
        half = size // 2
        wstep = cmath.exp(-2j * cmath.pi / size)
        for start in range(0, n, size):
            w = 1.0 + 0j
            for j in range(half):
                lo = out[start + j]
                hi = out[start + j + half] * w
                out[start + j] = lo + hi
                out[start + j + half] = lo - hi
                w *= wstep
        size *= 2
    return out


@register("fft", "vectorized", fft_work,
          "iterative schedule with whole-stage numpy butterflies",
          technique="vectorization",
          metadata={"lint_expect": ("loop-alloc", "hidden-temp-chain"),
                    "workcount_expect":
                    "bit-reversal permutation scratch buffers; the declared "
                    "5n·log2(n) model counts only signal traffic"})
def fft_vectorized(x: np.ndarray) -> np.ndarray:
    """Iterative FFT performing each stage as array-wide operations."""
    x = np.asarray(x, dtype=complex)
    n = x.size
    _check_pow2(n)
    out = x[bit_reverse_permutation(n)]  # the gather is already a fresh copy
    size = 2
    while size <= n:
        half = size // 2
        tw = np.exp(-2j * np.pi * np.arange(half) / size)
        blocks = out.reshape(n // size, size)
        lo = blocks[:, :half]
        hi = blocks[:, half:] * tw
        blocks[:, :half], blocks[:, half:] = lo + hi, lo - hi
        size *= 2
    return out


@register("fft", "numpy", fft_work, "np.fft.fft — the tuned library endpoint",
          technique="library")
def fft_numpy(x: np.ndarray) -> np.ndarray:
    """NumPy's pocketfft-backed FFT."""
    x = np.asarray(x, dtype=complex)
    _check_pow2(x.size)
    return np.fft.fft(x)
