"""AST rewrite passes that mechanically fix linter findings.

One pass per fixable lint rule, each a pure function from a parsed
``FunctionDef`` to a :class:`PassResult` holding a rewritten *copy* plus
an audit trail: every landed :class:`Rewrite` and — just as important —
every :class:`Refusal` with the concrete reason the pass left a site
untouched.  A transformation tier is only trustworthy when its refusals
are as explicit as its rewrites (the gather/scatter and reduction loops
it must *not* vectorize are exactly where silent "fixes" corrupt
results), so refusal reasons are first-class output, not log noise.

=======  ==================  =================================================
L001     scalar-loop         vectorize innermost single-statement *map* loops
                             whose subscripts are affine in the loop variable
                             (``a[i+c]`` → ``a[start+c:stop+c]``); refuses
                             reductions (reassociation changes float results),
                             gather/scatter indexing, loop-carried dependences
L002     loop-alloc          hoist ``np.zeros``/``np.empty`` with
                             loop-invariant arguments above the loop (zeros
                             keeps an in-place ``buf[...] = 0`` refill at the
                             original site, so semantics are bit-identical)
L003     range-len           ``for i in range(len(x))`` → direct iteration or
                             ``enumerate`` when every indexed read is ``x[i]``
L004     invariant-lookup    bind repeated loop-invariant attribute chains
                             (``np.exp``, ``m.data``) to a local before the
                             loop
L005     dot-matmul          ``np.dot(a, b)`` → ``a @ b``
=======  ==================  =================================================

Every rewrite here preserves the *exact* floating-point result: the same
per-element operations in the same order, only expressed on whole slices.
That is the property :mod:`repro.transform.verify` re-checks dynamically
(bit-compare on fixed-seed probes) — the pass refuses anything it cannot
guarantee statically, and the verifier catches anything the pass got
wrong anyway.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field

from ..analyze.lint import _attr_chain

__all__ = ["Rewrite", "Refusal", "PassResult", "REWRITE_PASSES", "run_pass"]


@dataclass(frozen=True)
class Rewrite:
    """One landed transformation, anchored to the original source line."""

    rule: str
    lineno: int
    description: str

    def __str__(self) -> str:
        return f"{self.rule}:{self.lineno}: {self.description}"


@dataclass(frozen=True)
class Refusal:
    """One site the pass deliberately left untouched, with the reason."""

    rule: str
    lineno: int
    reason: str

    def __str__(self) -> str:
        return f"{self.rule}:{self.lineno}: refused — {self.reason}"


@dataclass
class PassResult:
    """Outcome of one pass over one function (a rewritten copy + audit)."""

    rule: str
    node: ast.FunctionDef
    rewrites: list[Rewrite] = field(default_factory=list)
    refusals: list[Refusal] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.rewrites)


class _Cannot(Exception):
    """Internal: a candidate site fails a provability check (reason inside)."""


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _uses(node: ast.AST, var: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == var for n in ast.walk(node))


def _range_bounds(node: ast.For) -> tuple[ast.expr, ast.expr] | None:
    """(start, stop) of a unit-stride ``range()`` loop over a Name, else None."""
    it = node.iter
    if not (isinstance(node.target, ast.Name) and isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name) and it.func.id == "range"
            and not it.keywords and 1 <= len(it.args) <= 3):
        return None
    if len(it.args) == 3:
        step = it.args[2]
        if not (isinstance(step, ast.Constant) and step.value == 1):
            return None
    if len(it.args) == 1:
        return ast.Constant(value=0), it.args[0]
    return it.args[0], it.args[1]


def _affine_offset(expr: ast.expr, var: str) -> int | None:
    """``c`` such that ``expr == var + c``, else None."""
    if isinstance(expr, ast.Name) and expr.id == var:
        return 0
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        left, right = expr.left, expr.right
        if (isinstance(left, ast.Name) and left.id == var
                and isinstance(right, ast.Constant)
                and isinstance(right.value, int)):
            return right.value if isinstance(expr.op, ast.Add) else -right.value
        if (isinstance(expr.op, ast.Add) and isinstance(right, ast.Name)
                and right.id == var and isinstance(left, ast.Constant)
                and isinstance(left.value, int)):
            return left.value
    return None


def _shift(expr: ast.expr, c: int) -> ast.expr:
    """AST for ``expr + c`` with constant folding (`n - 1 + 1` → `n`)."""
    e = copy.deepcopy(expr)
    if c == 0:
        return e
    if isinstance(e, ast.Constant) and isinstance(e.value, int):
        return ast.Constant(value=e.value + c)
    if (isinstance(e, ast.BinOp) and isinstance(e.op, (ast.Add, ast.Sub))
            and isinstance(e.right, ast.Constant)
            and isinstance(e.right.value, int)):
        k = e.right.value if isinstance(e.op, ast.Add) else -e.right.value
        k += c
        if k == 0:
            return e.left
        return ast.BinOp(left=e.left, op=ast.Add() if k > 0 else ast.Sub(),
                         right=ast.Constant(value=abs(k)))
    return ast.BinOp(left=e, op=ast.Add() if c > 0 else ast.Sub(),
                     right=ast.Constant(value=abs(c)))


def _fresh_name(base: str, taken: set[str]) -> str:
    name = base
    while name in taken:
        name += "_"
    taken.add(name)
    return name


def _all_names(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


# ---------------------------------------------------------------------------
# L001 — vectorize provably map-like scalar loops
# ---------------------------------------------------------------------------


def _sub_components(sub: ast.Subscript) -> list[ast.expr]:
    s = sub.slice
    return list(s.elts) if isinstance(s, ast.Tuple) else [s]


def _vector_subscript(sub: ast.Subscript, var: str,
                      bounds: tuple[ast.expr, ast.expr]):
    """Slice-ified copy of ``sub`` plus its per-component offset signature.

    The signature is a tuple with the affine offset for var-dependent
    components and the dumped AST for var-free ones — two accesses to the
    same array touch the same cells per iteration iff signatures match.
    """
    start, stop = bounds
    comps: list[ast.expr] = []
    sig: list[object] = []
    for comp in _sub_components(sub):
        if _uses(comp, var):
            off = _affine_offset(comp, var)
            if off is None:
                raise _Cannot(
                    f"index {ast.unparse(comp)!r} is not affine in {var!r} "
                    f"(gather/scatter access)")
            comps.append(ast.Slice(lower=_shift(start, off),
                                   upper=_shift(stop, off)))
            sig.append(off)
        else:
            comps.append(copy.deepcopy(comp))
            sig.append(ast.dump(comp))
    new = copy.deepcopy(sub)
    new.slice = (ast.Tuple(elts=comps, ctx=ast.Load())
                 if len(comps) > 1 else comps[0])
    return new, tuple(sig)


_ELEMENTWISE_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)


def _vector_expr(expr: ast.expr, var: str, bounds, reads: list) -> ast.expr:
    """Rewrite one RHS expression; records var-dependent array reads."""
    if not _uses(expr, var):
        # loop-invariant subexpression: a scalar at runtime (the original
        # stored it into a single element), broadcasts unchanged
        return copy.deepcopy(expr)
    if isinstance(expr, ast.Subscript):
        if _uses(expr.value, var):
            raise _Cannot(f"array expression {ast.unparse(expr.value)!r} "
                          f"depends on {var!r}")
        new, sig = _vector_subscript(expr, var, bounds)
        reads.append((ast.dump(expr.value), sig))
        return new
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _ELEMENTWISE_OPS):
        return ast.BinOp(left=_vector_expr(expr.left, var, bounds, reads),
                         op=copy.deepcopy(expr.op),
                         right=_vector_expr(expr.right, var, bounds, reads))
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op,
                                                    (ast.USub, ast.UAdd)):
        return ast.UnaryOp(op=copy.deepcopy(expr.op),
                           operand=_vector_expr(expr.operand, var, bounds,
                                                reads))
    if isinstance(expr, ast.Name) and expr.id == var:
        raise _Cannot(f"loop variable {var!r} is used as a value, "
                      f"not an index")
    raise _Cannot(f"{type(expr).__name__} expression "
                  f"{ast.unparse(expr)!r} depends on {var!r}; only +,-,*,/,** "
                  f"element-wise arithmetic is provably equivalent")


def _leaky_loop_ids(fn: ast.FunctionDef) -> set[int]:
    """ids of For nodes whose loop variable is read outside the loop."""
    leaks: set[int] = set()
    fors = [n for n in ast.walk(fn)
            if isinstance(n, ast.For) and isinstance(n.target, ast.Name)]
    for f in fors:
        var = f.target.id
        inside = {id(n) for n in ast.walk(f)}
        for n in ast.walk(fn):
            if (isinstance(n, ast.Name) and n.id == var
                    and id(n) not in inside and isinstance(n.ctx, ast.Load)):
                leaks.add(id(f))
                break
    return leaks


class _VectorizeL001(ast.NodeTransformer):
    """Innermost-first vectorizer; non-candidates become Refusals."""

    def __init__(self, leaky: set[int]) -> None:
        self.rewrites: list[Rewrite] = []
        self.refusals: list[Refusal] = []
        self._leaky = leaky

    def visit_For(self, node: ast.For):
        self.generic_visit(node)  # innermost loops first (enables cascades)
        if any(isinstance(n, (ast.For, ast.While))
               for n in ast.walk(node) if n is not node):
            return node  # still contains a loop: not (yet) a candidate
        try:
            stmt = self._vectorize(node)
        except _Cannot as exc:
            self.refusals.append(Refusal("L001", node.lineno, str(exc)))
            return node
        stmt = ast.fix_missing_locations(ast.copy_location(stmt, node))
        self.rewrites.append(Rewrite(
            "L001", node.lineno,
            f"for {node.target.id} in {ast.unparse(node.iter)}: ... → "
            f"{ast.unparse(stmt)}"))
        return stmt

    def _vectorize(self, node: ast.For) -> ast.stmt:
        if node.orelse:
            raise _Cannot("loop has an else clause")
        bounds = _range_bounds(node)
        if bounds is None:
            raise _Cannot("not a unit-stride range(...) loop over a "
                          "simple name")
        var = node.target.id
        if id(node) in self._leaky:
            raise _Cannot(f"loop variable {var!r} is read after the loop")
        if len(node.body) != 1:
            raise _Cannot(f"loop body has {len(node.body)} statements; only "
                          f"single-statement bodies are provably map-like")
        stmt = node.body[0]
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise _Cannot("multiple assignment targets")
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.op, _ELEMENTWISE_OPS):
                raise _Cannot(f"augmented {type(stmt.op).__name__} is not "
                              f"element-wise arithmetic")
            target = stmt.target
        else:
            raise _Cannot(f"loop body is a {type(stmt).__name__}, not an "
                          f"array assignment")
        if isinstance(target, ast.Name):
            raise _Cannot(
                f"reduction into scalar {target.id!r}: vectorizing would "
                f"reassociate the floating-point accumulation order")
        if not isinstance(target, ast.Subscript):
            raise _Cannot("assignment target is not an array subscript")
        new_target, target_sig = _vector_subscript(target, var, bounds)
        if all(isinstance(s, str) for s in target_sig):
            raise _Cannot(
                "reduction: the store target does not vary with the loop "
                "variable, so iterations accumulate into the same cells")
        reads: list[tuple[str, tuple]] = []
        new_value = _vector_expr(stmt.value, var, bounds, reads)
        base = ast.dump(target.value)
        for read_base, read_sig in reads:
            if read_base == base and read_sig != target_sig:
                raise _Cannot(
                    f"loop-carried dependence: {ast.unparse(target.value)!r} "
                    f"is read at a different offset than it is written")
        if isinstance(stmt, ast.AugAssign):
            return ast.AugAssign(target=new_target,
                                 op=copy.deepcopy(stmt.op), value=new_value)
        new_target.ctx = ast.Store()
        return ast.Assign(targets=[new_target], value=new_value)


def vectorize_scalar_loops(fn_node: ast.FunctionDef) -> PassResult:
    """L001: rewrite provably map-like scalar loops into slice expressions."""
    fn = copy.deepcopy(fn_node)
    transformer = _VectorizeL001(_leaky_loop_ids(fn))
    transformer.visit(fn)
    ast.fix_missing_locations(fn)
    return PassResult("L001", fn, transformer.rewrites, transformer.refusals)


# ---------------------------------------------------------------------------
# L002 — hoist loop-invariant allocations
# ---------------------------------------------------------------------------

_HOISTABLE_ALLOCATORS = frozenset({"zeros", "empty"})


def _alloc_call(stmt: ast.stmt):
    """(target name, call, allocator leaf) for ``t = np.zeros(...)``-shaped
    statements, else None."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)):
        return None
    chain = _attr_chain(stmt.value.func)
    if chain is None or "." not in chain:
        return None
    root, leaf = chain.split(".", 1)
    if root not in ("np", "numpy"):
        return None
    return stmt.targets[0].id, stmt.value, leaf.split(".")[-1]


def _loop_bound_names(loop: ast.AST) -> set[str]:
    """Every name bound anywhere inside the loop (targets + assignments)."""
    bound: set[str] = set()
    for n in ast.walk(loop):
        if isinstance(n, (ast.For, ast.comprehension)):
            bound |= _all_names(n.target)
        elif isinstance(n, ast.Assign):
            for t in n.targets:
                bound |= _all_names(t)
        elif isinstance(n, (ast.AugAssign, ast.AnnAssign)):
            bound |= _all_names(n.target)
        elif isinstance(n, ast.withitem) and n.optional_vars is not None:
            bound |= _all_names(n.optional_vars)
    return bound


def _only_subscript_base(loop: ast.AST, name: str, skip: ast.AST) -> bool:
    """True when every use of ``name`` in ``loop`` (outside ``skip``) is as a
    subscript base — the reference never escapes an iteration."""
    skipped = {id(n) for n in ast.walk(skip)}
    sub_bases = {id(n.value) for n in ast.walk(loop)
                 if isinstance(n, ast.Subscript)}
    for n in ast.walk(loop):
        if (isinstance(n, ast.Name) and n.id == name
                and id(n) not in skipped and id(n) not in sub_bases):
            return False
    return True


class _HoistAllocs:
    def __init__(self) -> None:
        self.rewrites: list[Rewrite] = []
        self.refusals: list[Refusal] = []

    def rewrite_body(self, body: list[ast.stmt],
                     outer_vars: set[str]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.While)):
                loop_vars = set(outer_vars)
                if isinstance(stmt, ast.For):
                    loop_vars |= _all_names(stmt.target)
                hoisted = self._hoist_from(stmt, loop_vars)
                # recurse into the loop body for deeper nests
                stmt.body = self.rewrite_body(stmt.body, loop_vars)
                out.extend(hoisted)
                out.append(stmt)
            elif isinstance(stmt, (ast.If, ast.With)):
                stmt.body = self.rewrite_body(stmt.body, outer_vars)
                if isinstance(stmt, ast.If):
                    stmt.orelse = self.rewrite_body(stmt.orelse, outer_vars)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    def _hoist_from(self, loop, loop_vars: set[str]) -> list[ast.stmt]:
        bound = _loop_bound_names(loop) | loop_vars
        hoisted: list[ast.stmt] = []
        new_body: list[ast.stmt] = []
        for stmt in loop.body:
            alloc = _alloc_call(stmt)
            if alloc is None:
                new_body.append(stmt)
                continue
            name, call, leaf = alloc
            varying = sorted(_all_names(call) & bound)
            if varying:
                self.refusals.append(Refusal(
                    "L002", stmt.lineno,
                    f"allocation argument(s) {varying} vary across loop "
                    f"iterations"))
                new_body.append(stmt)
                continue
            if leaf not in _HOISTABLE_ALLOCATORS:
                self.refusals.append(Refusal(
                    "L002", stmt.lineno,
                    f"np.{leaf} is not a provably hoistable allocator "
                    f"(only zeros/empty buffers can be reused)"))
                new_body.append(stmt)
                continue
            if not _only_subscript_base(loop, name, stmt):
                self.refusals.append(Refusal(
                    "L002", stmt.lineno,
                    f"{name!r} escapes the loop body (used other than as a "
                    f"subscript base); reusing one buffer could alias"))
                new_body.append(stmt)
                continue
            hoisted.append(stmt)
            self.rewrites.append(Rewrite(
                "L002", stmt.lineno,
                f"hoisted {name} = {ast.unparse(call)} above the loop"
                + (" (refill kept in place)" if leaf == "zeros" else "")))
            if leaf == "zeros":
                # keep the per-iteration clearing so results stay identical
                fill = ast.parse(f"{name}[...] = 0").body[0]
                new_body.append(ast.copy_location(fill, stmt))
        loop.body = new_body or [ast.Pass()]
        return hoisted


def hoist_loop_allocations(fn_node: ast.FunctionDef) -> PassResult:
    """L002: lift invariant np.zeros/np.empty allocations above loops."""
    fn = copy.deepcopy(fn_node)
    hoister = _HoistAllocs()
    fn.body = hoister.rewrite_body(fn.body, set())
    ast.fix_missing_locations(fn)
    return PassResult("L002", fn, hoister.rewrites, hoister.refusals)


# ---------------------------------------------------------------------------
# L003 — range(len(x)) → direct / enumerate iteration
# ---------------------------------------------------------------------------


def _range_len_seq(node: ast.For) -> str | None:
    """``x`` of a ``for i in range(len(x))`` loop over simple names."""
    it = node.iter
    if (isinstance(node.target, ast.Name) and isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name) and it.func.id == "range"
            and len(it.args) == 1 and not it.keywords
            and isinstance(it.args[0], ast.Call)
            and isinstance(it.args[0].func, ast.Name)
            and it.args[0].func.id == "len" and len(it.args[0].args) == 1
            and isinstance(it.args[0].args[0], ast.Name)):
        return it.args[0].args[0].id
    return None


class _ReplaceIndexedLoads(ast.NodeTransformer):
    def __init__(self, seq: str, idx: str, item: str) -> None:
        self.seq, self.idx, self.item = seq, idx, item

    def visit_Subscript(self, node: ast.Subscript):
        self.generic_visit(node)
        if (isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name) and node.value.id == self.seq
                and isinstance(node.slice, ast.Name)
                and node.slice.id == self.idx):
            return ast.copy_location(ast.Name(id=self.item, ctx=ast.Load()),
                                     node)
        return node


class _RangeLenL003(ast.NodeTransformer):
    def __init__(self, taken: set[str]) -> None:
        self.rewrites: list[Rewrite] = []
        self.refusals: list[Refusal] = []
        self._taken = taken

    def visit_For(self, node: ast.For):
        self.generic_visit(node)
        seq = _range_len_seq(node)
        if seq is None:
            return node
        try:
            return self._rewrite(node, seq)
        except _Cannot as exc:
            self.refusals.append(Refusal("L003", node.lineno, str(exc)))
            return node

    def _rewrite(self, node: ast.For, seq: str) -> ast.For:
        idx = node.target.id
        body = ast.Module(body=list(node.body), type_ignores=[])
        for n in ast.walk(body):
            if isinstance(n, ast.Name) and n.id == seq \
                    and not isinstance(n.ctx, ast.Load):
                raise _Cannot(f"{seq!r} is rebound inside the loop")
        # classify every use of the index
        load_subs = [n for n in ast.walk(body)
                     if isinstance(n, ast.Subscript)
                     and isinstance(n.ctx, ast.Load)
                     and isinstance(n.value, ast.Name) and n.value.id == seq
                     and isinstance(n.slice, ast.Name) and n.slice.id == idx]
        if not load_subs:
            raise _Cannot(f"index {idx!r} never reads {seq}[{idx}]; nothing "
                          f"to gain from direct iteration")
        covered = {id(s.slice) for s in load_subs}
        other_uses = [n for n in ast.walk(body)
                      if isinstance(n, ast.Name) and n.id == idx
                      and id(n) not in covered]
        item = _fresh_name(f"{seq}_item", self._taken)
        replacer = _ReplaceIndexedLoads(seq, idx, item)
        new_body = [replacer.visit(stmt) for stmt in node.body]
        if other_uses:
            # index still needed (stores, other arrays): keep it via enumerate
            new = ast.For(
                target=ast.Tuple(
                    elts=[ast.Name(id=idx, ctx=ast.Store()),
                          ast.Name(id=item, ctx=ast.Store())],
                    ctx=ast.Store()),
                iter=ast.Call(func=ast.Name(id="enumerate", ctx=ast.Load()),
                              args=[ast.Name(id=seq, ctx=ast.Load())],
                              keywords=[]),
                body=new_body, orelse=list(node.orelse))
            how = f"for {idx}, {item} in enumerate({seq})"
        else:
            new = ast.For(target=ast.Name(id=item, ctx=ast.Store()),
                          iter=ast.Name(id=seq, ctx=ast.Load()),
                          body=new_body, orelse=list(node.orelse))
            how = f"for {item} in {seq}"
        self.rewrites.append(Rewrite(
            "L003", node.lineno,
            f"for {idx} in range(len({seq})) → {how}"))
        return ast.copy_location(new, node)


def replace_range_len(fn_node: ast.FunctionDef) -> PassResult:
    """L003: iterate sequences directly instead of ``range(len(x))``."""
    fn = copy.deepcopy(fn_node)
    transformer = _RangeLenL003(_all_names(fn))
    transformer.visit(fn)
    ast.fix_missing_locations(fn)
    return PassResult("L003", fn, transformer.rewrites, transformer.refusals)


# ---------------------------------------------------------------------------
# L004 — hoist loop-invariant attribute chains
# ---------------------------------------------------------------------------


class _ChainSites(ast.NodeVisitor):
    """Attribute-chain load sites inside one loop, with nesting depth."""

    def __init__(self) -> None:
        self.depth = 0
        self.sites: dict[str, list[tuple[ast.Attribute, int]]] = {}

    def _loop(self, node) -> None:
        self.depth += 1
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.depth -= 1

    visit_For = visit_While = _loop

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _attr_chain(node)
        if chain is not None and isinstance(node.ctx, ast.Load):
            self.sites.setdefault(chain, []).append((node, self.depth))
            return  # longest chain only; don't double-count sub-chains
        self.generic_visit(node)


class _ReplaceChain(ast.NodeTransformer):
    def __init__(self, chain: str, local: str) -> None:
        self.chain, self.local = chain, local

    def visit_Attribute(self, node: ast.Attribute):
        if _attr_chain(node) == self.chain and isinstance(node.ctx, ast.Load):
            return ast.copy_location(
                ast.Name(id=self.local, ctx=ast.Load()), node)
        self.generic_visit(node)
        return node


class _HoistChains:
    def __init__(self, fn: ast.FunctionDef) -> None:
        self.rewrites: list[Rewrite] = []
        self.refusals: list[Refusal] = []
        self._taken = _all_names(fn)
        # names rebound anywhere in the function: their chains aren't
        # provably invariant
        self._rebound = {
            n.id for n in ast.walk(fn)
            if isinstance(n, ast.Name) and not isinstance(n.ctx, ast.Load)}
        self._attr_stores = {
            _attr_chain(n) for n in ast.walk(fn)
            if isinstance(n, ast.Attribute) and not isinstance(n.ctx, ast.Load)}

    def rewrite_body(self, body: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.While)):
                out.extend(self._hoist_from(stmt))
                out.append(stmt)
            elif isinstance(stmt, (ast.If, ast.With)):
                stmt.body = self.rewrite_body(stmt.body)
                if isinstance(stmt, ast.If):
                    stmt.orelse = self.rewrite_body(stmt.orelse)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    def _hoist_from(self, loop) -> list[ast.stmt]:
        finder = _ChainSites()
        finder._loop(loop)
        loop_vars = _loop_bound_names(loop)
        assigns: list[ast.stmt] = []
        for chain, sites in sorted(finder.sites.items()):
            if len(sites) < 2 and max(d for _, d in sites) < 2:
                continue  # same threshold the linter uses
            lineno = sites[0][0].lineno
            root = chain.split(".", 1)[0]
            if root in loop_vars:
                self.refusals.append(Refusal(
                    "L004", lineno,
                    f"{chain!r} is rooted at loop-bound name {root!r}"))
                continue
            if root in self._rebound:
                self.refusals.append(Refusal(
                    "L004", lineno,
                    f"{chain!r} is not provably invariant: {root!r} is "
                    f"rebound in the function"))
                continue
            if any(stored and chain.startswith(stored)
                   for stored in self._attr_stores if stored):
                self.refusals.append(Refusal(
                    "L004", lineno,
                    f"{chain!r} (or a prefix) is written in the function"))
                continue
            local = _fresh_name(chain.replace(".", "_"), self._taken)
            assign = ast.parse(f"{local} = {chain}").body[0]
            assigns.append(ast.copy_location(assign, loop))
            replacer = _ReplaceChain(chain, local)
            loop.body = [replacer.visit(s) for s in loop.body]
            self.rewrites.append(Rewrite(
                "L004", lineno,
                f"hoisted {len(sites)} read(s) of {chain!r} into local "
                f"{local!r}"))
        return assigns


def hoist_invariant_lookups(fn_node: ast.FunctionDef) -> PassResult:
    """L004: bind repeated loop-invariant attribute chains before the loop."""
    fn = copy.deepcopy(fn_node)
    hoister = _HoistChains(fn)
    fn.body = hoister.rewrite_body(fn.body)
    ast.fix_missing_locations(fn)
    return PassResult("L004", fn, hoister.rewrites, hoister.refusals)


# ---------------------------------------------------------------------------
# L005 — np.dot → @
# ---------------------------------------------------------------------------


class _DotToMatmul(ast.NodeTransformer):
    def __init__(self) -> None:
        self.rewrites: list[Rewrite] = []
        self.refusals: list[Refusal] = []

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        chain = _attr_chain(node.func)
        if chain not in ("np.dot", "numpy.dot"):
            return node
        if len(node.args) != 2 or node.keywords:
            self.refusals.append(Refusal(
                "L005", node.lineno,
                "np.dot with out=/extra arguments has no @ equivalent"))
            return node
        new = ast.BinOp(left=node.args[0], op=ast.MatMult(),
                        right=node.args[1])
        self.rewrites.append(Rewrite(
            "L005", node.lineno,
            f"{ast.unparse(node)} → {ast.unparse(new)}"))
        return ast.copy_location(new, node)


def dot_to_matmul(fn_node: ast.FunctionDef) -> PassResult:
    """L005: rewrite 2-argument ``np.dot`` calls to the ``@`` operator."""
    fn = copy.deepcopy(fn_node)
    transformer = _DotToMatmul()
    transformer.visit(fn)
    ast.fix_missing_locations(fn)
    return PassResult("L005", fn, transformer.rewrites, transformer.refusals)


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

#: rule id -> pass callable (FunctionDef -> PassResult on a copy)
REWRITE_PASSES = {
    "L001": vectorize_scalar_loops,
    "L002": hoist_loop_allocations,
    "L003": replace_range_len,
    "L004": hoist_invariant_lookups,
    "L005": dot_to_matmul,
}


def run_pass(fn_node: ast.FunctionDef, rule: str) -> PassResult:
    """Run one rewrite pass by rule id (never mutates ``fn_node``)."""
    try:
        impl = REWRITE_PASSES[rule.upper()]
    except KeyError:
        raise ValueError(f"no rewrite pass for rule {rule!r}; "
                         f"known: {sorted(REWRITE_PASSES)}") from None
    return impl(fn_node)
