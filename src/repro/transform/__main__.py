"""CLI for the source-transformation tier: ``python -m repro.transform``.

Subcommands
-----------
``list``      rewrite candidates from a lint sweep (variant, rule, span)
``apply``     run one rewrite pass on one variant, verify, register
``flywheel``  the full loop over every candidate: lint → rewrite →
              verify → tune → record

``flywheel --check`` is the CI gate: exit 1 unless every landed rewrite
passed verification, at least one auto-variant was verified, and (when
measuring) at least one shows a statistically gated speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .flywheel import run_flywheel
from .passes import REWRITE_PASSES
from .synth import apply_rule, transform_candidates


def _cmd_list(args) -> int:
    from ..analyze.lint import lint_registry
    from ..kernels import REGISTRY

    candidates = transform_candidates(REGISTRY, kernel=args.kernel)
    if not candidates:
        print("no rewrite candidates")
        return 0
    spans = {}
    for f in lint_registry(REGISTRY, kernel=args.kernel).findings:
        spans.setdefault((f.variant, f.rule), []).append(
            f"L{f.lineno}:{f.col}-L{f.end_lineno}")
    if args.json:
        print(json.dumps([
            {"variant": v.qualified_name, "rule": rule,
             "spans": spans.get((v.qualified_name, rule), [])}
            for v, rule in candidates], indent=2))
        return 0
    for v, rule in candidates:
        where = ", ".join(spans.get((v.qualified_name, rule), []))
        print(f"{v.qualified_name:40s} {rule}  {where}")
    return 0


def _cmd_apply(args) -> int:
    from ..kernels import REGISTRY

    kernel, _, name = args.variant.partition(".")
    if not name:
        print(f"error: expected kernel.variant, got {args.variant!r}",
              file=sys.stderr)
        return 2
    try:
        variant = REGISTRY.get(kernel, name)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = apply_rule(variant, args.rule, registry=REGISTRY,
                        verify=not args.no_verify)
    if args.json:
        print(json.dumps({
            "variant": report.variant, "rule": report.rule,
            "auto_variant": report.auto_variant,
            "registered": report.registered,
            "rewrites": [str(r) for r in report.rewrites],
            "refusals": [str(r) for r in report.refusals],
            "kept_expects": list(report.kept_expects),
            "dropped_expects": list(report.dropped_expects),
            "equivalence": report.equivalence,
            "error": report.error,
        }, indent=2))
    else:
        print(report.summary())
        for refusal in report.refusals:
            print(f"    {refusal}")
        if report.source and args.show_source:
            print(report.source)
    return 0 if report.error is None else 1


def _cmd_flywheel(args) -> int:
    store = None
    if args.record:
        from ..perfdb.store import PerfStore
        store = PerfStore(os.environ.get("REPRO_PERFDB", ".perfdb"))
    report = run_flywheel(
        args.kernel or None,
        measure=not args.no_measure,
        tune=not args.no_tune,
        store=store,
        rel_ci=args.rel_ci,
        max_repetitions=args.max_repetitions)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if args.check:
        return 0 if report.ok(require_speedup=not args.no_measure) else 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transform",
        description="registry-driven source-to-source rewrites for "
                    "lint findings")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show rewrite candidates")
    p_list.add_argument("--kernel", default=None,
                        help="restrict to one kernel family")
    p_list.add_argument("--json", action="store_true")

    p_apply = sub.add_parser("apply", help="apply one rewrite pass")
    p_apply.add_argument("variant", help="qualified name, e.g. matmul.tiled")
    p_apply.add_argument("rule", choices=sorted(REWRITE_PASSES),
                         type=str.upper, help="rewrite rule to run")
    p_apply.add_argument("--no-verify", action="store_true",
                         help="skip verification (and registration gating)")
    p_apply.add_argument("--show-source", action="store_true",
                         help="print the rewritten source")
    p_apply.add_argument("--json", action="store_true")

    p_fly = sub.add_parser("flywheel",
                           help="lint → rewrite → verify → tune → record")
    p_fly.add_argument("--kernel", action="append", default=[],
                       help="kernel family to sweep (repeatable; "
                            "default: all)")
    p_fly.add_argument("--check", action="store_true",
                       help="exit 1 unless the gate passes (CI mode)")
    p_fly.add_argument("--no-measure", action="store_true",
                       help="verify and register only; skip timing")
    p_fly.add_argument("--no-tune", action="store_true",
                       help="measure at default configs; skip auto-tuning")
    p_fly.add_argument("--record", action="store_true",
                       help="append raw times to the perfdb store "
                            "($REPRO_PERFDB or .perfdb)")
    p_fly.add_argument("--rel-ci", type=float, default=0.08,
                       help="target relative CI half-width (default 0.08)")
    p_fly.add_argument("--max-repetitions", type=int, default=30,
                       help="per-side repetition cap (default 30)")
    p_fly.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    return {"list": _cmd_list, "apply": _cmd_apply,
            "flywheel": _cmd_flywheel}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
