"""Synthesize and register auto-variants from rewritten source.

The bridge between a :class:`~repro.transform.passes.PassResult` and the
kernel registry: take a registered variant's source (``inspect.getsource``),
run one rewrite pass, ``ast.unparse`` + ``exec`` the result under a
synthetic filename seeded into :mod:`linecache` (so every downstream
source-level tool — the linter, the shadow interpreter, the hazard
detector — can re-read the synthesized function exactly like a normal
one), and package it as a new ``<variant>.auto_<rule>`` KernelVariant.

Three pieces of metadata hygiene happen here rather than in the caller:

* **lint_expect recomputation** — a rewrite that removes the anti-pattern
  a variant *declared* would otherwise flip that declaration into L000
  stale-expect noise.  The synthesized variant re-lints itself and keeps
  only the expectations that still fire; what was dropped is reported on
  the :class:`TransformReport` so the analyze gate stays clean.
* **workcount_expect demotion** — the auto variant first tries to verify
  *without* any inherited ``workcount_expect`` (a rewrite like
  ``np.dot → @`` often makes the source countable again); the annotation
  is re-attached only if the shadow interpreter still cannot match the
  declared model.
* **provenance** — ``auto_from`` / ``auto_rule`` metadata records the
  lineage, and the variant's ``technique`` is ``"source-transform"`` so
  the linter treats residual scalar loops as warnings, not contract
  violations.
"""

from __future__ import annotations

import ast
import inspect
import linecache
from dataclasses import dataclass, field

from ..analyze.dataflow import (DATAFLOW_LINT_RULES, DATAFLOW_SLUGS,
                                check_transform_facts, dataflow_variant)
from ..analyze.hazards import hazards_variant
from ..analyze.lint import function_ast, lint_variant
from ..analyze.report import Finding
from ..analyze.workcount import verify_variant
from ..kernels.base import REGISTRY, KernelRegistry, KernelVariant
from .passes import PassResult, Refusal, Rewrite, run_pass

__all__ = ["TransformReport", "apply_rule", "synthesize_variant",
           "transform_candidates"]

#: technique string stamped on every synthesized variant
AUTO_TECHNIQUE = "source-transform"


@dataclass
class TransformReport:
    """Everything one ``apply`` attempt did (or refused to do)."""

    variant: str                       # source qualified name
    rule: str
    auto_variant: str | None = None    # qualified name of the synthesized one
    registered: bool = False
    already_registered: bool = False
    source: str | None = None          # rewritten source text
    rewrites: tuple[Rewrite, ...] = ()
    refusals: tuple[Refusal, ...] = ()
    kept_expects: tuple[str, ...] = ()
    dropped_expects: tuple[str, ...] = ()
    dropped_workcount_expect: bool = False
    findings: tuple[Finding, ...] = ()  # gating analyze findings, if any
    equivalence: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def changed(self) -> bool:
        return bool(self.rewrites)

    @property
    def verified(self) -> bool:
        """Rewrite landed and every verification layer passed."""
        return self.changed and self.error is None and (
            self.equivalence.get("equivalent", False))

    def summary(self) -> str:
        if self.already_registered:
            return (f"{self.variant} [{self.rule}]: {self.auto_variant} "
                    f"already registered")
        if not self.changed:
            reasons = "; ".join(r.reason for r in self.refusals) or \
                "no matching site"
            return f"{self.variant} [{self.rule}]: no rewrite ({reasons})"
        if self.error:
            return f"{self.variant} [{self.rule}]: FAILED — {self.error}"
        state = "registered" if self.registered else "verified"
        out = f"{self.variant} [{self.rule}]: {self.auto_variant} {state}"
        if self.dropped_expects:
            out += (f"; dropped stale lint_expect "
                    f"{sorted(self.dropped_expects)}")
        return out


def _auto_names(variant: KernelVariant, rule: str) -> tuple[str, str, str]:
    """(function name, variant name, qualified name) of the auto variant."""
    suffix = f"auto_{rule.lower()}"
    fn_name = f"{variant.fn.__name__}_{suffix}"
    variant_name = f"{variant.name}.{suffix}"
    return fn_name, variant_name, f"{variant.kernel}.{variant_name}"


def _exec_rewritten(variant: KernelVariant, node: ast.FunctionDef,
                    fn_name: str, qualified: str) -> tuple:
    """Compile the rewritten FunctionDef; returns (callable, source text)."""
    node.name = fn_name
    node.decorator_list = []  # the original @register must not re-fire
    module = ast.Module(body=[node], type_ignores=[])
    ast.fix_missing_locations(module)
    source = ast.unparse(module) + "\n"
    filename = f"<repro.transform:{qualified}>"
    # seed linecache so inspect.getsource works on the synthesized function:
    # the linter, work-count verifier and hazard pass all re-read source
    linecache.cache[filename] = (
        len(source), None, source.splitlines(keepends=True), filename)
    namespace = dict(variant.fn.__globals__)
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace[fn_name]
    fn.__module__ = variant.fn.__module__  # same-module helper follow-through
    return fn, source


def _recompute_lint_expect(variant: KernelVariant, auto: KernelVariant
                           ) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(kept, dropped) lint_expect slugs after the rewrite.

    Keeps an inherited expectation only when the rule still fires on the
    rewritten source — the fix for transform-induced L000 stale-expect
    noise.
    """
    inherited = variant.lint_expect
    if not inherited:
        return (), ()
    fired = {f.slug for f in lint_variant(auto) if f.rule != "L000"}
    if set(inherited) & DATAFLOW_SLUGS:
        # dataflow-owned slugs (hidden-temp-chain, …) fire from interpreted
        # traffic, not from the AST linter — consult that tier too
        fired |= {f.slug for f in dataflow_variant(auto)
                  if f.rule in DATAFLOW_LINT_RULES}
    kept = tuple(s for s in inherited if s in fired)
    dropped = tuple(s for s in inherited if s not in fired)
    return kept, dropped


def synthesize_variant(variant: KernelVariant,
                       result: PassResult) -> tuple[KernelVariant, str, dict]:
    """Build the (unregistered) auto KernelVariant from a changed pass result.

    Returns ``(auto_variant, source_text, expect_info)`` where
    ``expect_info`` records the lint_expect/workcount_expect adjustments.
    The work model, tunables, and signature are inherited unchanged — the
    passes never alter the function's interface.
    """
    rule = result.rule
    fn_name, variant_name, qualified = _auto_names(variant, rule)
    fn, source = _exec_rewritten(variant, result.node, fn_name, qualified)

    metadata = {k: v for k, v in variant.metadata.items()
                if k not in ("lint_expect", "workcount_expect")}
    metadata["auto_from"] = variant.qualified_name
    metadata["auto_rule"] = rule

    def build(extra: dict) -> KernelVariant:
        return KernelVariant(
            kernel=variant.kernel, name=variant_name, fn=fn,
            work=variant.work,
            description=(f"auto-rewrite of {variant.qualified_name} "
                         f"({rule}: {'; '.join(r.description for r in result.rewrites)})"),
            technique=AUTO_TECHNIQUE, tunables=variant.tunables,
            metadata={**metadata, **extra})

    kept, dropped = _recompute_lint_expect(
        variant, build({"lint_expect": variant.lint_expect}))
    expect_meta: dict = {"lint_expect": kept} if kept else {}

    # try the rewritten source without any inherited workcount_expect first:
    # a rewrite often makes the source countable again (np.dot → @)
    dropped_wc = False
    inherited_wc = variant.metadata.get("workcount_expect")
    auto = build(expect_meta)
    wc_errors = [f for f in verify_variant(auto) if f.gating]
    if wc_errors and inherited_wc:
        auto = build({**expect_meta, "workcount_expect": inherited_wc})
    elif inherited_wc:
        dropped_wc = True

    return auto, source, {"kept": kept, "dropped": dropped,
                          "dropped_workcount_expect": dropped_wc}


def apply_rule(variant: KernelVariant, rule: str, *,
               registry: KernelRegistry | None = REGISTRY,
               verify: bool = True) -> TransformReport:
    """Run one rewrite pass on one variant, verify, and register the result.

    The full per-variant pipeline: parse → rewrite → synthesize →
    re-derive/check the WorkCount model → hazard-check → bit-compare on
    fixed-seed probes → register into ``registry`` (skip registration with
    ``registry=None``).  Verification failure means the synthesized
    variant is *not* registered; the report carries the evidence.
    """
    rule = rule.upper()
    report = TransformReport(variant=variant.qualified_name, rule=rule)

    if getattr(variant.fn, "__closure__", None):
        report.error = ("function captures a closure; rebuilding it from "
                        "source would lose the captured state")
        return report
    fn_node = function_ast(variant.fn)
    if fn_node is None:
        report.error = "source unavailable or unparsable"
        return report

    result = run_pass(fn_node, rule)
    report.rewrites = tuple(result.rewrites)
    report.refusals = tuple(result.refusals)
    if not result.changed:
        return report

    _, _, qualified = _auto_names(variant, rule)
    report.auto_variant = qualified
    if registry is not None and qualified in registry:
        report.already_registered = True
        return report

    auto, source, expect_info = synthesize_variant(variant, result)
    report.source = source
    report.kept_expects = expect_info["kept"]
    report.dropped_expects = expect_info["dropped"]
    report.dropped_workcount_expect = expect_info["dropped_workcount_expect"]

    if verify:
        gating = [f for f in verify_variant(auto) if f.gating]
        gating += [f for f in hazards_variant(auto) if f.gating]
        gating += [f for f in lint_variant(auto) if f.gating]
        gating += [f for f in dataflow_variant(auto) if f.gating]
        # dtype/shape facts from the abstract domain must survive the
        # rewrite — a probe-equal result can still hide a dtype drift
        gating += check_transform_facts(variant, auto)
        report.findings = tuple(gating)
        if gating:
            report.error = ("static verification failed: "
                            + "; ".join(str(f) for f in gating))
            return report
        from .verify import check_equivalence
        report.equivalence = check_equivalence(variant, auto)
        if not report.equivalence.get("equivalent"):
            report.error = ("numerical equivalence failed: "
                            + str(report.equivalence.get("failures")))
            return report

    if registry is not None:
        registry.add(auto)
        report.registered = True
    return report


def transform_candidates(registry: KernelRegistry | None = None,
                         kernel: str | None = None) -> list[tuple[KernelVariant, str]]:
    """(variant, rule) pairs worth attempting, from a lint sweep.

    Auto-variants themselves are skipped (their lineage is already the
    product of a rewrite), as are rules without a rewrite pass.
    """
    from ..analyze.lint import lint_registry
    from .passes import REWRITE_PASSES

    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    report = lint_registry(registry, kernel=kernel)
    by_variant = {
        v.qualified_name: v
        for k in ([kernel] if kernel else registry.kernels())
        for v in registry.variants_of(k)}
    out, seen = [], set()
    for f in report.findings:
        variant = by_variant.get(f.variant)
        if variant is None or f.rule not in REWRITE_PASSES:
            continue
        if variant.metadata.get("auto_rule"):
            continue
        key = (f.variant, f.rule)
        if key in seen:
            continue
        seen.add(key)
        out.append((variant, f.rule))
    return sorted(out, key=lambda p: (p[0].qualified_name, p[1]))
