"""Numerical equivalence verification for synthesized variants.

Every rewrite pass claims bit-exactness: the same per-element IEEE
operations in the same order, only expressed on slices.  This module
checks that claim *dynamically* — original and auto variant run on
independently built, fixed-seed operands across several shapes, seeds and
dtypes (float32 included, where a reassociated or wrongly-promoted
rewrite shows up fastest), and results are compared **bit for bit**
(``tobytes()``), not with ``allclose``.  A transformation tier graded on
tolerance would quietly accept reassociations; one graded on bits cannot.

Both the returned value and every mutated ndarray operand are compared,
because most kernels write their result into a caller-provided array.
Tunable variants are exercised under their default configuration *and*
with each integer/pow2 tunable at its lower bound — small tiles on odd
shapes hit the remainder-handling paths where slice arithmetic goes
wrong first.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..kernels.base import KernelVariant

__all__ = ["check_equivalence", "equivalence_probes", "bit_equal"]


def bit_equal(x: object, y: object) -> bool:
    """Exact equality: dtype, shape and bytes for arrays; ``==`` otherwise."""
    if isinstance(x, np.ndarray) or isinstance(y, np.ndarray):
        return (isinstance(x, np.ndarray) and isinstance(y, np.ndarray)
                and x.dtype == y.dtype and x.shape == y.shape
                and x.tobytes() == y.tobytes())
    if isinstance(x, (tuple, list)):
        return (type(x) is type(y) and len(x) == len(y)
                and all(bit_equal(a, b) for a, b in zip(x, y)))
    return bool(x == y)


# -- per-family probe builders ------------------------------------------------
#
# Each probe is (label, zero-argument builder); the builder is called once
# per measured function so both sides start from identical, independent
# operands (kernels mutate their inputs).

def _probes_matmul(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.matmul import random_matrices

    def mk(n, seed, dtype):
        def build():
            a, b, c = random_matrices(n, seed=seed)
            return tuple(x.astype(dtype) for x in (a, b, c))
        return build

    # odd sizes exercise tile/block remainder paths
    cases = [(5, 0, np.float64), (8, 1, np.float64), (7, 2, np.float32)]
    return [(f"n{n}-seed{s}-{np.dtype(d).name}", mk(n, s, d))
            for n, s, d in cases]


def _probes_stencil(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.stencil import init_grid

    def mk(n, m, dtype):
        def build():
            src = init_grid(n, m).astype(dtype)
            return src, np.zeros_like(src)
        return build

    cases = [(8, None, np.float64), (7, 9, np.float64), (6, 6, np.float32)]
    return [(f"n{n}x{m or n}-{np.dtype(d).name}", mk(n, m, d))
            for n, m, d in cases]


def _probes_stream(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.stream import stream_arrays

    def mk(n, seed, dtype):
        def build():
            a, b, c = stream_arrays(n, seed=seed)
            return tuple(x.astype(dtype) for x in (a, b, c))
        return build

    cases = [(17, 0, np.float64), (64, 1, np.float64), (33, 2, np.float32)]
    return [(f"n{n}-seed{s}-{np.dtype(d).name}", mk(n, s, d))
            for n, s, d in cases]


def _probes_spmv(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.spmv import random_sparse

    def mk(n, density, seed):
        def build():
            coo = random_sparse(n, density=density, seed=seed)
            if name.startswith("csr"):
                mat = coo.to_csr()
            elif name.startswith("csc"):
                mat = coo.to_csc()
            else:
                mat = coo
            x = np.random.default_rng(seed + 1).standard_normal(n)
            return mat, x
        return build

    cases = [(12, 0.25, 1), (23, 0.15, 4)]
    return [(f"n{n}-d{d}-seed{s}", mk(n, d, s)) for n, d, s in cases]


def _probes_histogram(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.histogram import random_keys

    def mk(n, bins, seed):
        def build():
            return random_keys(n, bins, seed=seed), bins
        return build

    cases = [(96, 8, 0), (257, 16, 3)]
    return [(f"n{n}-b{b}-seed{s}", mk(n, b, s)) for n, b, s in cases]


def _probes_gameoflife(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.gameoflife import random_board

    def mk(n, seed):
        return lambda: (random_board(n, seed=seed),)

    return [(f"n{n}-seed{s}", mk(n, s)) for n, s in [(10, 2), (13, 5)]]


def _probes_fft(name: str) -> list[tuple[str, Callable[[], tuple]]]:
    from ..kernels.fft import random_signal

    def mk(n, seed):
        return lambda: (random_signal(n, seed=seed),)

    return [(f"n{n}-seed{s}", mk(n, s)) for n, s in [(16, 0), (32, 7)]]


_PROBE_BUILDERS = {
    "matmul": _probes_matmul,
    "stencil": _probes_stencil,
    "stream": _probes_stream,
    "spmv": _probes_spmv,
    "histogram": _probes_histogram,
    "gameoflife": _probes_gameoflife,
    "fft": _probes_fft,
}


def equivalence_probes(variant: KernelVariant
                       ) -> list[tuple[str, Callable[[], tuple]]]:
    """Fixed-seed probe builders for a variant's kernel family."""
    builder = _PROBE_BUILDERS.get(variant.kernel)
    if builder is None:
        return []
    return builder(variant.name)


def _configs_for(variant: KernelVariant) -> list[dict]:
    """Default config, plus each int/pow2 tunable pinned at its low bound."""
    configs = [variant.default_config()]
    for t in variant.tunables:
        if t.kind in ("int", "pow2") and t.low is not None \
                and t.low != t.default:
            configs.append({**variant.default_config(), t.name: t.low})
    return configs


def check_equivalence(original: KernelVariant, auto: KernelVariant,
                      probes: list[tuple[str, Callable[[], tuple]]] | None = None
                      ) -> dict:
    """Bit-compare ``auto`` against ``original`` on fixed-seed probes.

    Returns ``{"equivalent": bool, "cases": n, "failures": [labels]}``.
    No probes for the family counts as *not* verified — a rewrite that
    cannot be checked must not be trusted.
    """
    if probes is None:
        probes = equivalence_probes(original)
    if not probes:
        return {"equivalent": False, "cases": 0,
                "failures": [f"no equivalence probes for kernel family "
                             f"{original.kernel!r}"]}
    failures: list[str] = []
    cases = 0
    for label, build in probes:
        for config in _configs_for(original):
            cases += 1
            tag = label + (f"-{config}" if config else "")
            ops_ref = build()
            ops_new = build()
            try:
                ret_ref = original.fn(*ops_ref, **config)
                ret_new = auto.fn(*ops_new, **config)
            except Exception as exc:
                failures.append(f"{tag}: raised {type(exc).__name__}: {exc}")
                continue
            if not bit_equal(ret_ref, ret_new):
                failures.append(f"{tag}: returned values differ bitwise")
                continue
            for i, (a, b) in enumerate(zip(ops_ref, ops_new)):
                if isinstance(a, np.ndarray) and not bit_equal(a, b):
                    failures.append(f"{tag}: operand {i} mutated differently")
                    break
    return {"equivalent": not failures, "cases": cases, "failures": failures}
