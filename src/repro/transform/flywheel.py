"""The transform flywheel: lint → rewrite → verify → tune → record.

One call (or ``python -m repro.transform flywheel``) closes the loop the
static analyzer only opens: every fixable lint finding becomes a
synthesized ``auto_<rule>`` variant, every synthesized variant is
verified (work-count, hazards, bit-exact equivalence), every verified
variant is auto-tuned and measured against its source variant with the
adaptive engine, and the outcome is gated through the same statistics the
perfdb regression gate uses — Mann-Whitney significance *and* a bootstrap
CI on the median ratio clear of 1.0.  Raw times land in the perfdb store
under ``transform/<qualified-name>``, so speedup claims are auditable
history, not console output.

Measurement sizes follow the benchmark convention: honest sizes by
default, small ones under ``REPRO_BENCH_SMOKE=1`` (CI).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from statistics import median
from typing import Mapping

import numpy as np

from ..kernels.base import KernelRegistry, KernelVariant
from ..observe import get_tracer
from ..timing.adaptive import measure_adaptive
from ..timing.stats import median_ratio_ci, significantly_faster
from .synth import TransformReport, apply_rule, transform_candidates

__all__ = ["FlywheelEntry", "FlywheelReport", "run_flywheel"]


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _bench_operands(variant: KernelVariant) -> tuple:
    """Honest-size timing operands per family (smaller under smoke)."""
    smoke = _smoke()
    kernel, name = variant.kernel, variant.name
    if kernel == "matmul":
        from ..kernels.matmul import random_matrices
        return random_matrices(32 if smoke else 64, seed=0)
    if kernel == "stencil":
        from ..kernels.stencil import init_grid
        src = init_grid(48 if smoke else 96)
        return src, np.zeros_like(src)
    if kernel == "stream":
        from ..kernels.stream import stream_arrays
        return stream_arrays(20_000 if smoke else 120_000, seed=0)
    if kernel == "spmv":
        from ..kernels.spmv import random_sparse
        n = 120 if smoke else 240
        coo = random_sparse(n, density=0.02, seed=0)
        mat = (coo.to_csr() if name.startswith("csr")
               else coo.to_csc() if name.startswith("csc") else coo)
        x = np.random.default_rng(1).standard_normal(n)
        return mat, x
    if kernel == "histogram":
        from ..kernels.histogram import random_keys
        return random_keys(4_000 if smoke else 20_000, 256, seed=0), 256
    if kernel == "gameoflife":
        from ..kernels.gameoflife import random_board
        return (random_board(32 if smoke else 64, seed=2),)
    if kernel == "fft":
        from ..kernels.fft import random_signal
        return (random_signal(256 if smoke else 1024, seed=0),)
    raise ValueError(f"no benchmark operands for kernel family {kernel!r}")


@dataclass
class FlywheelEntry:
    """One (variant, rule) attempt plus its measurement verdict."""

    report: TransformReport
    tuned_config: dict | None = None
    times: dict = field(default_factory=dict)  # {"original": [...], "auto": [...]}
    speedup: float | None = None               # median(orig) / median(auto)
    significant: bool | None = None
    ratio_ci: tuple[float, float] | None = None

    @property
    def gated(self) -> bool:
        """Statistically significant speedup, CI clear of 1.0."""
        return bool(self.significant and self.ratio_ci
                    and self.ratio_ci[1] < 1.0)

    def verdict(self) -> str:
        base = self.report.summary()
        if self.speedup is None:
            return base
        lo, hi = self.ratio_ci
        gate = "PASS" if self.gated else "not significant"
        cfg = f", tuned {self.tuned_config}" if self.tuned_config else ""
        return (f"{base}; {self.speedup:.2f}x vs original "
                f"(ratio CI [{lo:.3f}, {hi:.3f}], gate {gate}{cfg})")


@dataclass
class FlywheelReport:
    """Everything one flywheel run attempted, verified, and measured."""

    entries: list[FlywheelEntry] = field(default_factory=list)
    run_ids: list[str] = field(default_factory=list)

    @property
    def attempted(self) -> list[FlywheelEntry]:
        return list(self.entries)

    @property
    def verified(self) -> list[FlywheelEntry]:
        return [e for e in self.entries if e.report.verified]

    @property
    def failures(self) -> list[FlywheelEntry]:
        """Rewrites that landed but failed a verification layer."""
        return [e for e in self.entries
                if e.report.changed and e.report.error is not None]

    @property
    def gated_speedups(self) -> list[FlywheelEntry]:
        return [e for e in self.entries if e.gated]

    @property
    def measured(self) -> bool:
        return any(e.times for e in self.entries)

    def ok(self, require_speedup: bool = True) -> bool:
        """The ``--check`` gate: no failed rewrites, ≥1 verified rewrite,
        and (when measured) ≥1 statistically gated speedup."""
        if self.failures:
            return False
        if not self.verified:
            return False
        if require_speedup and self.measured and not self.gated_speedups:
            return False
        return True

    def render_text(self) -> str:
        lines = []
        for e in self.entries:
            lines.append(e.verdict())
            for refusal in e.report.refusals:
                lines.append(f"    {refusal}")
        lines.append(
            f"flywheel: {len(self.entries)} candidate(s), "
            f"{len(self.verified)} verified rewrite(s), "
            f"{len(self.failures)} failure(s), "
            f"{len(self.gated_speedups)} gated speedup(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "candidates": len(self.entries),
            "verified": [e.report.auto_variant for e in self.verified],
            "failures": [e.report.summary() for e in self.failures],
            "gated_speedups": [
                {"auto": e.report.auto_variant, "speedup": e.speedup,
                 "ratio_ci": list(e.ratio_ci), "config": e.tuned_config}
                for e in self.gated_speedups],
            "refusals": [str(r) for e in self.entries
                         for r in e.report.refusals],
            "run_ids": list(self.run_ids),
            "ok": self.ok(),
        }


def _tune_auto(auto: KernelVariant, seed: int, max_evals: int) -> dict | None:
    """Best config of the synthesized variant (None when not tunable)."""
    if not auto.is_tunable:
        return None
    from ..tuning import Budget, RandomSearch, tune_variant

    result = tune_variant(
        auto, lambda config: _bench_operands(auto),
        RandomSearch(seed=seed, max_samples=max_evals),
        budget=Budget(max_evaluations=max_evals),
        warmup=1, repetitions=6, adaptive=True, rel_ci=0.1)
    return result.best_config


def _measure(variant: KernelVariant, config: Mapping, *, rel_ci: float,
             max_repetitions: int) -> list[float]:
    operands = _bench_operands(variant)
    cfg = dict(config)
    res = measure_adaptive(
        lambda: variant.fn(*operands, **cfg),
        rel_ci=rel_ci, min_repetitions=5, batch=5,
        max_repetitions=max_repetitions, warmup=1)
    return list(res.times)


def run_flywheel(kernels: list[str] | None = None, *,
                 registry: KernelRegistry | None = None,
                 verify: bool = True,
                 measure: bool = True,
                 tune: bool = True,
                 store=None,
                 rel_ci: float = 0.08,
                 max_repetitions: int = 30,
                 tune_evaluations: int = 4,
                 seed: int = 0) -> FlywheelReport:
    """Run the full loop over every rewrite candidate the linter surfaces.

    ``store`` is a :class:`~repro.perfdb.store.PerfStore` (or None to skip
    recording).  ``kernels=None`` sweeps every family; at least 4-5
    samples per side are always taken so the Mann-Whitney gate is live.
    """
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    tracer = get_tracer()
    report = FlywheelReport()
    candidates = []
    for kernel in (kernels or [None]):
        candidates.extend(transform_candidates(registry, kernel=kernel))

    with tracer.span("transform.flywheel", category="transform",
                     candidates=len(candidates)):
        for variant, rule in candidates:
            tr = apply_rule(variant, rule, registry=registry, verify=verify)
            entry = FlywheelEntry(report=tr)
            report.entries.append(entry)
            tracer.count("transform.attempted")
            if tr.error is not None:
                tracer.count("transform.failed")
                continue
            if not tr.registered:
                continue
            tracer.count("transform.registered")
            if not measure:
                continue
            auto = registry.get(variant.kernel, tr.auto_variant.split(".", 1)[1])
            if tune:
                entry.tuned_config = _tune_auto(auto, seed, tune_evaluations)
            auto_cfg = entry.tuned_config or auto.default_config()
            orig_times = _measure(variant, variant.default_config(),
                                  rel_ci=rel_ci,
                                  max_repetitions=max_repetitions)
            auto_times = _measure(auto, auto_cfg, rel_ci=rel_ci,
                                  max_repetitions=max_repetitions)
            entry.times = {"original": orig_times, "auto": auto_times}
            entry.speedup = median(orig_times) / median(auto_times)
            entry.significant = significantly_faster(auto_times, orig_times)
            entry.ratio_ci = median_ratio_ci(auto_times, orig_times)
            if entry.gated:
                tracer.count("transform.gated_speedups")
            if store is not None:
                from ..perfdb.record import RunRecord
                record = RunRecord.new(
                    {f"transform/{tr.auto_variant}": auto_times,
                     f"transform/{tr.auto_variant}/original": orig_times},
                    label=f"transform-flywheel:{rule}")
                store.append(record)
                report.run_ids.append(record.run_id)
    return report
