"""Registry-driven source-to-source rewrites for lint findings.

``repro.analyze.lint`` *names* anti-patterns; this package *fixes* the
mechanical ones.  Each rewrite pass takes a registered variant's source,
transforms the AST, and registers the result as a new
``<variant>.auto_<rule>`` variant — but only after the full verification
stack signs off: the shadow interpreter re-derives the work-count model,
the hazard detector re-checks parallel safety, and fixed-seed probes
bit-compare original against rewrite across shapes and dtypes.

=====  =========================================  ======================
rule   rewrite                                    refused when
=====  =========================================  ======================
L001   scalar loop → slice assignment             reductions, gather/
                                                  scatter, loop-carried
                                                  dependences
L002   loop-invariant ``np.zeros``/``np.empty``   allocation arguments
       hoisted above the loop                     vary per iteration
L003   ``range(len(x))`` → direct iteration /     index used beyond
       ``enumerate``                              ``x[i]`` loads
L004   invariant attribute chains hoisted to a    chain root rebound in
       local before the loop                      the loop
L005   ``np.dot(a, b)`` → ``a @ b``               ``out=`` or >2 args
=====  =========================================  ======================

The ``flywheel`` entry point (also ``python -m repro.transform``) closes
the loop end to end: lint → rewrite → verify → tune → record, with
speedups gated by the Mann-Whitney test and a bootstrap ratio CI before
anything is claimed.
"""

from .flywheel import FlywheelEntry, FlywheelReport, run_flywheel
from .passes import (
    REWRITE_PASSES,
    PassResult,
    Refusal,
    Rewrite,
    run_pass,
)
from .synth import (
    AUTO_TECHNIQUE,
    TransformReport,
    apply_rule,
    synthesize_variant,
    transform_candidates,
)
from .verify import bit_equal, check_equivalence, equivalence_probes

__all__ = [
    "AUTO_TECHNIQUE",
    "FlywheelEntry",
    "FlywheelReport",
    "PassResult",
    "REWRITE_PASSES",
    "Refusal",
    "Rewrite",
    "TransformReport",
    "apply_rule",
    "bit_equal",
    "check_equivalence",
    "equivalence_probes",
    "run_flywheel",
    "run_pass",
    "synthesize_variant",
    "transform_candidates",
]
