"""Network cost models: alpha-beta (Hockney) and LogP/LogGP.

The "scale-out to distributed systems" lectures model message passing with
the standard point-to-point cost models:

* **alpha-beta (Hockney)**: ``T(m) = alpha + m / beta`` — latency plus the
  reciprocal bandwidth term; the workhorse for collective cost models.
* **LogP** (Culler et al.): latency L, overhead o, gap g, processors P —
  separates CPU overhead from wire latency, models small messages.
* **LogGP** (Alexandrov et al.): adds the Gap-per-byte G for long messages.

All times in seconds, message sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.specs import ClusterSpec

__all__ = ["AlphaBeta", "LogP", "LogGP", "alpha_beta_from_cluster"]


@dataclass(frozen=True)
class AlphaBeta:
    """Hockney model: T(m) = alpha + m/beta."""

    alpha: float  # latency, seconds
    beta: float   # bandwidth, bytes/second

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta <= 0:
            raise ValueError("need alpha >= 0 and beta > 0")

    def time(self, message_bytes: float) -> float:
        if message_bytes < 0:
            raise ValueError("message size cannot be negative")
        return self.alpha + message_bytes / self.beta

    def half_performance_length(self) -> float:
        """n_1/2: message size where half the asymptotic bandwidth is reached."""
        return self.alpha * self.beta

    def effective_bandwidth(self, message_bytes: float) -> float:
        """Achieved bytes/s for one message of the given size."""
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        return message_bytes / self.time(message_bytes)


@dataclass(frozen=True)
class LogP:
    """LogP model parameters.

    Small-message point-to-point time: ``o_send + L + o_recv`` = L + 2o.
    Sustained small-message rate is limited by the gap g (1 message per g
    seconds per processor).
    """

    latency: float     # L
    overhead: float    # o
    gap: float         # g
    processors: int    # P

    def __post_init__(self) -> None:
        if min(self.latency, self.overhead, self.gap) < 0:
            raise ValueError("LogP parameters cannot be negative")
        if self.processors < 1:
            raise ValueError("need at least one processor")

    def point_to_point(self) -> float:
        """One small-message delivery time."""
        return self.latency + 2 * self.overhead

    def message_rate(self) -> float:
        """Sustained messages/second per processor (1/g)."""
        if self.gap == 0:
            return float("inf")
        return 1.0 / self.gap

    def k_messages_pipelined(self, k: int) -> float:
        """Time for one sender to fire k back-to-back messages."""
        if k < 1:
            raise ValueError("need at least one message")
        return (k - 1) * max(self.gap, self.overhead) + self.point_to_point()


@dataclass(frozen=True)
class LogGP:
    """LogGP: LogP plus Gap-per-byte for long messages.

    Long-message time: ``o + (m-1)·G + L + o``.
    """

    latency: float
    overhead: float
    gap: float
    gap_per_byte: float
    processors: int

    def __post_init__(self) -> None:
        if min(self.latency, self.overhead, self.gap, self.gap_per_byte) < 0:
            raise ValueError("LogGP parameters cannot be negative")
        if self.processors < 1:
            raise ValueError("need at least one processor")

    def time(self, message_bytes: float) -> float:
        if message_bytes < 0:
            raise ValueError("message size cannot be negative")
        if message_bytes == 0:
            return self.latency + 2 * self.overhead
        return (self.overhead + (message_bytes - 1) * self.gap_per_byte
                + self.latency + self.overhead)

    def as_alpha_beta(self) -> AlphaBeta:
        """Long-message asymptotic alpha-beta equivalent."""
        return AlphaBeta(alpha=self.latency + 2 * self.overhead,
                         beta=1.0 / self.gap_per_byte if self.gap_per_byte else float("inf"))


def alpha_beta_from_cluster(cluster: ClusterSpec) -> AlphaBeta:
    """Derive the Hockney parameters from a cluster spec's link numbers."""
    return AlphaBeta(alpha=cluster.link_latency_s,
                     beta=cluster.link_bandwidth_bytes_per_s)
