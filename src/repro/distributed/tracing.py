"""VAMPIR-style timeline rendering of simulator traces.

The course demonstrates VAMPIR/Score-P timelines for distributed runs
(§4.2.1); this module renders the :class:`SimResult` event stream of the
mini-MPI the same way: one text gantt row per rank, one glyph per time
bucket, plus a per-state time profile (Score-P's summary view).
"""

from __future__ import annotations

from collections import defaultdict

from .mpi_sim import SimResult, TraceEvent

__all__ = ["timeline_text", "state_profile", "profile_text", "GLYPHS"]

#: event kind -> gantt glyph
GLYPHS = {
    "compute": "#",
    "send": ">",
    "recv": "<",
    "wait": ".",
    "barrier": "|",
    "allreduce": "R",
    "bcast": "B",
    "allgather": "G",
}


def timeline_text(result: SimResult, width: int = 80) -> str:
    """Render the run as a text gantt: one row per rank.

    Each column is a makespan/width bucket; the glyph shows the state the
    rank spent the most time in during that bucket (idle = space).
    """
    if width < 10:
        raise ValueError("timeline too narrow")
    span = result.makespan
    if span <= 0:
        return "(empty run)"
    dt = span / width
    lines = [f"timeline: {span * 1e3:.3f} ms total, {dt * 1e6:.1f} us/column"]
    for r in range(result.n_ranks):
        # per-bucket dominant state
        buckets: list[dict[str, float]] = [defaultdict(float) for _ in range(width)]
        for e in result.rank_events(r):
            b0 = min(width - 1, int(e.start / dt))
            b1 = min(width - 1, int(max(e.start, e.end - 1e-15) / dt))
            for b in range(b0, b1 + 1):
                lo = max(e.start, b * dt)
                hi = min(e.end, (b + 1) * dt)
                if hi > lo:
                    buckets[b][e.kind] += hi - lo
                elif e.start == e.end and b == b0:
                    buckets[b][e.kind] += 1e-18  # zero-length marker
        row = []
        for b in buckets:
            if not b:
                row.append(" ")
            else:
                kind = max(b, key=lambda k: b[k])
                row.append(GLYPHS.get(kind, "?"))
        lines.append(f"rank {r:3d} |{''.join(row)}|")
    legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def state_profile(result: SimResult) -> dict[str, float]:
    """Total rank-seconds per state (Score-P's flat profile)."""
    profile: dict[str, float] = defaultdict(float)
    for e in result.events:
        profile[e.kind] += e.end - e.start
    return dict(profile)


def profile_text(result: SimResult) -> str:
    """Readable flat profile with percentages."""
    profile = state_profile(result)
    total = sum(profile.values())
    lines = [f"{'state':12s} {'rank-seconds':>14s} {'share':>8s}"]
    for kind in sorted(profile, key=lambda k: -profile[k]):
        share = profile[kind] / total if total else 0.0
        lines.append(f"{kind:12s} {profile[kind]:14.6f} {share:8.1%}")
    lines.append(f"{'total':12s} {total:14.6f}")
    return "\n".join(lines)
