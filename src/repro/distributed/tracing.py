"""VAMPIR-style timeline rendering of simulator traces.

The course demonstrates VAMPIR/Score-P timelines for distributed runs
(§4.2.1); this module renders the :class:`SimResult` event stream of the
mini-MPI the same way: one text gantt row per rank, one glyph per time
bucket, plus a per-state time profile (Score-P's summary view).

The rendering itself lives in :mod:`repro.observe.export` — simulator
events are converted to :class:`~repro.observe.spans.Span` records (one
track per rank) and fed to the same gantt renderer live tracers use, so
the mini-MPI is one consumer of the unified span format rather than a
parallel timeline implementation.  :func:`result_spans` exposes that
conversion, which also makes simulator runs exportable to Chrome
``trace_event`` JSON via :func:`repro.observe.export.write_chrome_trace`.
"""

from __future__ import annotations

from collections import defaultdict

from ..observe import Span, gantt_text
from .mpi_sim import SimResult, TraceEvent

__all__ = ["timeline_text", "state_profile", "profile_text", "result_spans",
           "GLYPHS"]

#: event kind -> gantt glyph
GLYPHS = {
    "compute": "#",
    "send": ">",
    "recv": "<",
    "wait": ".",
    "barrier": "|",
    "allreduce": "R",
    "bcast": "B",
    "allgather": "G",
}


def result_spans(result: SimResult) -> list[Span]:
    """The run's events in the unified span format: one track per rank."""
    return [Span(name=e.kind, category=e.kind, start=e.start, end=e.end,
                 pid=0, tid=e.rank,
                 attrs={"rank": e.rank, **({"detail": e.detail} if e.detail else {})})
            for e in result.events]


def timeline_text(result: SimResult, width: int = 80) -> str:
    """Render the run as a text gantt: one row per rank.

    Each column is a makespan/width bucket; the glyph shows the state the
    rank spent the most time in during that bucket (idle = space).
    Zero-length events (e.g. a barrier nobody waits at) still show their
    glyph whenever their bucket is idle-dominated, instead of being
    outvoted by any sliver of timed state.
    """
    if width < 10:
        raise ValueError("timeline too narrow")
    if result.makespan <= 0:
        return "(empty run)"
    return gantt_text(result_spans(result), width=width, glyphs=GLYPHS,
                      track=lambda s: s.tid, label="rank",
                      t0=0.0, t1=result.makespan,
                      tracks=range(result.n_ranks))


def state_profile(result: SimResult) -> dict[str, float]:
    """Total rank-seconds per state (Score-P's flat profile)."""
    profile: dict[str, float] = defaultdict(float)
    for e in result.events:
        profile[e.kind] += e.end - e.start
    return dict(profile)


def profile_text(result: SimResult) -> str:
    """Readable flat profile with percentages."""
    profile = state_profile(result)
    total = sum(profile.values())
    lines = [f"{'state':12s} {'rank-seconds':>14s} {'share':>8s}"]
    for kind in sorted(profile, key=lambda k: -profile[k]):
        share = profile[kind] / total if total else 0.0
        lines.append(f"{kind:12s} {profile[kind]:14.6f} {share:8.1%}")
    lines.append(f"{'total':12s} {total:14.6f}")
    return "\n".join(lines)
