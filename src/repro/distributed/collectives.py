"""Analytical cost models of MPI collective algorithms.

Standard material of the distributed-systems lectures: the same collective
has several algorithms whose costs cross over with message size and process
count (that crossover is why MPI libraries switch algorithms internally).
Models follow Thakur, Rabenseifner & Gropp (2005), over the alpha-beta
network model.

All functions return seconds for ``p`` processes and ``m`` bytes.
"""

from __future__ import annotations

import math

from .network import AlphaBeta

__all__ = [
    "broadcast_linear",
    "broadcast_binomial",
    "broadcast_scatter_allgather",
    "reduce_binomial",
    "allreduce_ring",
    "allreduce_recursive_doubling",
    "allgather_ring",
    "allgather_recursive_doubling",
    "scatter_binomial",
    "reduce_scatter_ring",
    "alltoall_linear",
    "best_algorithm",
    "COLLECTIVE_ALGORITHMS",
]


def _check(p: int, m: float) -> None:
    if p < 1:
        raise ValueError("need at least one process")
    if m < 0:
        raise ValueError("message size cannot be negative")


def broadcast_linear(net: AlphaBeta, p: int, m: float) -> float:
    """Root sends to each rank in turn: (p-1)(alpha + m/beta)."""
    _check(p, m)
    return (p - 1) * net.time(m)


def broadcast_binomial(net: AlphaBeta, p: int, m: float) -> float:
    """Binomial tree: ceil(log2 p) rounds of full-size messages."""
    _check(p, m)
    return math.ceil(math.log2(p)) * net.time(m) if p > 1 else 0.0


def broadcast_scatter_allgather(net: AlphaBeta, p: int, m: float) -> float:
    """Van de Geijn long-message broadcast: scatter + ring allgather.

    ~ log2(p)·alpha + 2·(p-1)/p·m/beta — halves the bandwidth term of the
    binomial tree for large m.
    """
    _check(p, m)
    if p == 1:
        return 0.0
    scatter = math.ceil(math.log2(p)) * net.alpha + (p - 1) / p * m / net.beta
    allgather = (p - 1) * net.alpha + (p - 1) / p * m / net.beta
    return scatter + allgather


def reduce_binomial(net: AlphaBeta, p: int, m: float,
                    compute_per_byte: float = 0.0) -> float:
    """Binomial-tree reduction; optional per-byte combine cost."""
    _check(p, m)
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (net.time(m) + compute_per_byte * m)


def allreduce_ring(net: AlphaBeta, p: int, m: float,
                   compute_per_byte: float = 0.0) -> float:
    """Ring (Rabenseifner) allreduce: reduce-scatter + allgather.

    2(p-1) rounds of m/p-byte messages: 2(p-1)·alpha + 2·(p-1)/p·m/beta —
    bandwidth-optimal, the large-message winner.
    """
    _check(p, m)
    if p == 1:
        return 0.0
    chunk = m / p
    comm = 2 * (p - 1) * net.time(chunk)
    compute = (p - 1) * chunk * compute_per_byte
    return comm + compute


def allreduce_recursive_doubling(net: AlphaBeta, p: int, m: float,
                                 compute_per_byte: float = 0.0) -> float:
    """Recursive doubling: log2(p) rounds of full-size messages.

    log2(p)·(alpha + m/beta) — latency-optimal, the small-message winner.
    """
    _check(p, m)
    if p == 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * (net.time(m) + compute_per_byte * m)


def allgather_ring(net: AlphaBeta, p: int, m: float) -> float:
    """Ring allgather of m bytes per rank: (p-1)·(alpha + m/beta)."""
    _check(p, m)
    return (p - 1) * net.time(m) if p > 1 else 0.0


def allgather_recursive_doubling(net: AlphaBeta, p: int, m: float) -> float:
    """Recursive-doubling allgather: log rounds with doubling payloads."""
    _check(p, m)
    if p == 1:
        return 0.0
    total = 0.0
    size = m
    for _ in range(math.ceil(math.log2(p))):
        total += net.time(size)
        size *= 2
    return total


def reduce_scatter_ring(net: AlphaBeta, p: int, m: float,
                        compute_per_byte: float = 0.0) -> float:
    """Ring reduce-scatter: (p-1) rounds of m/p-byte messages.

    The first half of the Rabenseifner allreduce; also the collective
    behind sharded-gradient training steps.
    """
    _check(p, m)
    if p == 1:
        return 0.0
    chunk = m / p
    return (p - 1) * (net.time(chunk) + compute_per_byte * chunk)


def alltoall_linear(net: AlphaBeta, p: int, m: float) -> float:
    """Pairwise-exchange all-to-all: p-1 rounds of m-byte messages.

    ``m`` is the per-pair payload; total bytes sent per rank is (p-1)·m —
    the quadratic total traffic that makes transposes the scalability
    cliff of distributed FFTs.
    """
    _check(p, m)
    if p == 1:
        return 0.0
    return (p - 1) * net.time(m)


def scatter_binomial(net: AlphaBeta, p: int, m: float) -> float:
    """Binomial scatter of m bytes per rank: each round halves the payload."""
    _check(p, m)
    if p == 1:
        return 0.0
    total = 0.0
    remaining = m * (p - 1)
    for _ in range(math.ceil(math.log2(p))):
        send = remaining / 2 if remaining > m else remaining
        total += net.time(send)
        remaining -= send
        if remaining <= 0:
            break
    return total


#: collective -> {algorithm name -> cost function(net, p, m)}
COLLECTIVE_ALGORITHMS = {
    "broadcast": {
        "linear": broadcast_linear,
        "binomial": broadcast_binomial,
        "scatter-allgather": broadcast_scatter_allgather,
    },
    "allreduce": {
        "ring": allreduce_ring,
        "recursive-doubling": allreduce_recursive_doubling,
    },
    "allgather": {
        "ring": allgather_ring,
        "recursive-doubling": allgather_recursive_doubling,
    },
}


def best_algorithm(collective: str, net: AlphaBeta, p: int, m: float
                   ) -> tuple[str, float]:
    """(winning algorithm, seconds) for one collective at (p, m).

    Reproduces the algorithm-switch decision inside MPI libraries; the
    bench sweeps (p, m) to chart the crossover.
    """
    try:
        algos = COLLECTIVE_ALGORITHMS[collective]
    except KeyError:
        raise KeyError(f"unknown collective {collective!r}; "
                       f"known: {sorted(COLLECTIVE_ALGORITHMS)}") from None
    results = {name: fn(net, p, m) for name, fn in algos.items()}
    winner = min(results, key=lambda k: results[k])
    return winner, results[winner]
