"""Network topologies: hop counts and their effect on message cost.

The scale-out lectures relate point-to-point cost to the *topology*
connecting the nodes: a message crossing h hops pays per-hop latency h
times, and global traffic patterns stress the bisection.  This module
models the three canonical topologies (ring, 2-D torus, fat-tree) well
enough to answer the lecture's questions: hop distance between ranks,
diameter and average distance, bisection width, and the effective
alpha-beta parameters for nearest-neighbour vs all-to-all traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .network import AlphaBeta

__all__ = ["Topology", "Ring", "Torus2D", "FatTree", "effective_network"]


@dataclass(frozen=True)
class Topology:
    """Base: a topology knows hop distances and its bisection width."""

    nodes: int

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("a topology needs at least two nodes")

    # subclasses implement:
    def hops(self, a: int, b: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def bisection_links(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    # shared derived quantities ------------------------------------------

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.nodes:
            raise ValueError(f"rank {r} outside [0, {self.nodes})")

    @property
    def diameter(self) -> int:
        return max(self.hops(0, b) for b in range(self.nodes))

    @property
    def average_distance(self) -> float:
        total = sum(self.hops(0, b) for b in range(1, self.nodes))
        return total / (self.nodes - 1)


@dataclass(frozen=True)
class Ring(Topology):
    """A bidirectional ring: cheap, diameter n/2, bisection 2."""

    def hops(self, a: int, b: int) -> int:
        self._check_rank(a)
        self._check_rank(b)
        d = abs(a - b)
        return min(d, self.nodes - d)

    def bisection_links(self) -> int:
        return 2


@dataclass(frozen=True)
class Torus2D(Topology):
    """A square bidirectional 2-D torus (nodes must be a perfect square)."""

    def __post_init__(self) -> None:
        super().__post_init__()
        side = math.isqrt(self.nodes)
        if side * side != self.nodes:
            raise ValueError("2-D torus needs a square node count")

    @property
    def side(self) -> int:
        return math.isqrt(self.nodes)

    def _coords(self, r: int) -> tuple[int, int]:
        return divmod(r, self.side)

    def hops(self, a: int, b: int) -> int:
        self._check_rank(a)
        self._check_rank(b)
        (ax, ay), (bx, by) = self._coords(a), self._coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.side - dx) + min(dy, self.side - dy)

    def bisection_links(self) -> int:
        return 2 * self.side


@dataclass(frozen=True)
class FatTree(Topology):
    """An idealized full-bisection fat-tree (nodes a power of two).

    Distance is counted in switch hops: 2·levels-to-common-ancestor; the
    defining property is full bisection (n/2 links).
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes & (self.nodes - 1):
            raise ValueError("fat-tree model needs a power-of-two node count")

    def hops(self, a: int, b: int) -> int:
        self._check_rank(a)
        self._check_rank(b)
        if a == b:
            return 0
        # levels until the two ranks share a subtree
        level = (a ^ b).bit_length()
        return 2 * level

    def bisection_links(self) -> int:
        return self.nodes // 2


def effective_network(topology: Topology, link: AlphaBeta,
                      pattern: str = "nearest-neighbour") -> AlphaBeta:
    """Alpha-beta parameters as *seen by an application* on a topology.

    Per-hop latency accumulates: effective alpha = link.alpha × hops for
    the pattern's typical distance.  Bandwidth: nearest-neighbour traffic
    uses dedicated links (beta unchanged); uniform all-to-all traffic is
    limited by the bisection — each of n/2 node pairs crossing it shares
    ``bisection_links`` links:
    beta_eff = beta × bisection_links / (nodes/2).
    """
    if pattern == "nearest-neighbour":
        hops = 1
        beta = link.beta
    elif pattern == "all-to-all":
        hops = max(1, round(topology.average_distance))
        share = topology.bisection_links() / (topology.nodes / 2)
        beta = link.beta * min(1.0, share)
    else:
        raise ValueError(f"unknown traffic pattern {pattern!r}")
    return AlphaBeta(alpha=link.alpha * hops, beta=beta)
