"""Discrete-event message-passing simulator (the mini-MPI).

The course demonstrates distributed tools (VAMPIR timelines, Score-P
profiles) but, as §4.2.1 admits, has no assignment for them.  This module
*is* that missing substrate: an MPI-like programming interface whose
execution is simulated over an alpha-beta network, producing per-rank
timelines (exportable as a VAMPIR-style text gantt via
:mod:`repro.distributed.tracing`).

Rank programs are Python generators that ``yield`` operations:

>>> def program(rank):
...     if rank.rank == 0:
...         yield rank.send(1, 1024)
...     else:
...         msg = yield rank.recv(0)
...     yield rank.compute(1e-3)
...     yield rank.barrier()

Semantics (documented simplifications):

* ``send`` is blocking-synchronous: the sender is busy ``alpha + m/beta``
  and the message becomes available to the receiver at the send's end.
* ``recv`` completes at ``max(recv_call_time, message_arrival_time)``.
* Collectives synchronize all ranks and charge the analytical cost of the
  configured algorithm (:mod:`repro.distributed.collectives`) on top of
  the latest arrival.
* Deadlocks (every live rank waiting) are detected and reported.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator

from .collectives import (
    allgather_ring,
    allreduce_ring,
    broadcast_binomial,
)
from .network import AlphaBeta

__all__ = ["DeadlockError", "TraceEvent", "RankHandle", "SimResult", "MPISimulator"]


class DeadlockError(RuntimeError):
    """All live ranks are blocked and no message can unblock them."""


@dataclass(frozen=True)
class TraceEvent:
    """One state interval of one rank (the VAMPIR timeline unit)."""

    rank: int
    start: float
    end: float
    kind: str      # compute | send | recv | wait | barrier | allreduce | bcast | allgather
    detail: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("event ends before it starts")


@dataclass(frozen=True)
class _Op:
    kind: str
    peer: int = -1
    nbytes: float = 0.0
    seconds: float = 0.0
    tag: int = 0


class RankHandle:
    """Per-rank API handed to program generators."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size

    def compute(self, seconds: float) -> _Op:
        """Local computation for ``seconds``."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        return _Op("compute", seconds=seconds)

    def send(self, dst: int, nbytes: float, tag: int = 0) -> _Op:
        """Blocking send of ``nbytes`` to ``dst``."""
        self._check_peer(dst)
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return _Op("send", peer=dst, nbytes=nbytes, tag=tag)

    def recv(self, src: int, tag: int = 0) -> _Op:
        """Blocking receive from ``src``; yields the message size."""
        self._check_peer(src)
        return _Op("recv", peer=src, tag=tag)

    def barrier(self) -> _Op:
        return _Op("barrier")

    def allreduce(self, nbytes: float) -> _Op:
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return _Op("allreduce", nbytes=nbytes)

    def bcast(self, root: int, nbytes: float) -> _Op:
        self._check_peer(root)
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return _Op("bcast", peer=root, nbytes=nbytes)

    def allgather(self, nbytes: float) -> _Op:
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return _Op("allgather", nbytes=nbytes)

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"rank {peer} outside [0, {self.size})")
        if peer == self.rank and self.size > 1:
            raise ValueError("self-messaging is not supported")


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    n_ranks: int
    finish_times: tuple[float, ...]
    events: tuple[TraceEvent, ...]
    messages_sent: int
    bytes_sent: float

    @property
    def makespan(self) -> float:
        return max(self.finish_times)

    def rank_events(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def time_in(self, kind: str) -> float:
        """Total seconds across ranks spent in one event kind."""
        return sum(e.end - e.start for e in self.events if e.kind == kind)

    def communication_fraction(self) -> float:
        """Share of total rank-seconds spent not computing."""
        total = sum(e.end - e.start for e in self.events)
        if total == 0:
            return 0.0
        comm = total - self.time_in("compute")
        return comm / total


class MPISimulator:
    """Run rank programs over an alpha-beta network."""

    def __init__(self, n_ranks: int, network: AlphaBeta):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.network = network

    def run(self, program: Callable[[RankHandle], Generator]) -> SimResult:
        """Execute ``program(rank_handle)`` on every rank."""
        net = self.network
        n = self.n_ranks
        gens = []
        for r in range(n):
            gen = program(RankHandle(r, n))
            if not hasattr(gen, "send"):
                raise TypeError("program must be a generator function (use yield)")
            gens.append(gen)
        time = [0.0] * n
        done = [False] * n
        pending: list[_Op | None] = [None] * n   # op the rank is blocked on
        send_value: list[object] = [None] * n    # value to send into the generator
        mailbox: dict[tuple[int, int, int], deque] = {}
        events: list[TraceEvent] = []
        collective_waiting: dict[str, dict[int, float]] = {}
        messages_sent = 0
        bytes_sent = 0.0

        def advance(r: int) -> None:
            """Resume rank r's generator until it blocks or finishes."""
            nonlocal messages_sent, bytes_sent
            while True:
                try:
                    op = gens[r].send(send_value[r])
                except StopIteration:
                    done[r] = True
                    return
                send_value[r] = None
                if not isinstance(op, _Op):
                    raise TypeError(f"rank {r} yielded {op!r}, not an operation")
                if op.kind == "compute":
                    start = time[r]
                    time[r] = start + op.seconds
                    events.append(TraceEvent(r, start, time[r], "compute"))
                    continue
                if op.kind == "send":
                    start = time[r]
                    duration = net.time(op.nbytes)
                    time[r] = start + duration
                    events.append(TraceEvent(r, start, time[r], "send",
                                             f"->{op.peer} {op.nbytes:.0f}B"))
                    key = (r, op.peer, op.tag)
                    mailbox.setdefault(key, deque()).append((time[r], op.nbytes))
                    messages_sent += 1
                    bytes_sent += op.nbytes
                    continue
                if op.kind == "recv":
                    key = (op.peer, r, op.tag)
                    queue = mailbox.get(key)
                    if queue:
                        arrival, nbytes = queue.popleft()
                        start = time[r]
                        time[r] = max(start, arrival)
                        kind = "recv" if arrival <= start else "wait"
                        events.append(TraceEvent(r, start, time[r], kind,
                                                 f"<-{op.peer} {nbytes:.0f}B"))
                        send_value[r] = nbytes
                        continue
                    pending[r] = op
                    return
                # collectives
                coll_key = op.kind + (f"@{op.peer}" if op.kind == "bcast" else "")
                collective_waiting.setdefault(coll_key, {})[r] = time[r]
                pending[r] = op
                return

        for r in range(n):
            advance(r)

        while not all(done):
            progressed = False
            # complete collectives where everyone arrived
            for coll_key, arrivals in list(collective_waiting.items()):
                if len(arrivals) == n:
                    start_all = max(arrivals.values())
                    op0 = next(pending[r] for r in arrivals)
                    cost = self._collective_cost(op0)
                    end = start_all + cost
                    for r, t_in in arrivals.items():
                        events.append(TraceEvent(r, t_in, end, op0.kind,
                                                 f"{op0.nbytes:.0f}B" if op0.nbytes else ""))
                        time[r] = end
                        pending[r] = None
                        if op0.kind == "allgather":
                            send_value[r] = op0.nbytes * n
                    del collective_waiting[coll_key]
                    for r in arrivals:
                        advance(r)
                    progressed = True
            # retry blocked receives
            for r in range(n):
                if done[r] or pending[r] is None:
                    continue
                op = pending[r]
                if op.kind != "recv":
                    continue
                key = (op.peer, r, op.tag)
                queue = mailbox.get(key)
                if queue:
                    arrival, nbytes = queue.popleft()
                    start = time[r]
                    time[r] = max(start, arrival)
                    kind = "recv" if arrival <= start else "wait"
                    events.append(TraceEvent(r, start, time[r], kind,
                                             f"<-{op.peer} {nbytes:.0f}B"))
                    send_value[r] = nbytes
                    pending[r] = None
                    advance(r)
                    progressed = True
            if not progressed:
                blocked = [r for r in range(n) if not done[r]]
                raise DeadlockError(
                    f"ranks {blocked} are all blocked "
                    f"(waiting on: {[pending[r].kind if pending[r] else '?' for r in blocked]})")

        events.sort(key=lambda e: (e.start, e.rank))
        return SimResult(
            n_ranks=n,
            finish_times=tuple(time),
            events=tuple(events),
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
        )

    def _collective_cost(self, op: _Op) -> float:
        n = self.n_ranks
        if op.kind == "barrier":
            return broadcast_binomial(self.network, n, 0.0) * 2  # up + down tree
        if op.kind == "allreduce":
            return allreduce_ring(self.network, n, op.nbytes)
        if op.kind == "bcast":
            return broadcast_binomial(self.network, n, op.nbytes)
        if op.kind == "allgather":
            return allgather_ring(self.network, n, op.nbytes)
        raise ValueError(f"unknown collective {op.kind!r}")
