"""Performance variability and stragglers — the cloud/continuum extension.

The paper's future-work topic (3) points the course toward cloud computing
and shared/virtualized systems.  The first-order performance phenomenon
there is *variability*: per-rank compute times are no longer deterministic
(noisy neighbours, VM scheduling), and bulk-synchronous codes pay the
**maximum** of p draws every superstep — straggler amplification.

This module provides:

* noise models (deterministic, uniform, exponential-tailed);
* the analytic expectation of the per-superstep slowdown
  E[max of p draws]/mean for those models;
* a simulated counterpart over the mini-MPI (per-rank jitter injected into
  a BSP program), so the analytic curves can be validated;
* the standard mitigation analysis: duplicate (speculative) execution.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .mpi_sim import MPISimulator, RankHandle
from .network import AlphaBeta

__all__ = [
    "expected_max_uniform",
    "expected_max_exponential",
    "straggler_slowdown",
    "noisy_bsp_program",
    "simulate_noisy_bsp",
    "duplicate_execution_gain",
]


def expected_max_uniform(p: int, spread: float) -> float:
    """E[max of p] for compute times U(1-spread, 1+spread), mean 1.

    E[max] = 1 + spread·(p-1)/(p+1).
    """
    if p < 1:
        raise ValueError("need at least one rank")
    if not 0 <= spread < 1:
        raise ValueError("spread must be in [0, 1)")
    return 1.0 + spread * (p - 1) / (p + 1)


def expected_max_exponential(p: int, noise_fraction: float) -> float:
    """E[max of p] for times 1-f + f·Exp(1) (mean 1, exponential tail).

    E[max of p exponentials] = H_p (harmonic number), so
    E[max] = (1-f) + f·H_p — the tail makes stragglers grow *with log p*,
    the qualitative difference from bounded noise.
    """
    if p < 1:
        raise ValueError("need at least one rank")
    if not 0 <= noise_fraction <= 1:
        raise ValueError("noise fraction must be in [0, 1]")
    harmonic = sum(1.0 / k for k in range(1, p + 1))
    return (1.0 - noise_fraction) + noise_fraction * harmonic


def straggler_slowdown(p: int, model: str = "uniform", level: float = 0.2) -> float:
    """BSP superstep slowdown E[max]/E[X] under a noise model."""
    if model == "uniform":
        return expected_max_uniform(p, level)
    if model == "exponential":
        return expected_max_exponential(p, level)
    raise ValueError(f"unknown noise model {model!r}")


def noisy_bsp_program(iterations: int, compute_seconds: float,
                      reduce_bytes: float, noise: Callable[[int, int], float]
                      ) -> Callable[[RankHandle], object]:
    """A BSP program whose per-rank compute is scaled by ``noise(rank, it)``.

    ``noise`` returns a multiplicative factor ≥ 0 for (rank, iteration) —
    deterministic given its arguments, so simulations are reproducible.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    if compute_seconds < 0 or reduce_bytes < 0:
        raise ValueError("costs cannot be negative")

    def program(rank: RankHandle):
        for it in range(iterations):
            factor = noise(rank.rank, it)
            if factor < 0:
                raise ValueError("noise factors cannot be negative")
            yield rank.compute(compute_seconds * factor)
            yield rank.allreduce(reduce_bytes)

    return program


def simulate_noisy_bsp(p: int, net: AlphaBeta, iterations: int = 20,
                       compute_seconds: float = 1e-3, reduce_bytes: float = 1024,
                       model: str = "uniform", level: float = 0.2,
                       seed: int = 0) -> float:
    """Measured BSP slowdown vs the noise-free run, via the mini-MPI.

    Returns makespan(noisy)/makespan(clean); compare against
    :func:`straggler_slowdown` (the agreement degrades once communication
    is non-negligible — itself a teachable effect).
    """
    rng = np.random.default_rng(seed)
    if model == "uniform":
        draws = 1.0 + level * (2 * rng.random((p, iterations)) - 1.0)
    elif model == "exponential":
        draws = (1.0 - level) + level * rng.exponential(1.0, (p, iterations))
    else:
        raise ValueError(f"unknown noise model {model!r}")

    sim = MPISimulator(p, net)
    noisy = sim.run(noisy_bsp_program(iterations, compute_seconds, reduce_bytes,
                                      lambda r, it: float(draws[r, it])))
    clean = sim.run(noisy_bsp_program(iterations, compute_seconds, reduce_bytes,
                                      lambda r, it: 1.0))
    return noisy.makespan / clean.makespan


def duplicate_execution_gain(p: int, noise_fraction: float,
                             replicas: int = 2) -> float:
    """Straggler mitigation by speculative duplicates (exponential tail).

    Running ``replicas`` copies of each rank's work and taking the first
    to finish replaces Exp(1) with Exp(replicas) (the min): the expected
    superstep max becomes (1-f) + f·H_p/replicas.  Returns the predicted
    speedup over the unreplicated noisy run — the cloud-era trade of
    resources for tail latency.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    base = expected_max_exponential(p, noise_fraction)
    harmonic = sum(1.0 / k for k in range(1, p + 1))
    replicated = (1.0 - noise_fraction) + noise_fraction * harmonic / replicas
    return base / replicated
