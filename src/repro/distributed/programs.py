"""Canonical rank programs for the message-passing simulator.

These are the distributed kernels the scale-out lectures analyze: ping-pong
(network characterization), halo-exchange stencil, allgather-based
matrix-vector multiply, and a bulk-synchronous compute+allreduce iteration
(the skeleton of iterative solvers and of data-parallel training).

Each builder returns a generator function suitable for
:meth:`repro.distributed.mpi_sim.MPISimulator.run`.
"""

from __future__ import annotations

from typing import Callable, Generator

from .mpi_sim import RankHandle

__all__ = [
    "ping_pong",
    "halo_exchange_stencil",
    "distributed_matvec",
    "bsp_iterations",
]


def ping_pong(n_messages: int, nbytes: float) -> Callable[[RankHandle], Generator]:
    """Rank 0 <-> rank 1 ping-pong; other ranks idle.

    The standard network microbenchmark: makespan / (2·n) estimates the
    one-way message time, recovering alpha and beta from two sizes.
    """
    if n_messages < 1:
        raise ValueError("need at least one message")

    def program(rank: RankHandle):
        if rank.size < 2:
            raise ValueError("ping-pong needs at least 2 ranks")
        if rank.rank == 0:
            for _ in range(n_messages):
                yield rank.send(1, nbytes)
                yield rank.recv(1)
        elif rank.rank == 1:
            for _ in range(n_messages):
                yield rank.recv(0)
                yield rank.send(0, nbytes)
        # others: nothing

    return program


def halo_exchange_stencil(iterations: int, rows_per_rank: int, row_bytes: float,
                          compute_seconds_per_iter: float
                          ) -> Callable[[RankHandle], Generator]:
    """1-D-decomposed 2-D stencil: exchange halos, compute, repeat.

    Each rank owns ``rows_per_rank`` rows; per iteration it swaps one halo
    row (``row_bytes``) with each neighbour, then computes.  The classic
    surface-to-volume communication pattern: scaling improves as
    rows_per_rank grows (weak scaling) and degrades under strong scaling.

    The exchange is ordered even/odd to avoid rendezvous deadlock with
    blocking sends — itself a lecture point.
    """
    if iterations < 1 or rows_per_rank < 1:
        raise ValueError("iterations and rows_per_rank must be positive")
    if row_bytes < 0 or compute_seconds_per_iter < 0:
        raise ValueError("costs cannot be negative")

    def program(rank: RankHandle):
        up = rank.rank - 1 if rank.rank > 0 else None
        down = rank.rank + 1 if rank.rank < rank.size - 1 else None
        even = rank.rank % 2 == 0
        for _ in range(iterations):
            if even:
                if down is not None:
                    yield rank.send(down, row_bytes)
                    yield rank.recv(down)
                if up is not None:
                    yield rank.send(up, row_bytes)
                    yield rank.recv(up)
            else:
                if up is not None:
                    yield rank.recv(up)
                    yield rank.send(up, row_bytes)
                if down is not None:
                    yield rank.recv(down)
                    yield rank.send(down, row_bytes)
            yield rank.compute(compute_seconds_per_iter)

    return program


def distributed_matvec(n: int, iterations: int,
                       seconds_per_flop: float) -> Callable[[RankHandle], Generator]:
    """Row-block distributed dense matvec ``y = A·x`` with allgather.

    Each rank owns n/p rows of A and n/p entries of x; every iteration
    allgathers x (8·n/p bytes contributed per rank) then computes its
    2·n·(n/p) FLOP block.  Used for strong-scaling studies: compute
    shrinks as 1/p while the allgather cost grows with p.
    """
    if n < 1 or iterations < 1:
        raise ValueError("n and iterations must be positive")
    if seconds_per_flop <= 0:
        raise ValueError("seconds_per_flop must be positive")

    def program(rank: RankHandle):
        rows = n // rank.size
        if rows == 0:
            raise ValueError(f"matrix too small for {rank.size} ranks")
        local_flops = 2.0 * n * rows
        for _ in range(iterations):
            yield rank.allgather(8.0 * rows)   # contribute local x slice
            yield rank.compute(local_flops * seconds_per_flop)

    return program


def bsp_iterations(iterations: int, compute_seconds: float, reduce_bytes: float,
                   imbalance: float = 0.0) -> Callable[[RankHandle], Generator]:
    """Bulk-synchronous iteration: compute then allreduce.

    ``imbalance`` skews per-rank compute linearly (rank p-1 does
    ``(1+imbalance)×`` the work of rank 0) — the knob that makes the
    timeline show everyone waiting on the slowest rank, the load-imbalance
    signature in VAMPIR.
    """
    if iterations < 1:
        raise ValueError("iterations must be positive")
    if compute_seconds < 0 or reduce_bytes < 0 or imbalance < 0:
        raise ValueError("costs cannot be negative")

    def program(rank: RankHandle):
        if rank.size > 1:
            skew = 1.0 + imbalance * rank.rank / (rank.size - 1)
        else:
            skew = 1.0
        for _ in range(iterations):
            yield rank.compute(compute_seconds * skew)
            yield rank.allreduce(reduce_bytes)

    return program
