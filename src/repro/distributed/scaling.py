"""Scaling analysis: strong/weak scaling and isoefficiency.

Stage-3 feasibility questions for distributed codes: how far does this
scale, and how must the problem grow to keep efficiency?  Models compose a
compute-time function with a communication-cost function over rank count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .network import AlphaBeta

__all__ = [
    "ScalingModel",
    "strong_scaling",
    "weak_scaling",
    "isoefficiency_size",
    "matvec_scaling_model",
    "stencil_scaling_model",
]


@dataclass(frozen=True)
class ScalingModel:
    """T(p) decomposed into compute and communication terms.

    ``compute(p)`` and ``communicate(p)`` return seconds for the chosen
    problem size embedded in the closures.
    """

    name: str
    compute: Callable[[int], float]
    communicate: Callable[[int], float]

    def time(self, p: int) -> float:
        if p < 1:
            raise ValueError("need at least one process")
        return self.compute(p) + self.communicate(p)

    def speedup(self, p: int) -> float:
        return self.time(1) / self.time(p)

    def efficiency(self, p: int) -> float:
        return self.speedup(p) / p


def strong_scaling(model: ScalingModel, processes: list[int]) -> dict[int, float]:
    """Speedup at fixed problem size over process counts."""
    if not processes:
        raise ValueError("need at least one process count")
    return {p: model.speedup(p) for p in processes}


def weak_scaling(model_for_size: Callable[[int], ScalingModel],
                 base_size: int, processes: list[int]) -> dict[int, float]:
    """Weak-scaling efficiency: problem grows proportionally with p.

    ``model_for_size(n)`` builds the model for total size n; efficiency is
    T(1, base) / T(p, p·base).
    """
    if base_size < 1:
        raise ValueError("base size must be positive")
    if not processes:
        raise ValueError("need at least one process count")
    t1 = model_for_size(base_size).time(1)
    out = {}
    for p in processes:
        if p < 1:
            raise ValueError("process counts must be positive")
        tp = model_for_size(base_size * p).time(p)
        out[p] = t1 / tp
    return out


def isoefficiency_size(model_for_size: Callable[[int], ScalingModel],
                       p: int, target_efficiency: float = 0.8,
                       max_size: int = 2**30) -> int:
    """Smallest problem size keeping efficiency >= target at p processes.

    Doubling search; raises if even ``max_size`` cannot reach the target
    (communication grows too fast — the isoefficiency verdict).
    """
    if not 0 < target_efficiency < 1:
        raise ValueError("target efficiency must be in (0, 1)")
    if p < 1:
        raise ValueError("need at least one process")
    size = max(1, p)
    while size <= max_size:
        if model_for_size(size).efficiency(p) >= target_efficiency:
            return size
        size *= 2
    raise ValueError(
        f"no size up to {max_size} reaches efficiency {target_efficiency} on {p} ranks")


def matvec_scaling_model(n: int, net: AlphaBeta,
                         seconds_per_flop: float) -> ScalingModel:
    """Row-block distributed dense matvec: 2n²/p FLOP + allgather of x.

    Communication: ring allgather of n/p elements per rank,
    (p-1)·(alpha + 8n/(p·beta)).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if seconds_per_flop <= 0:
        raise ValueError("seconds_per_flop must be positive")

    def compute(p: int) -> float:
        return 2.0 * n * n * seconds_per_flop / p

    def communicate(p: int) -> float:
        if p == 1:
            return 0.0
        return (p - 1) * net.time(8.0 * n / p)

    return ScalingModel(f"matvec-n{n}", compute, communicate)


def stencil_scaling_model(n: int, net: AlphaBeta, seconds_per_point: float,
                          iterations: int = 1) -> ScalingModel:
    """1-D-decomposed n×n stencil: n²/p points + 2 halo rows per iteration."""
    if n < 1:
        raise ValueError("n must be positive")
    if seconds_per_point <= 0 or iterations < 1:
        raise ValueError("invalid cost parameters")

    def compute(p: int) -> float:
        return iterations * n * n * seconds_per_point / p

    def communicate(p: int) -> float:
        if p == 1:
            return 0.0
        return iterations * 2 * net.time(8.0 * n)

    return ScalingModel(f"stencil-{n}x{n}", compute, communicate)
