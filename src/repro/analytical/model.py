"""Analytical performance models at three granularities — Assignment 2.

The assignment's goal: "observe and understand the levels of granularity in
analytical models, and the additional calibration challenges that come with
those".  Students "learn by trial and error to find the right level of
granularity (ranging from coarse, at function level, to very fine, at ASM
instruction level)".  We implement that ladder explicitly:

* :class:`FunctionLevelModel` — the coarsest: total work over calibrated
  peak rates, ``T = max(F/peak, B/bandwidth)`` (overlap) or the sum
  (no overlap).  Two parameters, calibrated by two microbenchmarks.
* :class:`LoopLevelModel` — one term per loop nest: trip count × calibrated
  cycles-per-iteration (+ per-invocation overhead).  Parameters per loop,
  calibrated by timing small kernels or the port model.
* :class:`InstructionLevelModel` — the finest: the loop body's instruction
  schedule on the port model plus a memory term from the cache simulator.
  Most parameters, most insight, hardest to calibrate — the trade-off the
  assignment teaches.

All models implement ``predict_seconds`` and carry a human-readable
explanation (stage 7 documentation), and :class:`ModelEvaluation` compares
any of them against measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.instruction_tables import InstructionTable
from ..machine.specs import CPUSpec
from ..microbench.suite import MachineCharacterization
from ..simulator.cpu import CPUModel
from ..simulator.ports import LoopBody, analyze_loop
from ..simulator.trace import Trace
from ..timing.metrics import WorkCount

__all__ = [
    "FunctionLevelModel",
    "LoopTerm",
    "LoopLevelModel",
    "InstructionLevelModel",
    "ModelEvaluation",
    "evaluate_model",
]


@dataclass(frozen=True)
class FunctionLevelModel:
    """Coarse whole-function model from work counts and machine peaks.

    ``overlap=True`` assumes perfect compute/traffic overlap (Roofline
    semantics); ``False`` serializes the two — the bounds bracket reality.
    """

    machine: MachineCharacterization
    overlap: bool = True

    def predict_seconds(self, work: WorkCount) -> float:
        t_comp = work.flops / self.machine.peak_flops
        t_mem = work.bytes_total / self.machine.stream_bandwidth
        return max(t_comp, t_mem) if self.overlap else t_comp + t_mem

    def bound(self, work: WorkCount) -> str:
        """Which term dominates the prediction."""
        t_comp = work.flops / self.machine.peak_flops
        t_mem = work.bytes_total / self.machine.stream_bandwidth
        return "compute" if t_comp >= t_mem else "memory"

    def explain(self, work: WorkCount) -> str:
        t_comp = work.flops / self.machine.peak_flops
        t_mem = work.bytes_total / self.machine.stream_bandwidth
        mode = "max (overlap)" if self.overlap else "sum (no overlap)"
        return (f"function-level [{mode}]: "
                f"T_comp = {work.flops:.3g} FLOP / {self.machine.peak_flops:.3g} = "
                f"{t_comp:.3e}s, T_mem = {work.bytes_total:.3g} B / "
                f"{self.machine.stream_bandwidth:.3g} = {t_mem:.3e}s "
                f"-> {self.predict_seconds(work):.3e}s ({self.bound(work)}-bound)")


@dataclass(frozen=True)
class LoopTerm:
    """One loop nest's contribution: trips × seconds/iteration + overhead."""

    name: str
    trip_count: float
    seconds_per_iteration: float
    overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.trip_count < 0 or self.seconds_per_iteration < 0 or self.overhead_seconds < 0:
            raise ValueError(f"loop term {self.name!r}: negative parameter")

    @property
    def seconds(self) -> float:
        return self.trip_count * self.seconds_per_iteration + self.overhead_seconds


@dataclass(frozen=True)
class LoopLevelModel:
    """Sum of per-loop terms; the middle granularity.

    Terms are typically calibrated by timing each loop in isolation (the
    microbenchmark path) or derived from a port analysis (the tabulated
    path) — :mod:`repro.analytical.calibration` provides both.
    """

    name: str
    terms: tuple[LoopTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("model needs at least one loop term")

    def predict_seconds(self) -> float:
        return sum(t.seconds for t in self.terms)

    def dominant_term(self) -> LoopTerm:
        return max(self.terms, key=lambda t: t.seconds)

    def explain(self) -> str:
        lines = [f"loop-level model {self.name!r}:"]
        for t in self.terms:
            lines.append(f"  {t.name:24s} {t.trip_count:12.4g} it x "
                         f"{t.seconds_per_iteration:10.3e} s/it + "
                         f"{t.overhead_seconds:8.2e} s = {t.seconds:10.3e} s")
        lines.append(f"  total {self.predict_seconds():.3e} s "
                     f"(dominant: {self.dominant_term().name})")
        return "\n".join(lines)


class InstructionLevelModel:
    """Finest granularity: port-scheduled loop body + simulated memory term.

    Combines :func:`repro.simulator.ports.analyze_loop` (compute cycles per
    iteration from the instruction tables) with a cache-simulated memory
    penalty, the same decomposition IACA/OSACA users apply by hand.
    """

    def __init__(self, cpu: CPUSpec, table: InstructionTable,
                 memory_parallelism: float = 4.0):
        self.cpu = cpu
        self.table = table
        self._model = CPUModel(cpu, table, memory_parallelism=memory_parallelism)

    def predict_seconds(self, body: LoopBody, iterations: int,
                        trace: Trace | None = None) -> float:
        """Predicted wall time of ``iterations`` of ``body``.

        Without a trace the prediction is compute-only (infinite cache);
        with one, the cache-simulated stalls/bandwidth terms are added.
        """
        if iterations < 1:
            raise ValueError("iterations must be positive")
        if trace is None:
            analysis = analyze_loop(body, self.table)
            cycles = analysis.cycles_per_iteration * iterations
            return cycles / self.cpu.frequency_hz
        sim = self._model.run(trace, body, iterations)
        return sim.seconds

    def predict_bounds(self, body: LoopBody, iterations: int,
                       trace: Trace) -> tuple[float, float]:
        """(optimistic, pessimistic) seconds — the overlap bracket."""
        sim = self._model.run(trace, body, iterations)
        return sim.optimistic_seconds, sim.pessimistic_seconds

    def explain(self, body: LoopBody, iterations: int,
                trace: Trace | None = None) -> str:
        analysis = analyze_loop(body, self.table)
        lines = [
            f"instruction-level model of {body.label!r} on {self.table.name}:",
            f"  throughput bound : {analysis.throughput_cycles:6.2f} cy/it "
            f"(port {analysis.bottleneck_port})",
            f"  latency bound    : {analysis.latency_cycles:6.2f} cy/it",
            f"  scheduled        : {analysis.cycles_per_iteration:6.2f} cy/it "
            f"({analysis.bound}-bound)",
        ]
        if trace is not None:
            opt, pess = self.predict_bounds(body, iterations, trace)
            lines.append(f"  with memory      : {opt:.3e}s .. {pess:.3e}s "
                         f"for {iterations} iterations")
        else:
            t = self.predict_seconds(body, iterations)
            lines.append(f"  compute-only     : {t:.3e}s for {iterations} iterations")
        return "\n".join(lines)


@dataclass(frozen=True)
class ModelEvaluation:
    """Predicted-vs-measured comparison across configurations."""

    name: str
    predicted: tuple[float, ...]
    measured: tuple[float, ...]
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.predicted) != len(self.measured) or not self.predicted:
            raise ValueError("need equal, non-empty prediction/measurement vectors")
        if self.labels and len(self.labels) != len(self.predicted):
            raise ValueError("labels must match predictions in length")

    def relative_errors(self) -> np.ndarray:
        pred = np.asarray(self.predicted)
        meas = np.asarray(self.measured)
        if np.any(meas <= 0):
            raise ValueError("measurements must be positive")
        return (pred - meas) / meas

    @property
    def mape(self) -> float:
        """Mean absolute percentage error — the assignment's headline metric."""
        return float(np.mean(np.abs(self.relative_errors())))

    @property
    def max_abs_error(self) -> float:
        return float(np.max(np.abs(self.relative_errors())))

    def rank_correlation(self) -> float:
        """Spearman rank correlation: does the model *order* versions right?

        The course stresses that an inaccurate model can still be useful if
        it ranks optimization candidates correctly.
        """
        from scipy import stats as sps

        if len(self.predicted) < 2:
            raise ValueError("need at least two points for a correlation")
        rho = sps.spearmanr(self.predicted, self.measured).statistic
        return float(rho)

    def report(self) -> str:
        lines = [f"model evaluation: {self.name}",
                 f"  {'case':24s} {'predicted':>12s} {'measured':>12s} {'rel.err':>9s}"]
        errs = self.relative_errors()
        labels = self.labels or tuple(f"case{i}" for i in range(len(self.predicted)))
        for label, p, m, e in zip(labels, self.predicted, self.measured, errs):
            lines.append(f"  {label:24s} {p:12.4e} {m:12.4e} {e:+9.1%}")
        lines.append(f"  MAPE {self.mape:.1%}, worst {self.max_abs_error:.1%}")
        return "\n".join(lines)


def evaluate_model(name: str, predictions: dict[str, float],
                   measurements: dict[str, float]) -> ModelEvaluation:
    """Pair up prediction/measurement dicts by key into a ModelEvaluation."""
    keys = sorted(predictions)
    if sorted(measurements) != keys:
        raise ValueError("prediction and measurement keys differ")
    return ModelEvaluation(
        name,
        tuple(predictions[k] for k in keys),
        tuple(measurements[k] for k in keys),
        tuple(keys),
    )
