"""Analytical performance models (Assignment 2): granularity ladder, ECM, laws."""

from .calibration import (
    LinearFit,
    PowerFit,
    calibrate_loop_term,
    calibrated_seconds_per_byte,
    calibrated_seconds_per_flop,
    fit_linear_cost,
    fit_power_law,
)
from .ecm import ECMModel, ECMPrediction
from .laws import (
    amdahl_limit,
    amdahl_speedup,
    amdahl_with_overhead,
    fit_serial_fraction,
    gustafson_speedup,
    optimal_workers_with_overhead,
    speedup_curve,
)
from .model import (
    FunctionLevelModel,
    InstructionLevelModel,
    LoopLevelModel,
    LoopTerm,
    ModelEvaluation,
    evaluate_model,
)

__all__ = [
    "FunctionLevelModel",
    "LoopTerm",
    "LoopLevelModel",
    "InstructionLevelModel",
    "ModelEvaluation",
    "evaluate_model",
    "ECMModel",
    "ECMPrediction",
    "amdahl_speedup",
    "amdahl_limit",
    "gustafson_speedup",
    "amdahl_with_overhead",
    "optimal_workers_with_overhead",
    "fit_serial_fraction",
    "speedup_curve",
    "LinearFit",
    "PowerFit",
    "fit_linear_cost",
    "fit_power_law",
    "calibrate_loop_term",
    "calibrated_seconds_per_flop",
    "calibrated_seconds_per_byte",
]
