"""Scaling laws: Amdahl, Gustafson, and friends.

The lectures' staple analytical models for parallel codes.  Karp-Flatt (the
inverse problem: measure speedups, infer the serial fraction) lives in
:mod:`repro.timing.metrics`; here are the forward models plus helpers the
project reports use.
"""

from __future__ import annotations

import math

__all__ = [
    "amdahl_speedup",
    "amdahl_limit",
    "gustafson_speedup",
    "amdahl_with_overhead",
    "optimal_workers_with_overhead",
    "fit_serial_fraction",
    "speedup_curve",
]


def amdahl_speedup(serial_fraction: float, workers: int) -> float:
    """Amdahl's law: S(p) = 1 / (s + (1-s)/p)."""
    _check_fraction(serial_fraction)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def amdahl_limit(serial_fraction: float) -> float:
    """Asymptotic speedup 1/s as p -> infinity."""
    _check_fraction(serial_fraction)
    if serial_fraction == 0:
        return float("inf")
    return 1.0 / serial_fraction


def gustafson_speedup(serial_fraction: float, workers: int) -> float:
    """Gustafson's law (scaled speedup): S(p) = p - s·(p-1).

    ``serial_fraction`` here is the serial share *of the parallel run* —
    the weak-scaling counterpoint the lectures contrast with Amdahl.
    """
    _check_fraction(serial_fraction)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers - serial_fraction * (workers - 1)


def amdahl_with_overhead(serial_fraction: float, workers: int,
                         overhead_fraction_per_worker: float) -> float:
    """Amdahl plus linear coordination overhead: the realistic curve.

    S(p) = 1 / (s + (1-s)/p + k·p) with k the per-worker overhead as a
    fraction of T(1).  Unlike pure Amdahl this curve *turns over*: beyond
    the optimum, more workers are slower — the effect project teams
    discover when their speedups degrade.
    """
    _check_fraction(serial_fraction)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if overhead_fraction_per_worker < 0:
        raise ValueError("overhead cannot be negative")
    denom = (serial_fraction + (1.0 - serial_fraction) / workers
             + overhead_fraction_per_worker * workers)
    return 1.0 / denom


def optimal_workers_with_overhead(serial_fraction: float,
                                  overhead_fraction_per_worker: float) -> float:
    """Worker count maximizing :func:`amdahl_with_overhead`.

    d/dp [ (1-s)/p + k·p ] = 0  =>  p* = sqrt((1-s)/k).
    """
    _check_fraction(serial_fraction)
    if overhead_fraction_per_worker <= 0:
        return float("inf")
    return math.sqrt((1.0 - serial_fraction) / overhead_fraction_per_worker)


def fit_serial_fraction(speedups: dict[int, float]) -> float:
    """Least-squares Amdahl fit of a measured speedup curve.

    Fits s in S(p) = 1/(s + (1-s)/p) by linear regression on the identity
    1/S = s·(1 - 1/p) + 1/p, clamped to [0, 1].
    """
    points = [(p, s) for p, s in speedups.items() if p >= 2]
    if not points:
        raise ValueError("need at least one measurement with p >= 2")
    num = 0.0
    den = 0.0
    for p, s in points:
        if s <= 0:
            raise ValueError("speedups must be positive")
        x = 1.0 - 1.0 / p
        y = 1.0 / s - 1.0 / p
        num += x * y
        den += x * x
    return min(1.0, max(0.0, num / den))


def speedup_curve(serial_fraction: float, max_workers: int,
                  overhead_fraction_per_worker: float = 0.0) -> dict[int, float]:
    """S(p) for p = 1..max_workers under Amdahl (+ optional overhead)."""
    if max_workers < 1:
        raise ValueError("need at least one worker")
    return {
        p: amdahl_with_overhead(serial_fraction, p, overhead_fraction_per_worker)
        for p in range(1, max_workers + 1)
    }


def _check_fraction(f: float) -> None:
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1], got {f}")
