"""Model calibration from measurements.

Assignment 2's central skill: turning microbenchmark data into model
parameters.  Provides the standard fits —

* linear cost model ``T(n) = overhead + n * cost_per_item`` (calibrates
  :class:`~repro.analytical.model.LoopTerm` parameters);
* power-law ``T(n) = c * n^k`` via log-log regression (empirically
  determines the complexity exponent, the first sanity check on any
  scaling claim);
* picking the machine peaks out of a :class:`MachineCharacterization`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..microbench.suite import MachineCharacterization
from ..timing.timers import measure
from .model import LoopTerm

__all__ = [
    "LinearFit",
    "PowerFit",
    "fit_linear_cost",
    "fit_power_law",
    "calibrate_loop_term",
    "calibrated_seconds_per_flop",
    "calibrated_seconds_per_byte",
]


@dataclass(frozen=True)
class LinearFit:
    """T(n) = overhead + n * cost_per_item, with goodness of fit."""

    overhead: float
    cost_per_item: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.overhead + n * self.cost_per_item


@dataclass(frozen=True)
class PowerFit:
    """T(n) = coefficient * n ** exponent."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, n: float) -> float:
        if n <= 0:
            raise ValueError("n must be positive")
        return self.coefficient * n ** self.exponent


def _check_xy(sizes: Sequence[float], times: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if x.ndim != 1 or x.shape != y.shape or x.size < 2:
        raise ValueError("need >= 2 matching (size, time) samples")
    if np.any(y <= 0) or np.any(x <= 0):
        raise ValueError("sizes and times must be positive")
    return x, y


def _r_squared(y: np.ndarray, pred: np.ndarray) -> float:
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def fit_linear_cost(sizes: Sequence[float], times: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``T(n) = a + b·n`` (b clamped at >= 0)."""
    x, y = _check_xy(sizes, times)
    A = np.vstack([np.ones_like(x), x]).T
    (a, b), *_ = np.linalg.lstsq(A, y, rcond=None)
    b = max(0.0, float(b))
    a = max(0.0, float(a))
    pred = a + b * x
    return LinearFit(overhead=a, cost_per_item=b, r_squared=_r_squared(y, pred))


def fit_power_law(sizes: Sequence[float], times: Sequence[float]) -> PowerFit:
    """Log-log least squares for ``T(n) = c·n^k``.

    The fitted ``exponent`` is the empirical complexity: ~3 for naive
    matmul in n, ~1 for SpMV in nnz — checking it is the first validation
    step the assignments require.
    """
    x, y = _check_xy(sizes, times)
    lx, ly = np.log(x), np.log(y)
    A = np.vstack([np.ones_like(lx), lx]).T
    (lc, k), *_ = np.linalg.lstsq(A, ly, rcond=None)
    pred = lc + k * lx
    return PowerFit(coefficient=float(np.exp(lc)), exponent=float(k),
                    r_squared=_r_squared(ly, pred))


def calibrate_loop_term(name: str, run: Callable[[int], object],
                        sizes: Sequence[int], repetitions: int = 3,
                        trip_count: float | None = None) -> LoopTerm:
    """Measure ``run(n)`` over ``sizes`` and fit a LoopTerm.

    ``run`` executes the loop with trip count n; the fitted per-iteration
    cost and overhead parameterize the term.  ``trip_count`` sets the term's
    production trip count (defaults to the largest calibrated size).
    """
    if not sizes:
        raise ValueError("need calibration sizes")
    times = []
    for n in sizes:
        if n < 1:
            raise ValueError("sizes must be positive")
        result = measure(lambda n=n: run(n), repetitions=repetitions, warmup=1)
        times.append(result.summary.median)
    fit = fit_linear_cost([float(s) for s in sizes], times)
    trips = float(trip_count if trip_count is not None else max(sizes))
    return LoopTerm(name=name, trip_count=trips,
                    seconds_per_iteration=fit.cost_per_item,
                    overhead_seconds=fit.overhead)


def calibrated_seconds_per_flop(machine: MachineCharacterization) -> float:
    """1 / peak — the function-level model's compute coefficient."""
    return 1.0 / machine.peak_flops


def calibrated_seconds_per_byte(machine: MachineCharacterization) -> float:
    """1 / bandwidth — the function-level model's traffic coefficient."""
    return 1.0 / machine.stream_bandwidth
