"""The Execution-Cache-Memory (ECM) model (Hager/Wellein group).

The course's related-work explicitly builds on the ECM model [11].  ECM
refines Roofline by modelling the time to process one *unit of work* — one
cache line's worth of loop iterations — as the composition of:

* ``T_core``  — in-core execution cycles (from the port model), split into
  an overlapping part (arithmetic) and a non-overlapping part (load/store
  issue, which occupies the load ports and cannot hide transfers);
* ``T_data``  — cycles to move the line(s) through each hierarchy level:
  L1<-L2, L2<-L3, L3<-MEM, each from that level's bandwidth.

Single-core prediction (no-overlap machine, Intel-like convention):

    T = max(T_OL, T_nOL + sum_level T_level)

Multi-core scaling: performance scales linearly with cores until the
memory-bandwidth roof is hit:

    P(n) = min(n * P(1), B_mem * work_per_byte)

which reproduces the saturation curves students measure for STREAM-like
loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.instruction_tables import InstructionTable
from ..machine.specs import CPUSpec
from ..simulator.ports import LoopBody, analyze_loop

__all__ = ["ECMPrediction", "ECMModel"]

_LOAD_OPS = ("load", "vload", "gather")
_STORE_OPS = ("store", "vstore")


@dataclass(frozen=True)
class ECMPrediction:
    """ECM decomposition of one loop, in cycles per cache line of work.

    ``iterations_per_line`` counts *elements* per line;
    ``cycles_per_iteration`` and ``seconds`` are therefore per element,
    regardless of how many elements one body iteration processes.
    """

    label: str
    iterations_per_line: int
    t_overlap: float
    t_nonoverlap: float
    t_levels: dict[str, float]
    frequency_hz: float

    @property
    def t_data_total(self) -> float:
        return sum(self.t_levels.values())

    @property
    def cycles_per_line(self) -> float:
        """The ECM composition max(T_OL, T_nOL + T_data)."""
        return max(self.t_overlap, self.t_nonoverlap + self.t_data_total)

    @property
    def cycles_per_iteration(self) -> float:
        return self.cycles_per_line / self.iterations_per_line

    def seconds(self, iterations: int) -> float:
        if iterations < 1:
            raise ValueError("iterations must be positive")
        return self.cycles_per_iteration * iterations / self.frequency_hz

    def saturation_cores(self) -> float:
        """Cores at which the loop saturates memory bandwidth.

        n_sat = ceil(T_ECM / T_mem-level); below this adding cores scales
        linearly, above it the memory roof flattens the curve.
        """
        t_mem = self.t_levels.get("MEM", 0.0)
        if t_mem <= 0:
            return float("inf")
        return self.cycles_per_line / t_mem

    def multicore_cycles_per_line(self, cores: int) -> float:
        """Predicted cycles/line with ``cores`` cores sharing memory."""
        if cores < 1:
            raise ValueError("cores must be positive")
        t_mem = self.t_levels.get("MEM", 0.0)
        per_core = self.cycles_per_line / cores
        return max(per_core, t_mem)

    def report(self) -> str:
        levels = " + ".join(f"{name}:{cy:.2f}" for name, cy in self.t_levels.items())
        return (f"ECM[{self.label}] per {self.iterations_per_line} it/line: "
                f"max({self.t_overlap:.2f}, {self.t_nonoverlap:.2f} + {levels}) "
                f"= {self.cycles_per_line:.2f} cy/line "
                f"({self.cycles_per_iteration:.2f} cy/it, "
                f"n_sat={self.saturation_cores():.1f})")


class ECMModel:
    """Build ECM predictions for loop bodies on a CPU spec."""

    def __init__(self, cpu: CPUSpec, table: InstructionTable):
        if not cpu.caches:
            raise ValueError("ECM needs a cache hierarchy")
        self.cpu = cpu
        self.table = table

    def predict(self, body: LoopBody, streams_in: int, streams_out: int,
                dtype_bytes: int = 8, hit_level: str | None = None,
                elements_per_iteration: int = 1) -> ECMPrediction:
        """ECM prediction for a streaming loop body.

        Parameters
        ----------
        body:
            The loop body.
        streams_in / streams_out:
            Number of distinct read / written streams (triad: 2 in, 1 out;
            write-allocate adds a read for each written stream).
        dtype_bytes:
            Element size; elements per cache line = line/dtype.
        hit_level:
            If the working set fits a cache level, name it (e.g. ``"L2"``)
            to truncate the transfer chain there; default goes to memory.
        elements_per_iteration:
            Elements each body iteration processes per stream: 1 for a
            scalar body, the SIMD lane count for a vectorized one.
        """
        if streams_in < 0 or streams_out < 0 or streams_in + streams_out == 0:
            raise ValueError("need at least one data stream")
        line = self.cpu.caches[0].line_bytes
        if dtype_bytes <= 0 or line % dtype_bytes:
            raise ValueError("dtype must divide the line size")
        it_per_line = line // dtype_bytes  # elements per line
        if elements_per_iteration < 1 or it_per_line % elements_per_iteration:
            raise ValueError("elements/iteration must divide elements/line")
        body_iters_per_line = it_per_line // elements_per_iteration

        # in-core: schedule the body iterations covering one line; split
        # load/store issue (non-overlapping) from arithmetic (overlapping).
        analysis = analyze_loop(body, self.table)
        per_it = analysis.cycles_per_iteration
        mix = body.opcode_mix()
        # non-overlapping part = busiest *data port* occupancy per iteration
        # (loads dispatch in parallel across load ports; summing reciprocal
        # throughputs would double-count them)
        data_pressure: dict[str, float] = {}
        for op, count in mix.items():
            if op in _LOAD_OPS or op in _STORE_OPS:
                spec = self.table[op]
                share = count * spec.uops / len(spec.ports)
                for port in spec.ports:
                    data_pressure[port] = data_pressure.get(port, 0.0) + share
        t_nol_it = max(data_pressure.values(), default=0.0)
        t_nol = t_nol_it * body_iters_per_line
        t_ol = max(0.0, per_it * body_iters_per_line - t_nol)

        # transfers: each level moves (streams_in + 2*streams_out) lines
        # per line of work (write-allocate: store streams are read+written).
        lines_moved = streams_in + 2 * streams_out
        t_levels: dict[str, float] = {}
        levels = list(self.cpu.caches)
        stop_idx = len(levels)  # exclusive index of last cache receiving traffic
        if hit_level is not None:
            names = [c.name.lower() for c in levels]
            if hit_level.lower() not in names:
                raise KeyError(f"unknown cache level {hit_level!r}")
            stop_idx = names.index(hit_level.lower())
        for k in range(1, len(levels)):
            if k > stop_idx:
                break
            upper = levels[k]
            cycles = lines_moved * line / upper.bandwidth_bytes_per_cycle
            t_levels[f"{levels[k-1].name}<-{upper.name}"] = cycles
        if stop_idx >= len(levels):
            mem_bytes_per_cycle = self.cpu.memory.bandwidth_bytes_per_s / self.cpu.frequency_hz
            # write-back traffic: stores go out once more at the memory level
            mem_lines = streams_in + 2 * streams_out
            t_levels["MEM"] = mem_lines * line / mem_bytes_per_cycle
        return ECMPrediction(
            label=body.label,
            iterations_per_line=it_per_line,
            t_overlap=t_ol,
            t_nonoverlap=t_nol,
            t_levels=t_levels,
            frequency_hz=self.cpu.frequency_hz,
        )

    def scaling_curve(self, prediction: ECMPrediction, max_cores: int | None = None
                      ) -> dict[int, float]:
        """Cycles/line for 1..max_cores — the ECM saturation plot."""
        top = self.cpu.cores if max_cores is None else max_cores
        if top < 1:
            raise ValueError("need at least one core")
        return {n: prediction.multicore_cycles_per_line(n) for n in range(1, top + 1)}
