"""Counter collection sessions (the simulated PAPI).

Usage mirrors PAPI's high-level API: create a session over a machine, name
the events, run a kernel, read the values:

>>> session = CounterSession(cpu, table, ["PAPI_TOT_CYC", "PAPI_L1_DCM"])
>>> values = session.count(trace, body, iterations=n)

Derived metrics (:func:`derived_metrics`) compute the ratios assignment 4's
pattern analysis consumes — CPI, miss ratios, achieved bandwidth — from the
raw event values, the same arithmetic LIKWID's performance groups encode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.instruction_tables import InstructionTable
from ..machine.specs import CPUSpec
from ..simulator.cpu import CPUModel, KernelSimulation
from ..simulator.ports import LoopBody
from ..simulator.trace import Trace
from .events import EVENTS

__all__ = ["CounterReading", "CounterSession", "derived_metrics"]


@dataclass(frozen=True)
class CounterReading:
    """Event values from one counted kernel execution."""

    label: str
    values: dict[str, float]
    simulation: KernelSimulation

    def __getitem__(self, event: str) -> float:
        try:
            return self.values[event]
        except KeyError:
            raise KeyError(f"event {event!r} was not in the counted set") from None

    def report(self) -> str:
        lines = [f"counters[{self.label}]:"]
        for name in sorted(self.values):
            lines.append(f"  {name:14s} {self.values[name]:18,.0f}")
        return "\n".join(lines)


class CounterSession:
    """A configured event set over one machine model."""

    def __init__(self, cpu: CPUSpec, table: InstructionTable,
                 events: list[str] | None = None, **model_kwargs):
        names = events if events is not None else sorted(EVENTS)
        unknown = [n for n in names if n not in EVENTS]
        if unknown:
            raise KeyError(f"unknown events {unknown}; see available_events()")
        if not names:
            raise ValueError("need at least one event")
        self.events = list(names)
        self.cpu = cpu
        self._model = CPUModel(cpu, table, **model_kwargs)

    def count(self, trace: Trace, body: LoopBody, iterations: int,
              label: str | None = None,
              branch_mispredict_rate: float | None = None) -> CounterReading:
        """Run the simulated kernel and read the configured events."""
        sim = self._model.run(trace, body, iterations, label=label,
                              branch_mispredict_rate=branch_mispredict_rate)
        values = {name: EVENTS[name].extract(sim.counters) for name in self.events}
        return CounterReading(sim.label, values, sim)


def derived_metrics(reading: CounterReading, cpu: CPUSpec) -> dict[str, float]:
    """LIKWID-style derived metrics from raw event values.

    Requires the full default event set; raises KeyError when a needed
    event was not counted.
    """
    c = reading
    cycles = c["PAPI_TOT_CYC"]
    instructions = c["PAPI_TOT_INS"]
    loads = c["PAPI_LD_INS"]
    stores = c["PAPI_SR_INS"]
    accesses = loads + stores
    out: dict[str, float] = {
        "cpi": cycles / instructions if instructions else 0.0,
        "ipc": instructions / cycles if cycles else 0.0,
        "flops_per_cycle": c["PAPI_FP_OPS"] / cycles if cycles else 0.0,
        "l1_miss_ratio": c["PAPI_L1_DCM"] / accesses if accesses else 0.0,
        "l2_miss_ratio": (c["PAPI_L2_DCM"] / (c["PAPI_L2_DCM"] + c["PAPI_L2_DCH"])
                          if (c["PAPI_L2_DCM"] + c["PAPI_L2_DCH"]) else 0.0),
        "l3_miss_ratio": (c["PAPI_L3_TCM"] / (c["PAPI_L3_TCM"] + c["PAPI_L3_TCH"])
                          if (c["PAPI_L3_TCM"] + c["PAPI_L3_TCH"]) else 0.0),
        "branch_mispredict_ratio": (c["PAPI_BR_MSP"] / c["PAPI_BR_INS"]
                                    if c["PAPI_BR_INS"] else 0.0),
        "dram_bytes_per_cycle": c["MEM_BYTES"] / cycles if cycles else 0.0,
        "misses_per_kilo_instruction": (1000.0 * c["PAPI_L1_DCM"] / instructions
                                        if instructions else 0.0),
    }
    # waste factor: DRAM bytes moved per byte the core actually touched
    # (8-byte elements).  ~1 for streaming, ~line/element for large strides.
    out["traffic_waste"] = (c["MEM_BYTES"] / (8.0 * accesses) if accesses else 0.0)
    peak_bytes_per_cycle = cpu.memory.bandwidth_bytes_per_s / cpu.frequency_hz
    out["bandwidth_utilization"] = (out["dram_bytes_per_cycle"] / peak_bytes_per_cycle
                                    if peak_bytes_per_cycle else 0.0)
    peak_flops_per_cycle = cpu.vector.flops_per_cycle(8)
    out["compute_utilization"] = (out["flops_per_cycle"] / peak_flops_per_cycle
                                  if peak_flops_per_cycle else 0.0)
    return out
