"""Performance patterns and their counter signatures (Treibig et al., 2012).

Assignment 4 introduces "the concept of performance patterns … and
encourage[s] students to understand the correlation of performance patterns
and observed counter values".  A pattern is a recurring performance-limiting
behaviour with a recognizable hardware-metric signature; this module encodes
the patterns the course teaches as executable detection rules over the
derived metrics of :mod:`repro.counters.collector`.

Detectors return a score in [0, 1]; :func:`diagnose` ranks all patterns for
a reading, reproducing the "look at the counters, name the pattern,
prescribe the fix" workflow of the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..machine.specs import CPUSpec
from .collector import CounterReading, derived_metrics

__all__ = ["PatternMatch", "PerformancePattern", "PATTERNS", "diagnose", "detect"]


@dataclass(frozen=True)
class PatternMatch:
    """One pattern's evaluation against a counter reading."""

    pattern: str
    score: float
    evidence: str
    remedy: str

    @property
    def detected(self) -> bool:
        return self.score >= 0.5


@dataclass(frozen=True)
class PerformancePattern:
    """A named pattern: signature scorer + prescribed remedy."""

    name: str
    description: str
    remedy: str
    scorer: Callable[[dict[str, float]], tuple[float, str]]

    def evaluate(self, metrics: dict[str, float]) -> PatternMatch:
        score, evidence = self.scorer(metrics)
        return PatternMatch(self.name, max(0.0, min(1.0, score)), evidence,
                            self.remedy)


def _saturating(value: float, onset: float, full: float) -> float:
    """Linear ramp: 0 below ``onset``, 1 above ``full``."""
    if full <= onset:
        raise ValueError("full must exceed onset")
    return (value - onset) / (full - onset)


def _bandwidth_saturation(m: dict[str, float]) -> tuple[float, str]:
    # bandwidth near peak AND the traffic is mostly useful — the genuine
    # "more cores won't help, reduce traffic" situation.
    util = m["bandwidth_utilization"]
    waste = m["traffic_waste"]
    score = min(_saturating(util, 0.55, 0.85),
                _saturating(2.5 - waste, 0.0, 1.0))
    return score, (f"DRAM bandwidth utilization {util:.0%} "
                   f"(waste factor {waste:.1f})")


def _memory_latency_bound(m: dict[str, float]) -> tuple[float, str]:
    # misses frequent, yet bandwidth NOT saturated, and IPC poor:
    # the core waits on individual lines (random/pointer access that the
    # prefetchers cannot cover).
    miss = m["l1_miss_ratio"]
    util = m["bandwidth_utilization"]
    cpi = m["cpi"]
    score = min(_saturating(miss, 0.05, 0.3),
                _saturating(0.4 - util, 0.0, 0.35),
                _saturating(cpi, 2.0, 8.0))
    return score, (f"L1 miss ratio {miss:.0%} with only {util:.0%} bandwidth "
                   f"used, CPI {cpi:.1f}")


def _strided_access(m: dict[str, float]) -> tuple[float, str]:
    # prefetchers keep bandwidth busy, but most of every line is unused:
    # DRAM bytes far exceed bytes touched.
    waste = m["traffic_waste"]
    util = m["bandwidth_utilization"]
    score = min(_saturating(waste, 1.5, 4.0), _saturating(util, 0.15, 0.5))
    return score, (f"waste factor {waste:.1f} (DRAM bytes per useful byte) "
                   f"at {util:.0%} bandwidth")


def _cache_thrashing(m: dict[str, float]) -> tuple[float, str]:
    # L1 misses constantly but L2 absorbs nearly everything and DRAM is
    # quiet: the footprint fits, yet set conflicts evict hot lines —
    # the associativity/alignment pathology (power-of-two strides).
    miss = m["l1_miss_ratio"]
    l2_miss = m["l2_miss_ratio"]
    util = m["bandwidth_utilization"]
    score = min(_saturating(miss, 0.2, 0.6),
                _saturating(0.10 - l2_miss, 0.0, 0.08),
                _saturating(0.2 - util, 0.0, 0.15))
    return score, (f"L1 miss ratio {miss:.0%} but L2 miss ratio only "
                   f"{l2_miss:.1%} — conflict misses, not capacity")


def _bad_speculation(m: dict[str, float]) -> tuple[float, str]:
    ratio = m["branch_mispredict_ratio"]
    score = _saturating(ratio, 0.02, 0.15)
    return score, f"branch mispredict ratio {ratio:.1%}"


def _instruction_overhead(m: dict[str, float]) -> tuple[float, str]:
    # lots of instructions retired per FLOP with caches quiet: scalar or
    # bookkeeping-heavy code (the classic "compile with -O0" / interpreted
    # overhead pattern).
    fpc = m["flops_per_cycle"]
    miss = m["l1_miss_ratio"]
    ipc = m["ipc"]
    quiet = _saturating(0.05 - miss, 0.0, 0.05)
    busy = _saturating(ipc, 0.5, 2.0)
    lean = _saturating(0.5 - fpc, 0.0, 0.45)
    return min(quiet, busy, lean), (
        f"IPC {ipc:.2f} but only {fpc:.2f} FLOP/cycle with quiet caches")


def _compute_saturation(m: dict[str, float]) -> tuple[float, str]:
    util = m["compute_utilization"]
    score = _saturating(util, 0.5, 0.8)
    return score, f"compute utilization {util:.0%} of peak FLOP/cycle"


#: The pattern catalogue, in the order the lecture presents them.
PATTERNS: tuple[PerformancePattern, ...] = (
    PerformancePattern(
        "bandwidth-saturation",
        "memory bandwidth is the bottleneck; cores starve together",
        "reduce traffic: blocking, fusion, smaller dtypes, NT stores",
        _bandwidth_saturation,
    ),
    PerformancePattern(
        "memory-latency-bound",
        "dependent/irregular accesses expose full memory latency",
        "improve locality or prefetchability; software prefetch; layout change",
        _memory_latency_bound,
    ),
    PerformancePattern(
        "strided-access",
        "large strides waste most of each cache line",
        "loop interchange or data-layout change (AoS->SoA, transpose)",
        _strided_access,
    ),
    PerformancePattern(
        "cache-thrashing",
        "set-associativity conflicts evict hot lines despite a small footprint",
        "pad arrays to break power-of-two strides; change leading dimensions",
        _cache_thrashing,
    ),
    PerformancePattern(
        "bad-speculation",
        "frequent branch mispredictions flush the pipeline",
        "branchless formulation, sorting, predication, lookup tables",
        _bad_speculation,
    ),
    PerformancePattern(
        "instruction-overhead",
        "high instruction count per useful FLOP; caches quiet",
        "vectorize, unroll, strength-reduce, eliminate bookkeeping",
        _instruction_overhead,
    ),
    PerformancePattern(
        "compute-saturation",
        "floating-point units near peak — the kernel is well optimized",
        "only algorithmic changes can help from here",
        _compute_saturation,
    ),
)


def diagnose(reading: CounterReading, cpu: CPUSpec) -> list[PatternMatch]:
    """Evaluate every pattern; return matches sorted by descending score."""
    metrics = derived_metrics(reading, cpu)
    matches = [p.evaluate(metrics) for p in PATTERNS]
    return sorted(matches, key=lambda m: -m.score)


def detect(reading: CounterReading, cpu: CPUSpec) -> PatternMatch:
    """The single best-matching pattern for a reading."""
    return diagnose(reading, cpu)[0]
