"""Performance-counter event definitions (PAPI-style).

Assignment 4 has students collect detailed performance data with PAPI,
LIKWID, perf, VTune, or Nsight.  Our counter source is the machine simulator
(DESIGN.md substitution table); this module defines the event namespace in
PAPI's preset-event style so the exercises read like the real tool:

>>> EVENTS["PAPI_L1_DCM"].describe
'Level 1 data cache misses'

Each event knows how to extract its value from a
:class:`~repro.simulator.cpu.SimulatedCounters` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..simulator.cpu import SimulatedCounters

__all__ = ["CounterEvent", "EVENTS", "available_events"]


@dataclass(frozen=True)
class CounterEvent:
    """One countable hardware event."""

    name: str
    describe: str
    extract: Callable[[SimulatedCounters], float]


def _level_hits(level: str) -> Callable[[SimulatedCounters], float]:
    return lambda c: float(c.level_hits.get(level, 0))


def _level_misses(level: str) -> Callable[[SimulatedCounters], float]:
    return lambda c: float(c.level_misses.get(level, 0))


_EVENT_LIST: list[CounterEvent] = [
    CounterEvent("PAPI_TOT_CYC", "Total cycles", lambda c: c.cycles),
    CounterEvent("PAPI_TOT_INS", "Instructions completed", lambda c: c.instructions),
    CounterEvent("PAPI_FP_OPS", "Floating point operations", lambda c: c.flops),
    CounterEvent("PAPI_LD_INS", "Load instructions", lambda c: float(c.loads)),
    CounterEvent("PAPI_SR_INS", "Store instructions", lambda c: float(c.stores)),
    CounterEvent("PAPI_L1_DCM", "Level 1 data cache misses", _level_misses("L1")),
    CounterEvent("PAPI_L1_DCH", "Level 1 data cache hits", _level_hits("L1")),
    CounterEvent("PAPI_L2_DCM", "Level 2 data cache misses", _level_misses("L2")),
    CounterEvent("PAPI_L2_DCH", "Level 2 data cache hits", _level_hits("L2")),
    CounterEvent("PAPI_L3_TCM", "Level 3 cache misses", _level_misses("L3")),
    CounterEvent("PAPI_L3_TCH", "Level 3 cache hits", _level_hits("L3")),
    CounterEvent("PAPI_BR_INS", "Branch instructions", lambda c: c.branches),
    CounterEvent("PAPI_BR_MSP", "Mispredicted branches", lambda c: c.branch_mispredicts),
    CounterEvent("MEM_ACCESSES", "Accesses served by DRAM", lambda c: float(c.dram_accesses)),
    CounterEvent("MEM_BYTES", "Bytes moved to/from DRAM", lambda c: float(c.dram_bytes)),
]

#: Registry keyed by event name.
EVENTS: dict[str, CounterEvent] = {e.name: e for e in _EVENT_LIST}


def available_events() -> list[str]:
    """All event names, like ``papi_avail`` prints."""
    return sorted(EVENTS)
