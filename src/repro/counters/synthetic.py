"""Synthetic kernels demonstrating each performance pattern.

Assignment 4: "we ask students to develop a simple (synthetic) kernel to
demonstrate some of these performance patterns, and show they can be
identified and fixed using performance counters data."  Each factory below
returns a :class:`SyntheticKernel` — a trace + loop body + expected pattern
— and, where the pattern has a canonical fix, a ``fixed()`` variant whose
counters no longer show the signature.

The benchmark ``benchmarks/test_bench_assignment4.py`` runs the full
demonstrate-detect-fix loop over this catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.specs import CPUSpec
from ..simulator.bodies import pointer_chase_body, reduction_body, triad_body
from ..simulator.ports import Instr, LoopBody
from ..simulator.trace import (
    Trace,
    random_access_trace,
    stream_trace,
    strided_trace,
)

__all__ = ["SyntheticKernel", "PATTERN_KERNELS", "make_pattern_kernel"]


@dataclass(frozen=True)
class SyntheticKernel:
    """A runnable pattern demonstration.

    ``iterations`` is the dynamic trip count matching the trace;
    ``mispredict_rate`` overrides the CPU model's branch predictor where
    the pattern is about speculation.
    """

    name: str
    trace: Trace
    body: LoopBody
    iterations: int
    expected_pattern: str
    mispredict_rate: float | None = None
    note: str = ""


def _bandwidth_saturation_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Vectorized triad over arrays far larger than LLC: pure streaming."""
    n = scale * 60_000
    lanes = cpu.vector.lanes(8)
    return SyntheticKernel(
        name="stream-triad-large",
        trace=stream_trace(n, "triad"),
        body=triad_body(vectorized=True),
        iterations=max(1, n // lanes),
        expected_pattern="bandwidth-saturation",
        note="SIMD triad: 24 useful bytes per element, prefetch-covered",
    )


def _latency_bound_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Dependent random loads over a huge footprint: the pointer chase."""
    n = scale * 40_000
    footprint = 16 * cpu.caches[-1].capacity_bytes
    return SyntheticKernel(
        name="random-chase",
        trace=random_access_trace(n, footprint, seed=7),
        body=pointer_chase_body(),
        iterations=n,
        expected_pattern="memory-latency-bound",
        note="random dependent loads; prefetchers cannot help",
    )


def _strided_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Stride-256B reduction: every element on its own cache line."""
    n = scale * 40_000
    line = cpu.caches[0].line_bytes
    stride = 4 * line
    return SyntheticKernel(
        name="strided-sum",
        trace=strided_trace(n, stride, max(stride * n, 8 * cpu.caches[-1].capacity_bytes)),
        body=reduction_body(),
        iterations=n,
        expected_pattern="strided-access",
        note=f"stride {stride}B: {stride // 8}x more DRAM bytes than used",
    )


def _thrashing_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Power-of-two stride hitting one L1 set: conflict misses only.

    Footprint is tiny (fits L2 easily) but every access maps to the same
    L1 set, overwhelming its associativity.
    """
    l1 = cpu.caches[0]
    set_stride = l1.n_sets * l1.line_bytes  # same-set stride
    ways_plus = 2 * l1.associativity        # twice the ways -> always evicting
    n = scale * 40_000
    idx = (np.arange(n, dtype=np.int64) % ways_plus) * set_stride
    trace = Trace(idx, np.zeros(n, dtype=bool), label="same-set-sweep")
    return SyntheticKernel(
        name="set-conflict-sweep",
        trace=trace,
        body=reduction_body(),
        iterations=n,
        expected_pattern="cache-thrashing",
        note=f"{ways_plus} lines colliding in one {l1.associativity}-way set",
    )


def _bad_speculation_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Branch on random data: ~50% mispredicted.

    The body models ``if (x[i] > 0) acc += x[i]`` — one data-dependent
    branch per element; the trace is a cheap L1-resident stream so nothing
    else is wrong with this kernel.
    """
    n = scale * 40_000
    body = LoopBody((
        Instr("load"),                       # x[i]
        Instr("cmp", deps=((0, 0),)),        # x[i] > 0 ?
        Instr("branch", deps=((1, 0),)),     # data-dependent branch
        Instr("add", deps=((0, 0), (3, 1))),  # acc += (carried)
        Instr("iadd", deps=((4, 1),)),       # i++
        Instr("cmp", deps=((4, 0),)),
        Instr("branch", deps=((5, 0),)),     # loop branch (predictable)
    ), label="branchy-sum")
    footprint = cpu.caches[0].capacity_bytes // 2
    idx = (np.arange(n, dtype=np.int64) * 8) % footprint
    trace = Trace(idx, np.zeros(n, dtype=bool), label="L1-resident-stream")
    return SyntheticKernel(
        name="branchy-sum",
        trace=trace,
        body=body,
        iterations=n,
        expected_pattern="bad-speculation",
        mispredict_rate=0.25,  # half the branches are data-dependent coin flips
        note="data-dependent branch on random values",
    )


def _instruction_overhead_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Scalar, bookkeeping-heavy loop on an L1-resident array.

    Mimics unvectorized (or interpreted) code: 10 instructions per single
    FLOP, caches quiet.
    """
    n = scale * 40_000
    body = LoopBody((
        Instr("load"),
        Instr("iadd"),                        # index arithmetic
        Instr("iadd", deps=((1, 0),)),
        Instr("imul", deps=((2, 0),)),
        Instr("cmp", deps=((3, 0),)),
        Instr("add", deps=((0, 0), (5, 1))),  # the single FLOP (carried)
        Instr("iadd", deps=((6, 1),)),        # i++
        Instr("cmp", deps=((6, 0),)),
        Instr("branch", deps=((7, 0),)),
    ), label="scalar-overhead")
    footprint = cpu.caches[0].capacity_bytes // 2
    idx = (np.arange(n, dtype=np.int64) * 8) % footprint
    trace = Trace(idx, np.zeros(n, dtype=bool), label="L1-resident-stream")
    return SyntheticKernel(
        name="scalar-overhead",
        trace=trace,
        body=body,
        iterations=n,
        expected_pattern="instruction-overhead",
        note="10 instructions of bookkeeping per FLOP",
    )


def _compute_saturation_kernel(cpu: CPUSpec, scale: int) -> SyntheticKernel:
    """Register-resident SIMD FMA chains: the peak-FLOPS microkernel.

    Two loads feed eight independent FMA chains whose operands otherwise
    live in registers (how peak-FLOPS microbenchmarks and register-blocked
    GEMM microkernels are actually written) — the FMA ports are the only
    bottleneck.
    """
    n = scale * 40_000
    lanes = cpu.vector.lanes(8)
    instrs: list[Instr] = [Instr("vload"), Instr("vload")]
    for _ in range(8):
        pos = len(instrs)
        instrs.append(Instr("vfmadd", deps=((0, 0), (1, 0), (pos, 1))))
    i = len(instrs)
    instrs.append(Instr("iadd", deps=((i, 1),)))
    instrs.append(Instr("cmp", deps=((i, 0),)))
    instrs.append(Instr("branch", deps=((i + 1, 0),)))
    body = LoopBody(tuple(instrs), label="register-fma-chains")
    footprint = cpu.caches[0].capacity_bytes // 2
    idx = (np.arange(n, dtype=np.int64) * 8) % footprint
    trace = Trace(idx, np.zeros(n, dtype=bool), label="L1-resident-stream")
    return SyntheticKernel(
        name="simd-fma-peak",
        trace=trace,
        body=body,
        iterations=max(1, n // (8 * lanes)),
        expected_pattern="compute-saturation",
        note="8 independent register-resident SIMD FMA chains",
    )


#: pattern name -> kernel factory (cpu, scale) -> SyntheticKernel
PATTERN_KERNELS = {
    "bandwidth-saturation": _bandwidth_saturation_kernel,
    "memory-latency-bound": _latency_bound_kernel,
    "strided-access": _strided_kernel,
    "cache-thrashing": _thrashing_kernel,
    "bad-speculation": _bad_speculation_kernel,
    "instruction-overhead": _instruction_overhead_kernel,
    "compute-saturation": _compute_saturation_kernel,
}


def make_pattern_kernel(pattern: str, cpu: CPUSpec, scale: int = 1) -> SyntheticKernel:
    """Build the demonstration kernel for ``pattern`` on ``cpu``.

    ``scale`` multiplies the trace length (1 is enough for detection; the
    benchmarks use larger scales for stable rates).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    try:
        factory = PATTERN_KERNELS[pattern]
    except KeyError:
        raise KeyError(f"no synthetic kernel for pattern {pattern!r}; "
                       f"known: {sorted(PATTERN_KERNELS)}") from None
    return factory(cpu, scale)
