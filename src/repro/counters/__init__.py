"""Performance counters and performance patterns (Assignment 4)."""

from .collector import CounterReading, CounterSession, derived_metrics
from .events import EVENTS, CounterEvent, available_events
from .patterns import PATTERNS, PatternMatch, PerformancePattern, detect, diagnose
from .synthetic import PATTERN_KERNELS, SyntheticKernel, make_pattern_kernel

__all__ = [
    "CounterEvent",
    "EVENTS",
    "available_events",
    "CounterSession",
    "CounterReading",
    "derived_metrics",
    "PerformancePattern",
    "PatternMatch",
    "PATTERNS",
    "diagnose",
    "detect",
    "SyntheticKernel",
    "PATTERN_KERNELS",
    "make_pattern_kernel",
]
