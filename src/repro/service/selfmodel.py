"""The self-model check: the queueing module models the service it guards.

ROADMAP item 1's closing move — ``repro.queueing`` both *serves* (the
admission controller's capacity math) and *models* the service.  The
check drives a live engine with the seeded open-loop Poisson client
(:class:`~repro.service.client.PoissonClient`), then compares what the
service *measured* — per-job queueing delay, worker utilization — against
what :func:`repro.queueing.models.mmc` *predicts* from the measured
arrival and service rates.

Model inputs are the **measured** rates λ̂ (from admission timestamps)
and μ̂ (from executed service durations), not the nominal ones: sleep
overshoot and per-job engine overhead shift the realized rates, and an
honest self-model must predict from what actually happened.  A warmup
prefix is dropped so the transient empty-queue start does not dilute the
steady-state mean the formulas describe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..queueing.models import mmc
from .client import PoissonClient, ServiceClient

__all__ = ["SelfModelReport", "self_model_check"]


@dataclass(frozen=True)
class SelfModelReport:
    """Measured-vs-predicted verdict of one self-model run."""

    jobs: int
    shed: int
    workers: int
    arrival_rate: float          # λ̂ (admitted jobs)
    service_rate: float          # μ̂ (from executed durations)
    utilization_measured: float  # ρ̂ = λ̂ / (c·μ̂)
    mean_wait_measured: float
    mean_wait_predicted: float   # M/M/c Wq at (λ̂, μ̂, c)
    prob_wait_predicted: float

    @property
    def wait_error(self) -> float:
        """Relative error of the model: (measured − predicted)/predicted."""
        if self.mean_wait_predicted == 0:
            return float("inf")
        return (self.mean_wait_measured - self.mean_wait_predicted) \
            / self.mean_wait_predicted

    def within(self, tolerance: float) -> bool:
        return abs(self.wait_error) <= tolerance

    def report(self) -> str:
        return (
            f"self-model: {self.jobs} jobs ({self.shed} shed), "
            f"c={self.workers}, lambda={self.arrival_rate:.1f}/s, "
            f"mu={self.service_rate:.1f}/s, rho={self.utilization_measured:.3f}\n"
            f"  mean wait measured  {self.mean_wait_measured * 1e3:8.2f} ms\n"
            f"  mean wait M/M/c     {self.mean_wait_predicted * 1e3:8.2f} ms"
            f"  (P(wait)={self.prob_wait_predicted:.3f})\n"
            f"  relative error      {self.wait_error:+8.1%}")


def self_model_check(client: ServiceClient, *, rate: float = 60.0,
                     service_rate: float = 50.0, jobs: int = 400,
                     workers: int = 2, seed: int = 0,
                     tenant: str = "selfmodel",
                     warmup_fraction: float = 0.15,
                     timeout: float = 120.0) -> SelfModelReport:
    """Drive the service open-loop and validate its waits against M/M/c.

    ``workers`` must match the target engine's pool size — the ``c`` of
    the model.  Raises ``RuntimeError`` when too few jobs complete to
    estimate rates.
    """
    drive = PoissonClient(client, rate=rate, service_rate=service_rate,
                          jobs=jobs, seed=seed, tenant=tenant).run()
    docs = [client.wait(job_id, timeout=timeout)
            for job_id in drive.submitted]
    done = [d for d in docs if d["state"] == "done"]
    if len(done) < max(10, jobs // 4):
        raise RuntimeError(
            f"only {len(done)}/{jobs} jobs completed; cannot self-model")
    skip = int(len(done) * warmup_fraction)
    steady = done[skip:]
    waits = [d["wait_seconds"] for d in steady]
    services = [d["service_seconds"] for d in done]
    mean_service = sum(services) / len(services)
    lam = drive.measured_arrival_rate
    mu = 1.0 / mean_service
    if lam <= 0 or mu <= 0:
        raise RuntimeError("degenerate measured rates")
    predicted = mmc(lam, mu, workers, allow_unstable=True)
    return SelfModelReport(
        jobs=len(done), shed=drive.shed, workers=workers,
        arrival_rate=lam, service_rate=mu,
        utilization_measured=lam / (workers * mu),
        mean_wait_measured=sum(waits) / len(waits),
        mean_wait_predicted=predicted.mean_wait,
        prob_wait_predicted=predicted.prob_wait)
