"""Job model: the unit of work the service queues, runs, and reports.

A :class:`Job` is deliberately a *mutable* record guarded by the engine's
lock — its state walks the machine below and every transition bumps a
version the HTTP event stream waits on, so "job states streamed as JSON"
is a condition-variable wait, not a poll loop inside the server.

::

    queued ──> running ──> done
       │          │
       │          └──────> failed
       └────────────────> cancelled
"""

from __future__ import annotations

import itertools
import time
import uuid
from typing import Mapping

from .manifest import WorkloadManifest

__all__ = ["JobState", "Job", "AdmissionError"]


class JobState:
    """String states; class-level constants double as the JSON vocabulary."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)


_TRANSITIONS = {
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED, JobState.DONE,
                      JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}

#: Job kinds the runner knows how to execute.
KINDS = ("benchmark", "tune", "analyze", "synthetic", "report")

_seq = itertools.count(1)


class AdmissionError(RuntimeError):
    """The admission controller refused a submission (HTTP 429).

    ``retry_after`` is the seconds a well-behaved client should back off —
    the value the HTTP layer puts in the ``Retry-After`` header.
    """

    def __init__(self, reason: str, retry_after: float):
        super().__init__(reason)
        self.reason = reason
        self.retry_after = max(0.0, float(retry_after))


class Job:
    """One submitted unit of work and its full lifecycle."""

    __slots__ = ("job_id", "tenant", "kind", "manifest", "priority", "params",
                 "cache_key", "state", "submitted", "started", "finished",
                 "result", "error", "cached", "coalesced_with", "version",
                 "seq")

    def __init__(self, manifest: WorkloadManifest, kind: str,
                 tenant: str = "default", priority: int = 5,
                 params: Mapping[str, object] | None = None,
                 now: float | None = None):
        if kind not in KINDS:
            raise ValueError(f"unknown job kind {kind!r}; known: {KINDS}")
        if manifest.is_synthetic != (kind == "synthetic"):
            raise ValueError(
                f"kind {kind!r} does not fit manifest {manifest.name!r}")
        self.job_id = uuid.uuid4().hex[:12]
        self.tenant = str(tenant)
        self.kind = kind
        self.manifest = manifest
        self.priority = int(priority)
        self.params = dict(params or {})
        self.cache_key: str | None = None
        self.state = JobState.QUEUED
        self.submitted = time.time() if now is None else float(now)
        self.started: float | None = None
        self.finished: float | None = None
        self.result: dict | None = None
        self.error: str | None = None
        self.cached = False
        self.coalesced_with: str | None = None  # leader's job_id
        self.version = 0
        self.seq = next(_seq)  # FIFO tiebreak within a priority class

    def transition(self, state: str) -> None:
        """Move to ``state``, enforcing the machine; caller holds the lock."""
        if state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {state}")
        self.state = state
        self.version += 1

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def wait_seconds(self) -> float | None:
        """Queueing delay: admission to execution start."""
        if self.started is None:
            return None
        return self.started - self.submitted

    @property
    def service_seconds(self) -> float | None:
        """Execution time: start to finish (None until finished)."""
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "manifest": self.manifest.name,
            "manifest_hash": self.manifest.manifest_hash(),
            "priority": self.priority,
            "state": self.state,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "wait_seconds": self.wait_seconds,
            "service_seconds": self.service_seconds,
            "cached": self.cached,
            "coalesced_with": self.coalesced_with,
            "result": self.result,
            "error": self.error,
            "version": self.version,
        }
