"""Admission control: per-tenant token buckets plus queue backpressure.

Two independent reasons to shed a submission, each with an honest
``Retry-After``:

* **tenant quota** — a token bucket per tenant (rate r jobs/s, burst b).
  A tenant that exhausts its burst is told exactly when the next token
  arrives; other tenants are unaffected.
* **queue backpressure** — the global queue has a depth bound sized so
  queued work drains in bounded time.  When it is full the retry hint is
  the modeled drain time of one slot, ``1 / (workers · μ̂)``, with μ̂ the
  engine's moving estimate of the service rate — the same quantity
  :func:`repro.queueing.models.capacity_for` plans worker counts from.

Buckets take an explicit clock so tests (and the seeded overload burst in
CI) are deterministic.
"""

from __future__ import annotations

import threading
import time

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst < 1:
            raise ValueError("need rate > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: float | None = None
        self._lock = threading.Lock()

    def try_acquire(self, now: float | None = None) -> tuple[bool, float]:
        """Take one token; ``(ok, retry_after)`` where retry_after is the
        wait until a token would be available (0 when ok)."""
        now = time.monotonic() if now is None else float(now)
        with self._lock:
            if self._stamp is not None:
                elapsed = max(0.0, now - self._stamp)
                self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Decides, per submission, between admit and shed-with-retry-hint."""

    def __init__(self, max_queue_depth: int = 64,
                 tenant_rate: float = 50.0, tenant_burst: float = 100.0):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        self.max_queue_depth = int(max_queue_depth)
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = float(tenant_burst)
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.tenant_rate, self.tenant_burst)
            return bucket

    def set_quota(self, tenant: str, rate: float, burst: float) -> None:
        """Override one tenant's quota (takes effect for new tokens)."""
        with self._lock:
            self._buckets[tenant] = TokenBucket(rate, burst)

    def admit(self, tenant: str, queue_depth: int,
              drain_rate: float | None = None,
              now: float | None = None) -> tuple[bool, str, float]:
        """``(admitted, reason, retry_after)`` for one submission attempt.

        ``drain_rate`` is the engine's estimate of total job completions
        per second (workers · μ̂); it converts a full queue into a
        concrete back-off instead of a blind one.
        """
        if queue_depth >= self.max_queue_depth:
            retry = 1.0 if not drain_rate else max(0.05, 1.0 / drain_rate)
            return False, (f"queue full ({queue_depth}/"
                           f"{self.max_queue_depth})"), retry
        ok, retry = self.bucket(tenant).try_acquire(now)
        if not ok:
            return False, f"tenant {tenant!r} over quota", retry
        return True, "", 0.0
