"""Declarative workload manifests — registering a workload is writing data.

SHARP's launcher discovers its workloads from per-function manifest files;
this module is that idea over our kernel registry.  A
:class:`WorkloadManifest` names a registered kernel variant, the
problem-size arguments its operands are built from, the execution
configuration, measurement discipline, and which backends/metrics a
tenant may ask for — all plain JSON, all validated against
:data:`repro.kernels.REGISTRY` *before* a job is admitted, so a typo'd
manifest is a 400 at registration time, never a worker crash at run time.

The manifest's canonical hash (:meth:`WorkloadManifest.manifest_hash`)
is the service's unit of identity: result caching and queued-job
coalescing both key on it (plus the machine fingerprint), so two tenants
submitting byte-equivalent work share one execution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping

from ..kernels.base import REGISTRY, KernelRegistry

__all__ = [
    "ManifestError",
    "WorkloadManifest",
    "ManifestRegistry",
    "builtin_manifests",
    "KNOWN_METRICS",
    "KNOWN_BACKENDS",
    "SYNTHETIC_KERNEL",
]

#: Metric names a manifest may request from a benchmark job.
KNOWN_METRICS = ("best_seconds", "median_seconds", "mean_seconds",
                 "stddev_seconds", "gflops")

#: Execution backends a manifest may allow (mirrors repro.parallel.backends).
KNOWN_BACKENDS = ("serial", "thread", "process")

#: Pseudo kernel family for service self-modeling: a seeded sleep whose
#: duration is the job's declared service demand.  Not in the kernel
#: registry — it exercises the *service*, not the hardware.
SYNTHETIC_KERNEL = "synthetic"

#: Problem-size argument names each kernel family's operand builder accepts
#: (see repro.service.runner); the manifest validator rejects the rest.
_FAMILY_ARGS = {
    "matmul": {"n", "seed"},
    "stencil": {"n", "m"},
    "histogram": {"n", "bins", "seed", "distribution"},
    "spmv": {"n", "density", "seed"},
    SYNTHETIC_KERNEL: {"seconds"},
}


class ManifestError(ValueError):
    """A manifest failed validation against the kernel registry."""


@dataclass(frozen=True)
class WorkloadManifest:
    """One declaratively-registered workload.

    Attributes
    ----------
    name:
        Registry key tenants submit jobs against.
    kernel / variant:
        Registered kernel slug, e.g. ``matmul`` / ``numpy`` — or the
        :data:`SYNTHETIC_KERNEL` family with variant ``sleep``.
    args:
        Problem-size arguments for the family's operand builder
        (``{"n": 128, "seed": 0}``); the timed call never includes them.
    config:
        Keyword arguments for the kernel callable; every key must be a
        tunable the variant declares, so a manifest can only steer knobs
        the kernel advertises.
    repetitions / warmup:
        Measurement discipline for benchmark jobs.  With ``adaptive``
        set, ``repetitions`` is the per-job *cap* and sampling stops as
        soon as the median's bootstrap CI is within ``rel_ci``.
    adaptive / rel_ci:
        Opt into the sequential stopping rule
        (:func:`repro.timing.adaptive.measure_adaptive`) for benchmark
        jobs; ``rel_ci`` is the relative CI half-width target.
    metrics:
        Which derived metrics the result payload reports.
    backends:
        Backends the workload may execute on; a ``config["backend"]``
        outside this set is rejected.
    tune:
        Tune-job settings: ``max_evaluations`` (budget) and ``seed``
        (search determinism).
    cacheable:
        ``False`` opts out of result caching *and* queued-job coalescing
        — required for workloads whose cost is drawn per job (the
        synthetic self-model client), wrong for everything else.
    """

    name: str
    kernel: str
    variant: str
    args: Mapping[str, object] = field(default_factory=dict)
    config: Mapping[str, object] = field(default_factory=dict)
    repetitions: int = 3
    warmup: int = 1
    adaptive: bool = False
    rel_ci: float = 0.05
    metrics: tuple[str, ...] = ("best_seconds", "median_seconds")
    backends: tuple[str, ...] = ("serial",)
    tune: Mapping[str, object] = field(default_factory=dict)
    cacheable: bool = True

    def __post_init__(self) -> None:
        for fname in ("metrics", "backends"):
            if isinstance(getattr(self, fname), (str, bytes)):
                raise ManifestError(
                    f"{fname} must be a sequence of names, not a bare "
                    f"string ({getattr(self, fname)!r}); tuple() would "
                    f"split it into characters")
        object.__setattr__(self, "args", dict(self.args))
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "tune", dict(self.tune))

    @property
    def slug(self) -> str:
        return f"{self.kernel}.{self.variant}"

    @property
    def is_synthetic(self) -> bool:
        return self.kernel == SYNTHETIC_KERNEL

    def validate(self, registry: KernelRegistry = REGISTRY) -> "WorkloadManifest":
        """Check every field against the kernel registry; returns self."""
        if not self.name or "/" in self.name:
            raise ManifestError(f"bad manifest name {self.name!r}")
        if self.repetitions < 1 or self.warmup < 0:
            raise ManifestError(
                f"{self.name}: need repetitions >= 1 and warmup >= 0")
        if not 0 < self.rel_ci < 1:
            raise ManifestError(
                f"{self.name}: rel_ci must be in (0, 1), got {self.rel_ci}")
        unknown = set(self.metrics) - set(KNOWN_METRICS)
        if unknown:
            raise ManifestError(
                f"{self.name}: unknown metrics {sorted(unknown)}; "
                f"known: {list(KNOWN_METRICS)}")
        bad_backends = set(self.backends) - set(KNOWN_BACKENDS)
        if bad_backends or not self.backends:
            raise ManifestError(
                f"{self.name}: backends must be a non-empty subset of "
                f"{list(KNOWN_BACKENDS)}, got {list(self.backends)}")
        allowed_args = _FAMILY_ARGS.get(self.kernel)
        if allowed_args is None:
            raise ManifestError(
                f"{self.name}: no operand builder for kernel family "
                f"{self.kernel!r}; known: {sorted(_FAMILY_ARGS)}")
        extra = set(self.args) - allowed_args
        if extra:
            raise ManifestError(
                f"{self.name}: {self.kernel} args do not accept "
                f"{sorted(extra)}; allowed: {sorted(allowed_args)}")
        if self.is_synthetic:
            if self.variant != "sleep":
                raise ManifestError(
                    f"{self.name}: synthetic kernel only has variant 'sleep'")
            if self.config:
                raise ManifestError(f"{self.name}: synthetic takes no config")
            return self
        try:
            kv = registry.get(self.kernel, self.variant)
        except KeyError as exc:
            raise ManifestError(f"{self.name}: {exc}") from None
        declared = {t.name for t in kv.tunables}
        undeclared = set(self.config) - declared
        if undeclared:
            raise ManifestError(
                f"{self.name}: config keys {sorted(undeclared)} are not "
                f"declared tunables of {self.slug} (declared: "
                f"{sorted(declared)})")
        backend = self.config.get("backend")
        if backend is not None and backend not in self.backends:
            raise ManifestError(
                f"{self.name}: config backend {backend!r} not in allowed "
                f"backends {list(self.backends)}")
        max_evals = self.tune.get("max_evaluations", 8)
        if not isinstance(max_evals, int) or max_evals < 1:
            raise ManifestError(
                f"{self.name}: tune.max_evaluations must be a positive int")
        return self

    def manifest_hash(self) -> str:
        """Canonical content hash — the caching/coalescing identity."""
        doc = json.dumps(self.to_dict(), sort_keys=True,
                         separators=(",", ":"))
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kernel": self.kernel,
            "variant": self.variant,
            "args": dict(sorted(self.args.items())),
            "config": dict(sorted(self.config.items())),
            "repetitions": self.repetitions,
            "warmup": self.warmup,
            "adaptive": self.adaptive,
            "rel_ci": self.rel_ci,
            "metrics": list(self.metrics),
            "backends": list(self.backends),
            "tune": dict(sorted(self.tune.items())),
            "cacheable": self.cacheable,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "WorkloadManifest":
        # A bare string survives tuple() coercion by splitting into
        # characters — "thread" would become ('t','h','r','e','a','d') and
        # fail validation six confusing errors later.  Reject it here, and
        # before the try below: ManifestError is a ValueError, so raising
        # inside the try would rewrap the pointed message into the generic
        # "unreadable manifest document" one.
        for key in ("metrics", "backends"):
            value = doc.get(key)
            if isinstance(value, (str, bytes)):
                raise ManifestError(
                    f"manifest field {key!r} must be a list of names, not "
                    f"the bare string {value!r} — write [{value!r}] instead")
        try:
            return cls(
                name=str(doc["name"]),
                kernel=str(doc["kernel"]),
                variant=str(doc["variant"]),
                args=dict(doc.get("args", {})),
                config=dict(doc.get("config", {})),
                repetitions=int(doc.get("repetitions", 3)),
                warmup=int(doc.get("warmup", 1)),
                adaptive=bool(doc.get("adaptive", False)),
                rel_ci=float(doc.get("rel_ci", 0.05)),
                metrics=tuple(doc.get("metrics",
                                      ("best_seconds", "median_seconds"))),
                backends=tuple(doc.get("backends", ("serial",))),
                tune=dict(doc.get("tune", {})),
                cacheable=bool(doc.get("cacheable", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"unreadable manifest document: {exc}") from None

    def with_params(self, **params) -> "WorkloadManifest":
        """Derived manifest with overridden args (used by sized submissions)."""
        return replace(self, args={**dict(self.args), **params})


class ManifestRegistry:
    """Name-indexed store of validated manifests."""

    def __init__(self, registry: KernelRegistry = REGISTRY):
        self._kernel_registry = registry
        self._manifests: dict[str, WorkloadManifest] = {}

    def register(self, manifest: WorkloadManifest,
                 replace: bool = False) -> WorkloadManifest:
        manifest.validate(self._kernel_registry)
        if manifest.name in self._manifests and not replace:
            raise ManifestError(
                f"manifest {manifest.name!r} already registered")
        self._manifests[manifest.name] = manifest
        return manifest

    def get(self, name: str) -> WorkloadManifest:
        try:
            return self._manifests[name]
        except KeyError:
            raise KeyError(f"no manifest {name!r}; known: "
                           f"{sorted(self._manifests)}") from None

    def names(self) -> list[str]:
        return sorted(self._manifests)

    def __contains__(self, name: str) -> bool:
        return name in self._manifests

    def __len__(self) -> int:
        return len(self._manifests)

    def load_dir(self, path: str | Path, replace: bool = False) -> int:
        """Register every ``*.json`` manifest under ``path``; returns count."""
        loaded = 0
        for file in sorted(Path(path).glob("*.json")):
            doc = json.loads(file.read_text(encoding="utf-8"))
            self.register(WorkloadManifest.from_dict(doc), replace=replace)
            loaded += 1
        return loaded

    def dump(self, path: str | Path) -> int:
        """Write every manifest as ``<name>.json`` under ``path``."""
        out = Path(path)
        out.mkdir(parents=True, exist_ok=True)
        for name in self.names():
            doc = json.dumps(self._manifests[name].to_dict(), indent=2,
                             sort_keys=True)
            (out / f"{name}.json").write_text(doc + "\n", encoding="utf-8")
        return len(self._manifests)


def builtin_manifests() -> list[WorkloadManifest]:
    """The served counterparts of the course's four core workloads.

    Sizes are service-friendly (tens of milliseconds, not seconds): the
    point of a served benchmark is the loop, the perfdb shard, and the
    cache — a tenant wanting bigger problems registers a bigger manifest.
    """
    return [
        WorkloadManifest(
            name="matmul-small", kernel="matmul", variant="numpy",
            args={"n": 96, "seed": 0},
            metrics=("best_seconds", "median_seconds", "gflops")),
        WorkloadManifest(
            name="matmul-tiled-tune", kernel="matmul", variant="tiled",
            args={"n": 48, "seed": 0},
            tune={"max_evaluations": 4, "seed": 0}),
        WorkloadManifest(
            name="stencil-small", kernel="stencil", variant="numpy",
            args={"n": 128}),
        WorkloadManifest(
            name="histogram-small", kernel="histogram", variant="numpy",
            args={"n": 20000, "bins": 256, "seed": 0}),
        WorkloadManifest(
            name="spmv-small", kernel="spmv", variant="csr_numpy",
            args={"n": 400, "density": 0.02, "seed": 0}),
        WorkloadManifest(
            name="synthetic-sleep", kernel=SYNTHETIC_KERNEL, variant="sleep",
            args={"seconds": 0.005}, cacheable=False,
            metrics=("best_seconds",)),
    ]
