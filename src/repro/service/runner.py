"""Job execution: from validated manifest to result payload.

One function per job kind, dispatched by :func:`execute`:

* ``benchmark`` — build operands from the manifest's problem-size args,
  run :func:`repro.timing.timers.measure` with the manifest's
  repetitions/warmup, derive the requested metrics (including GFLOP/s
  from the variant's declared work model), and append a
  :class:`~repro.perfdb.record.RunRecord` to the submitting tenant's
  perfdb shard;
* ``tune`` — seeded random search over the variant's declared tunables
  under the manifest's evaluation budget, via the existing
  :func:`repro.tuning.tune_variant` harness;
* ``analyze`` — the static-analysis verdict for the variant (lint +
  hazards findings as JSON);
* ``synthetic`` — sleep for the declared service demand; the self-model
  workload that turns the service into its own queueing experiment;
* ``report`` — render the submitting tenant's perfdb shard into the
  self-contained HTML artifact of :func:`repro.report.build_report`; the
  engine's quota/cache/coalescing machinery applies unchanged, so a
  tenant hammering "rebuild my dashboard" costs one render.

Operand construction is the one place kernel families differ, so it is a
table (`_SETUP`), exactly like the registry's own convention: adding a
family to the service is adding a row, not a subclass.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Mapping

from ..kernels.base import REGISTRY, KernelVariant
from ..perfdb.record import RunRecord
from ..perfdb.store import PerfStore
from ..timing.adaptive import measure_adaptive
from ..timing.timers import measure
from .jobs import Job
from .manifest import WorkloadManifest

__all__ = ["execute", "build_operands", "RunnerError"]


class RunnerError(RuntimeError):
    """A job failed inside the runner (reported as state ``failed``)."""


@contextmanager
def _live_backend(variant: KernelVariant, manifest: WorkloadManifest,
                  config: dict, ctx: Mapping):
    """Resolve and construct the manifest's execution backend, if any.

    For variants that declare a ``backend`` tunable, the requested name
    (``config["backend"]``, else the manifest's first allowed backend) is
    built into a **live** :class:`~repro.parallel.backends.ExecutionBackend`
    *here*, outside the timed region — the kernel borrows the instance via
    ``open_backend``, so pool spawn/teardown never pollutes the
    measurement, and the job really executes on the backend the tenant
    asked for instead of whatever the kernel's default happens to be.

    Yields ``{"name", "workers"}`` (or ``None`` for backend-less
    variants) and mutates ``config`` in place.  An unavailable backend
    raises :class:`RunnerError` — the engine reports the job as
    ``failed``, it must not crash a worker.
    """
    if "backend" not in {t.name for t in variant.tunables}:
        yield None
        return
    name = config.get("backend", manifest.backends[0])
    if not isinstance(name, str):  # already a live backend (direct callers)
        yield {"name": getattr(name, "name", str(name)),
               "workers": getattr(name, "workers", None)}
        return
    workers = int(config.get("workers",
                             variant.default_config().get("workers", 2)))
    from ..parallel.backends import make_backend
    try:
        backend = make_backend(name, workers)
    except Exception as exc:
        raise RunnerError(f"backend {name!r} unavailable: {exc}") from exc
    try:
        config["backend"] = backend
        metrics = ctx.get("metrics")
        if metrics is not None:
            metrics.counter(f"service.backend_runs.{name}").inc()
        yield {"name": name, "workers": backend.workers}
    finally:
        backend.close()


# -- operand builders ---------------------------------------------------------

def _setup_matmul(args: Mapping) -> tuple:
    from ..kernels.matmul import random_matrices
    return random_matrices(int(args.get("n", 96)),
                           seed=int(args.get("seed", 0)))


def _setup_stencil(args: Mapping) -> tuple:
    from ..kernels.stencil import init_grid
    n = int(args.get("n", 128))
    m = args.get("m")
    src = init_grid(n, None if m is None else int(m))
    return src, src.copy()


def _setup_histogram(args: Mapping) -> tuple:
    from ..kernels.histogram import random_keys
    bins = int(args.get("bins", 256))
    keys = random_keys(int(args.get("n", 20000)), bins,
                       seed=int(args.get("seed", 0)),
                       distribution=str(args.get("distribution", "uniform")))
    return keys, bins


def _setup_spmv(args: Mapping) -> tuple:
    import numpy as np

    from ..kernels.spmv import random_sparse
    n = int(args.get("n", 400))
    coo = random_sparse(n, density=float(args.get("density", 0.02)),
                        seed=int(args.get("seed", 0)))
    x = np.random.default_rng(int(args.get("seed", 0)) + 1).standard_normal(n)
    return coo.to_csr(), x


_SETUP: dict[str, Callable[[Mapping], tuple]] = {
    "matmul": _setup_matmul,
    "stencil": _setup_stencil,
    "histogram": _setup_histogram,
    "spmv": _setup_spmv,
}


def build_operands(manifest: WorkloadManifest) -> tuple:
    """Positional arguments for one timed call of the manifest's kernel."""
    try:
        builder = _SETUP[manifest.kernel]
    except KeyError:
        raise RunnerError(f"no operand builder for kernel family "
                          f"{manifest.kernel!r}") from None
    return builder(manifest.args)


def _work_flops(manifest: WorkloadManifest, variant: KernelVariant,
                operands: tuple) -> float | None:
    """FLOPs of one call, from the variant's declared work model.

    Work-model signatures differ by family (sizes for dense kernels, the
    built matrix for spmv), mirroring the registry convention.
    """
    try:
        if manifest.kernel == "matmul":
            return variant.work(int(manifest.args.get("n", 96))).flops
        if manifest.kernel == "stencil":
            n = int(manifest.args.get("n", 128))
            m = manifest.args.get("m")
            return variant.work(n, None if m is None else int(m)).flops
        if manifest.kernel == "histogram":
            return variant.work(int(manifest.args.get("n", 20000)),
                                int(manifest.args.get("bins", 256))).flops
        if manifest.kernel == "spmv":
            return variant.work(operands[0]).flops
    except (TypeError, ValueError):
        return None
    return None


# -- per-kind executors -------------------------------------------------------

def _run_benchmark(job: Job, manifest: WorkloadManifest,
                   store: PerfStore | None, ctx: Mapping) -> dict:
    variant = REGISTRY.get(manifest.kernel, manifest.variant)
    operands = build_operands(manifest)
    config = dict(manifest.config)
    with _live_backend(variant, manifest, config, ctx) as backend_info:
        if manifest.adaptive:
            lo = min(3, manifest.repetitions)
            res = measure_adaptive(
                lambda: variant.fn(*operands, **config),
                rel_ci=manifest.rel_ci, min_repetitions=lo, batch=lo,
                max_repetitions=manifest.repetitions, warmup=manifest.warmup)
        else:
            res = measure(lambda: variant.fn(*operands, **config),
                          repetitions=manifest.repetitions,
                          warmup=manifest.warmup)
    flops = _work_flops(manifest, variant, operands)
    derived = {
        "best_seconds": res.best,
        "median_seconds": res.summary.median,
        "mean_seconds": res.summary.mean,
        "stddev_seconds": res.summary.std,
        "gflops": (flops / res.best / 1e9) if flops else None,
    }
    payload = {
        "kernel": manifest.slug,
        "times": list(res.times),
        "stable": res.stable,
        "repetitions": len(res.times),
        "stop_reason": res.stop_reason,
        "achieved_rel_ci": res.achieved_rel_ci,
        "metrics": {name: derived[name] for name in manifest.metrics},
    }
    if backend_info is not None:
        payload["backend"] = backend_info["name"]
        payload["backend_workers"] = backend_info["workers"]
    if store is not None:
        record = RunRecord.new(
            {f"service/{manifest.name}": res.times},
            label=f"service:{job.tenant}:{job.kind}",
            machine=dict(ctx.get("machine") or {}),
            git_sha=ctx.get("git_sha", ""))
        store.append(record, tenant=job.tenant)
        payload["run_id"] = record.run_id
    return payload


def _run_tune(job: Job, manifest: WorkloadManifest,
              store: PerfStore | None, ctx: Mapping) -> dict:
    from ..tuning import Budget, RandomSearch, tune_variant

    variant = REGISTRY.get(manifest.kernel, manifest.variant)
    if not variant.is_tunable:
        raise RunnerError(f"{manifest.slug} declares no tunables; "
                          "nothing to tune")
    max_evals = int(manifest.tune.get("max_evaluations", 8))
    seed = int(manifest.tune.get("seed", 0))
    result = tune_variant(
        variant, lambda config: build_operands(manifest),
        RandomSearch(seed=seed, max_samples=max_evals),
        budget=Budget(max_evaluations=max_evals),
        warmup=manifest.warmup, repetitions=manifest.repetitions,
        adaptive=manifest.adaptive, rel_ci=manifest.rel_ci)
    best = result.best
    payload = {
        "kernel": manifest.slug,
        "best_config": dict(sorted(best.config.items())),
        "best_seconds": best.seconds,
        "measurements": result.measurements,
        "evaluations": len(result.history),
    }
    if store is not None:
        record = RunRecord.new(
            {f"service/{manifest.name}/tuned": [best.seconds]},
            label=f"service:{job.tenant}:{job.kind}",
            machine=dict(ctx.get("machine") or {}),
            git_sha=ctx.get("git_sha", ""))
        store.append(record, tenant=job.tenant)
        payload["run_id"] = record.run_id
    return payload


def _run_analyze(job: Job, manifest: WorkloadManifest,
                 store: PerfStore | None, ctx: Mapping) -> dict:
    from ..analyze.hazards import hazards_variant
    from ..analyze.lint import lint_variant

    variant = REGISTRY.get(manifest.kernel, manifest.variant)
    findings = lint_variant(variant) + hazards_variant(variant)
    return {
        "kernel": manifest.slug,
        "findings": [
            {"rule": f.rule, "slug": f.slug, "severity": f.severity,
             "message": f.message, "lineno": f.lineno, "col": f.col,
             "end_lineno": f.end_lineno, "source": f.source}
            for f in findings],
        "gating": sum(1 for f in findings if f.gating),
    }


def _run_synthetic(job: Job, manifest: WorkloadManifest,
                   store: PerfStore | None, ctx: Mapping) -> dict:
    seconds = float(job.params.get("service_seconds",
                                   manifest.args.get("seconds", 0.005)))
    if seconds < 0 or seconds > 60:
        raise RunnerError(f"synthetic service demand {seconds}s out of range")
    # sleep releases the GIL, so c workers really are c parallel servers —
    # the property the M/M/c self-model check depends on
    time.sleep(seconds)
    return {"kernel": manifest.slug, "slept_seconds": seconds}


def _run_report(job: Job, manifest: WorkloadManifest,
                store: PerfStore | None, ctx: Mapping) -> dict:
    from ..report import build_report

    if store is None:
        raise RunnerError("report jobs need a perfdb store; the engine "
                          "was started without one")
    now = job.params.get("now")
    html = build_report(
        store, tenant=job.tenant,
        include_roofline=bool(job.params.get("roofline", True)),
        include_analyze=bool(job.params.get("analyze", True)),
        width=int(job.params.get("width", 24)),
        title=f"repro run report — tenant {job.tenant}",
        now=None if now is None else float(now))
    return {
        "kernel": manifest.slug,
        "tenant": job.tenant,
        "shard_runs": len(store.runs(tenant=job.tenant)),
        "bytes": len(html),
        "report_html": html,
    }


_EXECUTORS = {
    "benchmark": _run_benchmark,
    "tune": _run_tune,
    "analyze": _run_analyze,
    "synthetic": _run_synthetic,
    "report": _run_report,
}


def execute(job: Job, store: PerfStore | None = None,
            ctx: Mapping | None = None) -> dict:
    """Run one job to completion; returns its result payload.

    ``ctx`` carries run provenance the engine computed once at startup
    (``machine`` fingerprint, ``git_sha``) so per-job execution never
    pays for a calibration probe or a git subprocess, plus the engine's
    ``metrics`` registry (``service.backend_runs.<name>`` counters prove
    which execution backend a job ran on).  Raises
    :class:`RunnerError` (or lets kernel/validation errors propagate) —
    the engine converts any exception into state ``failed`` with the
    message as the job's ``error``.
    """
    return _EXECUTORS[job.kind](job, job.manifest, store, ctx or {})
