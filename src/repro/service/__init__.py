"""Benchmark-as-a-service: the toolbox's measure→model→tune loop, served.

The paper's methodology is a loop students run by hand; this package
runs it for many concurrent tenants over an HTTP + JSON API (stdlib
only — no new dependencies):

==============================  ==========================================
:mod:`repro.service.manifest`   declarative per-workload manifests
                                validated against the kernel registry —
                                registering a workload is writing data
:mod:`repro.service.jobs`       the job model and its state machine
                                (queued/running/done/failed/cancelled)
:mod:`repro.service.quota`      per-tenant token buckets + queue
                                backpressure with honest ``Retry-After``
:mod:`repro.service.engine`     worker pool over a priority queue, with
                                result caching keyed on (manifest hash,
                                machine fingerprint) and coalescing of
                                identical queued jobs
:mod:`repro.service.runner`     manifest → execution: benchmark/tune/
                                analyze jobs over the existing stacks,
                                recorded to per-tenant perfdb shards
:mod:`repro.service.httpd`      stdlib ThreadingHTTPServer front end,
                                job-state streaming as NDJSON
:mod:`repro.service.client`     HTTP client + seeded open-loop Poisson
                                load generator
:mod:`repro.service.selfmodel`  the service validated against its own
                                M/M/c model (repro.queueing serves *and*
                                models)
==============================  ==========================================

Quickstart::

    python -m repro.service serve --port 8642 --workers 4

    curl -s localhost:8642/manifests | python -m json.tool
    curl -s -X POST localhost:8642/jobs \
         -d '{"manifest": "matmul-small", "kind": "benchmark"}'
"""

from .client import DriveResult, PoissonClient, ServiceClient, ServiceUnavailable
from .engine import JobEngine, machine_cache_key
from .httpd import ServiceServer, start_server
from .jobs import AdmissionError, Job, JobState
from .manifest import (
    ManifestError,
    ManifestRegistry,
    WorkloadManifest,
    builtin_manifests,
)
from .quota import AdmissionController, TokenBucket
from .selfmodel import SelfModelReport, self_model_check

__all__ = [
    "WorkloadManifest",
    "ManifestRegistry",
    "ManifestError",
    "builtin_manifests",
    "Job",
    "JobState",
    "AdmissionError",
    "TokenBucket",
    "AdmissionController",
    "JobEngine",
    "machine_cache_key",
    "ServiceServer",
    "start_server",
    "ServiceClient",
    "ServiceUnavailable",
    "PoissonClient",
    "DriveResult",
    "SelfModelReport",
    "self_model_check",
]
