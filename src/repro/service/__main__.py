"""``python -m repro.service`` — serve, submit, plan, selfcheck.

``serve``      boot the job engine + HTTP server (Ctrl-C to stop)
``submit``     submit one job to a running service and wait for it
``plan``       M/M/c capacity planning: workers needed for a target wait
``selfcheck``  boot an ephemeral service, drive it with the seeded
               Poisson client, and gate measured mean wait against the
               M/M/c prediction (exit 1 outside tolerance) — the CI
               smoke entry point
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..perfdb.store import PerfStore
from ..queueing.models import capacity_for, mmc
from .client import ServiceClient
from .engine import JobEngine
from .httpd import start_server
from .manifest import ManifestRegistry
from .quota import AdmissionController
from .selfmodel import self_model_check

__all__ = ["main"]


def _build_engine(args) -> JobEngine:
    manifests = ManifestRegistry()
    if args.manifest_dir:
        manifests.load_dir(args.manifest_dir)
    admission = AdmissionController(
        max_queue_depth=args.max_queue,
        tenant_rate=args.quota_rate, tenant_burst=args.quota_burst)
    store = None if args.no_store else PerfStore(args.store)
    return JobEngine(store=store, manifests=manifests, workers=args.workers,
                     admission=admission)


def _cmd_serve(args) -> int:
    engine = _build_engine(args)
    server, _ = start_server(engine, host=args.host, port=args.port,
                             quiet=not args.verbose)
    host, port = server.server_address[:2]
    print(f"repro.service: listening on http://{host}:{port} "
          f"({args.workers} worker(s), "
          f"{len(engine.manifests)} manifest(s), "
          f"store={'off' if args.no_store else args.store})")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("repro.service: shutting down")
        server.shutdown()
        engine.shutdown()
    return 0


def _cmd_submit(args) -> int:
    client = ServiceClient(args.host, args.port)
    doc = client.submit(args.manifest, kind=args.kind, tenant=args.tenant,
                        priority=args.priority)
    print(f"submitted {doc['job_id']} ({doc['state']})")
    final = client.wait(doc["job_id"], timeout=args.timeout)
    print(json.dumps(final, indent=2, sort_keys=True))
    return 0 if final["state"] == "done" else 1


def _cmd_plan(args) -> int:
    servers = capacity_for(args.rate, args.mu, target_wait=args.target_wait)
    metrics = mmc(args.rate, args.mu, servers)
    print(f"capacity_for(lambda={args.rate}/s, mu={args.mu}/s, "
          f"target_wait={args.target_wait}s) -> {servers} worker(s)")
    print(f"  at that size: {metrics.report()}")
    return 0


def _cmd_selfcheck(args) -> int:
    engine = JobEngine(store=None, workers=args.workers,
                       admission=AdmissionController(
                           max_queue_depth=args.max_queue,
                           tenant_rate=10 * args.rate,
                           tenant_burst=10 * args.rate))
    server, _ = start_server(engine, port=0)
    host, port = server.server_address[:2]
    print(f"selfcheck: ephemeral service on port {port}, "
          f"lambda={args.rate}/s mu={args.mu}/s c={args.workers} "
          f"jobs={args.jobs} seed={args.seed}")
    try:
        report = self_model_check(
            ServiceClient(host, port), rate=args.rate,
            service_rate=args.mu, jobs=args.jobs, workers=args.workers,
            seed=args.seed)
    finally:
        server.shutdown()
        engine.shutdown()
    print(report.report())
    if not report.within(args.tolerance):
        print(f"selfcheck: FAIL — |error| exceeds {args.tolerance:.0%}")
        return 1
    print(f"selfcheck: OK (within {args.tolerance:.0%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Benchmark-as-a-service over the repro toolbox")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--store", default=None,
                       help="perfdb directory (default: .perfdb / REPRO_PERFDB)")
    serve.add_argument("--no-store", action="store_true",
                       help="do not record runs to a perfdb")
    serve.add_argument("--manifest-dir", default=None,
                       help="directory of *.json manifests to preload")
    serve.add_argument("--max-queue", type=int, default=64)
    serve.add_argument("--quota-rate", type=float, default=50.0,
                       help="per-tenant admitted jobs/second")
    serve.add_argument("--quota-burst", type=float, default=100.0)
    serve.add_argument("--verbose", action="store_true")
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser("submit", help="submit one job and wait")
    submit.add_argument("manifest")
    submit.add_argument("--kind", default="benchmark",
                        choices=("benchmark", "tune", "analyze"))
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8642)
    submit.add_argument("--tenant", default="cli")
    submit.add_argument("--priority", type=int, default=5)
    submit.add_argument("--timeout", type=float, default=120.0)
    submit.set_defaults(fn=_cmd_submit)

    plan = sub.add_parser("plan", help="M/M/c worker-count planning")
    plan.add_argument("--rate", type=float, required=True,
                      help="offered arrival rate lambda (jobs/s)")
    plan.add_argument("--mu", type=float, required=True,
                      help="per-worker service rate (jobs/s)")
    plan.add_argument("--target-wait", type=float, default=None,
                      help="mean queueing delay target (seconds)")
    plan.set_defaults(fn=_cmd_plan)

    selfcheck = sub.add_parser(
        "selfcheck", help="validate the service against its M/M/c model")
    selfcheck.add_argument("--rate", type=float, default=60.0)
    selfcheck.add_argument("--mu", type=float, default=50.0)
    selfcheck.add_argument("--workers", type=int, default=2)
    selfcheck.add_argument("--jobs", type=int, default=400)
    selfcheck.add_argument("--seed", type=int, default=0)
    selfcheck.add_argument("--max-queue", type=int, default=512)
    selfcheck.add_argument("--tolerance", type=float, default=0.3)
    selfcheck.set_defaults(fn=_cmd_selfcheck)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
