"""HTTP + JSON front end over :class:`~repro.service.engine.JobEngine`.

Pure stdlib (``http.server.ThreadingHTTPServer``) — the service adds no
dependencies.  Routes:

====== ============================ ==========================================
GET    ``/healthz``                 liveness + queue depth
GET    ``/stats``                   engine stats, metrics snapshot, store health
GET    ``/metrics``                 MetricsRegistry snapshot alone (live
                                    queue-depth/cache-hit/shed instruments)
GET    ``/manifests``               registered manifest names + documents
POST   ``/manifests``               register a manifest (``?replace=1`` to update)
GET    ``/manifests/<name>``        one manifest document
POST   ``/jobs``                    submit ``{"manifest", "kind", "tenant",
                                    "priority", "params"}`` → job doc (202;
                                    200 when served from cache; 429 +
                                    ``Retry-After`` when shed)
GET    ``/jobs``                    job summaries (``?tenant=`` filter)
GET    ``/jobs/<id>``               job doc (``?wait=<seconds>`` long-polls
                                    until terminal)
GET    ``/jobs/<id>/events``        NDJSON stream: one job doc per state
                                    change, closing at the terminal state
DELETE ``/jobs/<id>``               cancel a queued job
====== ============================ ==========================================

Every response body is JSON (one JSON document per line for the event
stream).  Errors are ``{"error": ...}`` with an appropriate status.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .engine import JobEngine
from .jobs import AdmissionError
from .manifest import ManifestError, WorkloadManifest

__all__ = ["ServiceServer", "ServiceHandler", "start_server"]

_MAX_BODY = 1 << 20  # 1 MiB of JSON is plenty for a manifest


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the engine for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, engine: JobEngine, quiet: bool = True):
        self.engine = engine
        self.quiet = quiet
        super().__init__(address, ServiceHandler)


class ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceServer

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib hook name
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _send_json(self, status: int, doc: dict,
                   headers: dict | None = None) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: dict | None = None) -> None:
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        if length > _MAX_BODY:
            raise ValueError(f"body too large ({length} bytes)")
        doc = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("body must be a JSON object")
        return doc

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib hook name
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        engine = self.server.engine
        try:
            if parts == ["healthz"]:
                stats = engine.stats()
                self._send_json(200, {"ok": True,
                                      "workers": stats["workers"],
                                      "queue_depth": stats["queue_depth"]})
            elif parts == ["stats"]:
                self._send_json(200, engine.stats())
            elif parts == ["metrics"]:
                self._send_json(200, engine.metrics.snapshot())
            elif parts == ["manifests"]:
                docs = {name: engine.manifests.get(name).to_dict()
                        for name in engine.manifests.names()}
                self._send_json(200, {"manifests": docs})
            elif len(parts) == 2 and parts[0] == "manifests":
                try:
                    self._send_json(
                        200, engine.manifests.get(parts[1]).to_dict())
                except KeyError:
                    self._error(404, f"no manifest {parts[1]!r}")
            elif parts == ["jobs"]:
                tenant = query.get("tenant", [None])[0]
                self._send_json(200, {"jobs": [
                    j.to_dict() for j in engine.jobs(tenant)]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1], query)
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "events":
                self._stream_events(parts[1])
            else:
                self._error(404, f"no route GET {url.path}")
        except BrokenPipeError:  # client went away mid-stream
            pass

    def _get_job(self, job_id: str, query: dict) -> None:
        engine = self.server.engine
        try:
            engine.job(job_id)
        except KeyError:
            self._error(404, f"no job {job_id!r}")
            return
        wait = query.get("wait", [None])[0]
        if wait is not None:
            job = engine.wait_for(job_id, timeout=min(float(wait), 120.0))
        else:
            job = engine.job(job_id)
        self._send_json(200, job.to_dict())

    def _stream_events(self, job_id: str) -> None:
        """One JSON line per state change until the job is terminal."""
        engine = self.server.engine
        try:
            job = engine.job(job_id)
        except KeyError:
            self._error(404, f"no job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(doc: dict) -> None:
            data = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            self.wfile.flush()

        version = -1
        while True:
            job = engine.wait_version(job_id, version, timeout=30.0)
            with engine.changed:
                doc, version, terminal = job.to_dict(), job.version, job.terminal
            write_chunk(doc)
            if terminal:
                break
        self.wfile.write(b"0\r\n\r\n")

    def do_POST(self) -> None:  # noqa: N802 - stdlib hook name
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"bad request body: {exc}")
            return
        if parts == ["jobs"]:
            self._submit_job(body)
        elif parts == ["manifests"]:
            self._register_manifest(body,
                                    replace="1" in query.get("replace", []))
        else:
            self._error(404, f"no route POST {url.path}")

    def _register_manifest(self, body: dict, replace: bool) -> None:
        engine = self.server.engine
        try:
            manifest = WorkloadManifest.from_dict(body)
            engine.manifests.register(manifest, replace=replace)
        except ManifestError as exc:
            status = 409 if "already registered" in str(exc) else 400
            self._error(status, str(exc))
            return
        self._send_json(201, manifest.to_dict())

    def _submit_job(self, body: dict) -> None:
        engine = self.server.engine
        ref = body.get("manifest")
        if ref is None:
            self._error(400, "submission needs a 'manifest' (name or document)")
            return
        try:
            job = engine.submit(
                ref,
                kind=str(body.get("kind", "benchmark")),
                tenant=str(body.get("tenant", "default")),
                priority=int(body.get("priority", 5)),
                params=body.get("params") or {})
        except AdmissionError as exc:
            self._error(429, exc.reason,
                        headers={"Retry-After": f"{exc.retry_after:.3f}"})
            return
        except KeyError as exc:
            self._error(404, str(exc))
            return
        except (ManifestError, ValueError, TypeError) as exc:
            self._error(400, str(exc))
            return
        self._send_json(200 if job.cached else 202, job.to_dict())

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib hook name
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, f"no route DELETE {self.path}")
            return
        engine = self.server.engine
        try:
            job = engine.cancel(parts[1])
        except KeyError:
            self._error(404, f"no job {parts[1]!r}")
            return
        except ValueError as exc:
            self._error(409, str(exc))
            return
        self._send_json(200, job.to_dict())


def start_server(engine: JobEngine, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True) -> tuple[ServiceServer, threading.Thread]:
    """Start the engine and serve it on a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — what the tests and the CI smoke job use.
    """
    engine.start()
    server = ServiceServer((host, port), engine, quiet=quiet)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-http", daemon=True)
    thread.start()
    return server, thread
