"""The async job engine: worker pool, priority queue, cache, coalescing.

The serving core.  Submissions pass admission control (token buckets +
queue backpressure, :mod:`repro.service.quota`), then resolve against the
result cache and the in-flight table before they ever cost a worker:

* **cache hit** — a completed result exists for the job's cache key
  ``(manifest hash ⊕ kind ⊕ params, machine fingerprint)``: the job is
  marked done immediately, zero queueing;
* **coalesce** — an identical job is already queued or running: the new
  job joins its *group* and the single execution fans its result out to
  every member (one execution per distinct manifest, however many
  tenants ask);
* **cold** — the job starts a new group and enters the priority queue
  (min-heap on ``(priority, seq)``, so FIFO within a priority class).

Worker threads pop groups, execute via :mod:`repro.service.runner` under
a ``service.job`` span, and publish results under the engine condition
variable that the HTTP event stream waits on.  Everything observable
about the engine — submissions, sheds, cache hits, coalesced jobs, wait
and service time distributions, queue depth — goes through
:mod:`repro.observe` counters/histograms/gauges, which is also how the
acceptance check verifies cache behaviour.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from typing import Mapping

from ..observe import get_tracer
from ..observe.metrics import METRICS, MetricsRegistry
from ..perfdb.store import PerfStore
from . import runner
from .jobs import AdmissionError, Job, JobState
from .manifest import ManifestRegistry, WorkloadManifest, builtin_manifests
from .quota import AdmissionController

__all__ = ["JobEngine", "machine_cache_key"]


def machine_cache_key() -> str:
    """Stable fingerprint of *this* machine for result-cache keying.

    Hashes the runtime facts of the perfdb fingerprint (host, platform,
    interpreter, library versions, core count) but not the calibration
    probe — the cache must not miss because the machine was warm.
    """
    from ..perfdb.record import machine_fingerprint

    fp = machine_fingerprint(calibrate=False)
    doc = json.dumps(fp, sort_keys=True, default=str)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


class _Group:
    """Jobs coalesced onto one execution (first member is the leader)."""

    __slots__ = ("key", "jobs")

    def __init__(self, key: str, leader: Job):
        self.key = key
        self.jobs = [leader]


class JobEngine:
    """Schedules, executes, caches, and reports benchmark service jobs."""

    def __init__(self,
                 store: PerfStore | None = None,
                 manifests: ManifestRegistry | None = None,
                 workers: int = 2,
                 admission: AdmissionController | None = None,
                 metrics: MetricsRegistry | None = None,
                 with_builtins: bool = True):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.store = store
        self.manifests = manifests or ManifestRegistry()
        if with_builtins:
            for m in builtin_manifests():
                if m.name not in self.manifests:
                    self.manifests.register(m)
        self.workers = workers
        self.admission = admission or AdmissionController()
        self.metrics = metrics if metrics is not None else METRICS
        # Pre-register the live-surface instruments so `/metrics` exposes
        # them (at zero) from the first request, before any submission —
        # and so `/stats` and `/metrics` agree on queue depth from boot.
        self.metrics.gauge("service.queue_depth").set(0)
        self.metrics.counter("service.cache_hits")
        self.metrics.counter("service.shed_total")
        self.machine_key = machine_cache_key()
        from ..perfdb.record import current_git_sha, machine_fingerprint
        self._run_ctx = {"machine": machine_fingerprint(calibrate=False),
                         "git_sha": current_git_sha(),
                         "metrics": self.metrics}

        self._lock = threading.Lock()
        #: State changes notify here; HTTP event streams wait on it.
        self.changed = threading.Condition(self._lock)
        self._queue: list[tuple[int, int, str]] = []  # (priority, seq, key)
        self._groups: dict[str, _Group] = {}          # queued or running
        self._jobs: dict[str, Job] = {}
        self._cache: dict[str, dict] = {}
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._busy_seconds = 0.0
        self._started_at: float | None = None
        self._service_ewma: float | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JobEngine":
        """Spin up the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stopping = False
            self._started_at = time.monotonic()
        for i in range(self.workers):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-service-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        with self.changed:
            self._stopping = True
            self.changed.notify_all()
        if wait:
            for t in self._threads:
                t.join(timeout=timeout)
        self._threads.clear()
        with self._lock:
            self._started = False

    def __enter__(self) -> "JobEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------

    def _resolve_manifest(self, manifest) -> WorkloadManifest:
        if isinstance(manifest, WorkloadManifest):
            return manifest.validate()
        if isinstance(manifest, str):
            return self.manifests.get(manifest)
        if isinstance(manifest, Mapping):
            return WorkloadManifest.from_dict(manifest).validate()
        raise TypeError(f"cannot resolve manifest from {type(manifest)}")

    def _cache_key(self, job: Job) -> str:
        doc = json.dumps({"manifest": job.manifest.to_dict(),
                          "kind": job.kind, "params": job.params},
                         sort_keys=True, separators=(",", ":"))
        content = hashlib.sha256(doc.encode("utf-8")).hexdigest()[:32]
        return f"{content}@{self.machine_key}"

    @property
    def _drain_rate(self) -> float | None:
        if self._service_ewma is None or self._service_ewma <= 0:
            return None
        return self.workers / self._service_ewma

    def submit(self, manifest, kind: str = "benchmark", *,
               tenant: str = "default", priority: int = 5,
               params: Mapping[str, object] | None = None,
               now: float | None = None) -> Job:
        """Admit one job; may be shed (:class:`AdmissionError`), served
        from cache, coalesced onto an identical in-flight job, or queued.
        """
        m = self._resolve_manifest(manifest)
        job = Job(m, kind, tenant=tenant, priority=priority, params=params)
        tracer = get_tracer()
        with self.changed:
            admitted, reason, retry_after = self.admission.admit(
                tenant, len(self._queue), self._drain_rate, now)
            if not admitted:
                self.metrics.counter("service.jobs_shed").inc()
                # same event under the stable dashboard name the /metrics
                # surface documents (jobs_shed predates it; both stay)
                self.metrics.counter("service.shed_total").inc()
                tracer.count("service.jobs_shed_traced")
                raise AdmissionError(reason, retry_after)
            self.metrics.counter("service.jobs_submitted").inc()
            self._jobs[job.job_id] = job
            if m.cacheable:
                key = self._cache_key(job)
                job.cache_key = key
                hit = self._cache.get(key)
                if hit is not None:
                    now_t = time.time()
                    job.started = job.finished = now_t
                    job.result = dict(hit)
                    job.cached = True
                    job.transition(JobState.DONE)
                    self.metrics.counter("service.cache_hits").inc()
                    self.changed.notify_all()
                    return job
                group = self._groups.get(key)
                if group is not None:
                    group.jobs.append(job)
                    job.coalesced_with = group.jobs[0].job_id
                    self.metrics.counter("service.jobs_coalesced").inc()
                    self.changed.notify_all()
                    return job
            else:
                key = f"job:{job.job_id}"  # unique: never cached or coalesced
                job.cache_key = key
            self._groups[key] = _Group(key, job)
            heapq.heappush(self._queue, (job.priority, job.seq, key))
            self.metrics.gauge("service.queue_depth").set(len(self._queue))
            self.changed.notify_all()
        return job

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"no job {job_id!r}") from None

    def jobs(self, tenant: str | None = None) -> list[Job]:
        with self._lock:
            out = [j for j in self._jobs.values()
                   if tenant is None or j.tenant == tenant]
        return sorted(out, key=lambda j: j.seq)

    def wait_for(self, job_id: str, timeout: float = 30.0) -> Job:
        """Block until the job is terminal (or timeout); returns it."""
        deadline = time.monotonic() + timeout
        with self.changed:
            job = self._jobs[job_id]
            while not job.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.changed.wait(timeout=remaining):
                    break
        return job

    def wait_version(self, job_id: str, version: int,
                     timeout: float = 30.0) -> Job:
        """Block until the job's version exceeds ``version`` (event stream)."""
        deadline = time.monotonic() + timeout
        with self.changed:
            job = self._jobs[job_id]
            while job.version <= version and not job.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.changed.wait(timeout=remaining):
                    break
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running jobs run to completion)."""
        with self.changed:
            job = self._jobs[job_id]
            if job.terminal:
                return job
            if job.state == JobState.RUNNING:
                raise ValueError(f"job {job_id} is running; cannot cancel")
            job.transition(JobState.CANCELLED)
            job.finished = time.time()
            # drop it from its group; an empty group is skipped at pop time
            group = self._groups.get(job.cache_key or "")
            if group is not None and job in group.jobs:
                group.jobs.remove(job)
            self.metrics.counter("service.jobs_cancelled").inc()
            self.changed.notify_all()
        return job

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {s: 0 for s in JobState.ALL}
            for j in self._jobs.values():
                states[j.state] += 1
            elapsed = (time.monotonic() - self._started_at) \
                if self._started_at else 0.0
            utilization = (self._busy_seconds / (self.workers * elapsed)) \
                if elapsed > 0 else 0.0
            doc = {
                "workers": self.workers,
                "started": self._started,
                "queue_depth": len(self._queue),
                "states": states,
                "cache_entries": len(self._cache),
                "utilization": utilization,
                "service_seconds_ewma": self._service_ewma,
                "manifests": self.manifests.names(),
            }
        doc["metrics"] = self.metrics.snapshot()
        if self.store is not None:
            doc["store"] = {"root": str(self.store.root),
                            "tenants": self.store.tenants(),
                            "shard_files": len(self.store.shard_files()),
                            "corrupt_lines": self.store.corrupt_lines}
        return doc

    # -- execution -----------------------------------------------------------

    def _pop_group(self) -> _Group | None:
        """Next non-empty group, or None when stopping (holds the lock)."""
        with self.changed:
            while True:
                while self._queue:
                    _, _, key = heapq.heappop(self._queue)
                    self.metrics.gauge("service.queue_depth").set(
                        len(self._queue))
                    group = self._groups.get(key)
                    if group is None or not group.jobs:
                        self._groups.pop(key, None)  # fully cancelled
                        continue
                    now = time.time()
                    for job in group.jobs:
                        job.started = now
                        job.transition(JobState.RUNNING)
                        wait = job.wait_seconds
                        if wait is not None:
                            self.metrics.histogram(
                                "service.wait_seconds").observe(wait)
                    self.changed.notify_all()
                    return group
                if self._stopping:
                    return None
                self.changed.wait(timeout=0.5)

    def _worker_loop(self) -> None:
        while True:
            group = self._pop_group()
            if group is None:
                return
            leader = group.jobs[0]
            tracer = get_tracer()
            t0 = time.monotonic()
            try:
                with tracer.span("service.job", category="service",
                                 kind=leader.kind,
                                 manifest=leader.manifest.name,
                                 tenant=leader.tenant):
                    result = runner.execute(leader, self.store, self._run_ctx)
                error = None
            except Exception as exc:  # noqa: BLE001 - jobs report, not crash
                result, error = None, f"{type(exc).__name__}: {exc}"
            seconds = time.monotonic() - t0
            with self.changed:
                self._busy_seconds += seconds
                self._service_ewma = seconds if self._service_ewma is None \
                    else 0.8 * self._service_ewma + 0.2 * seconds
                self.metrics.histogram("service.service_seconds").observe(
                    seconds)
                now = time.time()
                # late joiners may have coalesced while we were running
                members = [j for j in self._groups.pop(group.key, group).jobs
                           if not j.terminal]
                for job in members:
                    job.finished = now
                    if error is None:
                        job.result = dict(result)
                        job.transition(JobState.DONE)
                    else:
                        job.error = error
                        job.transition(JobState.FAILED)
                if error is None:
                    self.metrics.counter("service.jobs_executed").inc()
                    self.metrics.counter("service.jobs_completed").inc(
                        len(members))
                    if leader.manifest.cacheable and leader.cache_key:
                        self._cache[leader.cache_key] = dict(result)
                else:
                    self.metrics.counter("service.jobs_failed").inc(
                        len(members))
                self.changed.notify_all()
