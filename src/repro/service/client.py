"""Stdlib HTTP client and the seeded open-loop load generator.

:class:`ServiceClient` is a thin ``http.client`` wrapper (one connection
per call — boring and thread-safe).  :class:`PoissonClient` is the
synthetic tenant the self-model check drives the service with: an
**open-loop** arrival process (submissions at seeded exponential
inter-arrival times, never waiting for completions — the arrival law the
M/M/c formulas assume) whose jobs carry seeded exponential service
demands.  Shed submissions (HTTP 429) are recorded, honouring nothing:
an open-loop source does not slow down because the server is full —
that is exactly the regime admission control exists for.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = ["ServiceClient", "ServiceUnavailable", "PoissonClient",
           "DriveResult"]


class ServiceUnavailable(RuntimeError):
    """The service shed the request (HTTP 429)."""

    def __init__(self, reason: str, retry_after: float):
        super().__init__(reason)
        self.retry_after = retry_after


class ServiceClient:
    """JSON-over-HTTP client for one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict, dict]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            doc = json.loads(raw) if raw else {}
            return resp.status, doc, dict(resp.getheaders())
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        status, doc, headers = self._request(method, path, body)
        if status == 429:
            raise ServiceUnavailable(
                doc.get("error", "shed"),
                float(headers.get("Retry-After", 1.0)))
        if status >= 400:
            raise RuntimeError(
                f"{method} {path} -> {status}: {doc.get('error', doc)}")
        return doc

    # -- API surface ---------------------------------------------------------

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def metrics(self) -> dict:
        """The live MetricsRegistry snapshot (``GET /metrics``)."""
        return self._checked("GET", "/metrics")

    def manifests(self) -> dict:
        return self._checked("GET", "/manifests")["manifests"]

    def register_manifest(self, doc: dict, replace: bool = False) -> dict:
        path = "/manifests" + ("?replace=1" if replace else "")
        return self._checked("POST", path, doc)

    def submit(self, manifest, kind: str = "benchmark",
               tenant: str = "default", priority: int = 5,
               params: dict | None = None) -> dict:
        return self._checked("POST", "/jobs", {
            "manifest": manifest, "kind": kind, "tenant": tenant,
            "priority": priority, "params": params or {}})

    def job(self, job_id: str, wait: float | None = None) -> dict:
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._checked("GET", path)

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._checked("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._checked("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 5.0) -> dict:
        """Long-poll until the job is terminal; returns the final doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id, wait=min(poll, timeout))
            if doc["state"] in ("done", "failed", "cancelled") \
                    or time.monotonic() >= deadline:
                return doc


@dataclass
class DriveResult:
    """What one open-loop drive produced."""

    submitted: list[str] = field(default_factory=list)  # admitted job ids
    shed: int = 0
    arrivals: list[float] = field(default_factory=list)  # admit wall times
    demands: list[float] = field(default_factory=list)   # drawn service secs

    @property
    def measured_arrival_rate(self) -> float:
        """λ̂ of *admitted* jobs, from first to last admission stamp."""
        if len(self.arrivals) < 2:
            return 0.0
        span = self.arrivals[-1] - self.arrivals[0]
        return (len(self.arrivals) - 1) / span if span > 0 else 0.0


class PoissonClient:
    """Seeded open-loop Poisson tenant submitting synthetic sleep jobs."""

    def __init__(self, client: ServiceClient, *, rate: float,
                 service_rate: float, jobs: int, seed: int = 0,
                 tenant: str = "poisson",
                 manifest: str = "synthetic-sleep",
                 max_demand: float = 0.5):
        if rate <= 0 or service_rate <= 0 or jobs < 1:
            raise ValueError("need positive rate, service_rate, and jobs")
        self.client = client
        self.rate = float(rate)
        self.service_rate = float(service_rate)
        self.jobs = int(jobs)
        self.seed = int(seed)
        self.tenant = tenant
        self.manifest = manifest
        #: Exponential draws are clipped here so one tail sample cannot
        #: stall a CI smoke run; the clip is far out enough (many means)
        #: not to disturb the measured-vs-modeled comparison.
        self.max_demand = float(max_demand)

    def _fire(self, demand: float, result: DriveResult,
              lock: threading.Lock) -> None:
        try:
            doc = self.client.submit(
                self.manifest, kind="synthetic", tenant=self.tenant,
                params={"service_seconds": demand})
        except ServiceUnavailable:
            with lock:
                result.shed += 1
            return
        with lock:
            result.submitted.append(doc["job_id"])
            result.arrivals.append(doc["submitted"])
            result.demands.append(demand)

    def run(self) -> DriveResult:
        rng = random.Random(self.seed)
        result = DriveResult()
        lock = threading.Lock()
        threads: list[threading.Thread] = []
        # Absolute schedule: arrival k fires at t0 + sum of k exponential
        # gaps, each submission in its own short-lived thread.  A serial
        # submit loop cannot realize gaps shorter than one HTTP round
        # trip, which imposes a minimum inter-arrival spacing and
        # regularizes the process away from Poisson — exactly the bias
        # the self-model check exists to avoid.
        due = time.monotonic()
        for _ in range(self.jobs):
            due += rng.expovariate(self.rate)
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            demand = min(rng.expovariate(self.service_rate), self.max_demand)
            thread = threading.Thread(target=self._fire,
                                      args=(demand, result, lock))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        # admission stamps, not dispatch order, define the arrival process
        with lock:
            order = sorted(range(len(result.arrivals)),
                           key=result.arrivals.__getitem__)
            result.submitted = [result.submitted[i] for i in order]
            result.demands = [result.demands[i] for i in order]
            result.arrivals = sorted(result.arrivals)
        return result
