"""The ``tune()`` entry point: search, record, feed stage 5.

Ties the subsystem together and hooks it into the seven-stage process:

* :func:`space_for` turns a kernel variant's declared
  :class:`~repro.kernels.base.TunableParam` metadata into a
  :class:`~repro.tuning.space.SearchSpace`;
* :func:`tune` runs a strategy over a space through a budgeted harness
  and, when given an :class:`~repro.core.process.EngineeringProcess`,
  registers the winner as a stage-5 :class:`~repro.core.process.Attempt`
  (predicted time from the guide, measured time from the harness) — the
  tuning loop becomes a recorded, reproducible step of the methodology
  instead of an ad-hoc notebook sweep;
* :func:`tune_variant` is the one-call convenience for registered kernels:
  build the space from metadata, time the kernel with proper methodology,
  search.
"""

from __future__ import annotations

from typing import Callable, Mapping, MutableMapping, Sequence

from ..core.process import EngineeringProcess, ProcessError
from ..kernels.base import KernelVariant, TunableParam
from .guidance import ModelGuide
from .harness import (
    Budget,
    EvaluationHarness,
    TuningResult,
    adaptive_objective,
    timed_objective,
)
from .space import (
    ChoiceParam,
    Constraint,
    IntegerParam,
    Parameter,
    PowerOfTwoParam,
    SearchSpace,
)
from .strategies import SearchStrategy

__all__ = ["space_for", "tune", "tune_variant"]


def _warn_on_hazards(variant: KernelVariant) -> None:
    """Warn (never fail) when the static hazard pass flags the variant."""
    import warnings

    from ..analyze.hazards import hazards_variant
    from ..observe import get_tracer

    hazards = [f for f in hazards_variant(variant) if f.gating]
    if hazards:
        get_tracer().count("tuning.hazard_warnings", len(hazards))
        details = "; ".join(str(f) for f in hazards)
        warnings.warn(
            f"tuning {variant.qualified_name} with {len(hazards)} open "
            f"shared-memory hazard finding(s): {details}",
            RuntimeWarning, stacklevel=3)


def _as_parameter(t: TunableParam) -> Parameter:
    if t.kind == "int":
        return IntegerParam(t.name, low=t.low, high=t.high, step=t.step,
                            default_value=t.default)
    if t.kind == "pow2":
        return PowerOfTwoParam(t.name, low=t.low, high=t.high,
                               default_value=t.default)
    return ChoiceParam(t.name, choices=t.choices, default_value=t.default)


def space_for(variant: KernelVariant,
              constraints: Sequence[Constraint] = (),
              overrides: Mapping[str, Parameter] | None = None) -> SearchSpace:
    """Search space from a variant's declared tunables.

    ``overrides`` replaces the metadata-derived axis for a parameter (e.g.
    to clip the tile range to the current problem size); every override
    must name a declared tunable.
    """
    if not variant.is_tunable:
        raise ValueError(f"{variant.qualified_name} declares no tunables")
    overrides = dict(overrides or {})
    unknown = set(overrides) - {t.name for t in variant.tunables}
    if unknown:
        raise ValueError(f"{variant.qualified_name}: overrides for undeclared "
                         f"tunables {sorted(unknown)}")
    params = [overrides.get(t.name, _as_parameter(t)) for t in variant.tunables]
    return SearchSpace(params, constraints)


def tune(objective: Callable[[Mapping[str, object]], float],
         space: SearchSpace,
         strategy: SearchStrategy,
         *,
         kernel: str = "objective",
         problem: str = "",
         budget: Budget | None = None,
         guide: ModelGuide | None = None,
         cache: MutableMapping[tuple, float] | None = None,
         backend=None,
         process: EngineeringProcess | None = None,
         attempt_name: str | None = None) -> TuningResult:
    """Search ``space`` for the configuration minimizing ``objective``.

    Returns the full :class:`TuningResult` history.  With ``process``
    given (stages 1-4 already walked: requirement, baseline, feasibility),
    the winner is proposed and applied as one stage-5 attempt named
    ``attempt_name`` (default ``"autotune:<kernel>"``), carrying the
    guide's prediction for the winning configuration when a guide is
    attached — so the process report shows the tuner's model error like
    any other optimization attempt.

    ``backend`` (an :class:`~repro.parallel.backends.ExecutionBackend`,
    borrowed and left open) lets batching strategies measure independent
    configurations concurrently; for a deterministic objective the
    resulting history is byte-identical to the serial search under the
    same seed (see :meth:`EvaluationHarness.evaluate_many`).
    """
    if process is not None and process.feasibility is None:
        # fail before spending the measurement budget, not after
        raise ProcessError(
            "tune() needs a process past stage 3 (requirement, baseline, "
            "feasibility) so the winner can be proposed and applied")
    harness = EvaluationHarness(
        objective, kernel=kernel, problem=problem, budget=budget,
        cache=cache, predict=guide.predict if guide is not None else None,
        backend=backend)
    result = strategy.run(space, harness)
    if not result.history:
        raise RuntimeError(
            f"search of {kernel} produced no evaluations; widen the budget")
    if process is not None:
        best = result.best
        name = attempt_name or f"autotune:{kernel}"
        rationale = (f"{strategy.name} search over {space.size()} config(s), "
                     f"{result.measurements} measured, best {dict(sorted(best.config.items()))}")
        process.propose(name, rationale=rationale,
                        predicted_seconds=best.predicted_seconds)
        process.apply(name, measured_seconds=best.seconds)
    return result


def tune_variant(variant: KernelVariant,
                 setup: Callable[[Mapping[str, object]], tuple],
                 strategy: SearchStrategy,
                 *,
                 problem: str = "",
                 constraints: Sequence[Constraint] = (),
                 overrides: Mapping[str, Parameter] | None = None,
                 budget: Budget | None = None,
                 guide: ModelGuide | None = None,
                 cache: MutableMapping[tuple, float] | None = None,
                 backend=None,
                 process: EngineeringProcess | None = None,
                 warmup: int = 1,
                 repetitions: int = 3,
                 adaptive: bool = False,
                 rel_ci: float = 0.05) -> TuningResult:
    """Auto-tune a registered kernel variant end to end.

    ``setup(config)`` builds the positional arguments for one timed call
    (operands, grids, ...); the searched configuration is passed as keyword
    arguments — exactly the registry convention where tunables are keyword
    parameters of ``variant.fn``.

    With ``adaptive`` set, each evaluation samples through the sequential
    stopping rule (:func:`~repro.tuning.harness.adaptive_objective`):
    ``repetitions`` becomes the per-evaluation *cap* and stable
    configurations stop early once their median is pinned to within
    ``rel_ci`` — the repetition budget flows to the noisy contenders.

    Before searching, the variant's chunked workers are screened by the
    static hazard detector (:mod:`repro.analyze.hazards`); open
    error-severity findings raise a :class:`RuntimeWarning` — tuning a racy
    worker optimizes a kernel whose results are not trustworthy.
    """
    _warn_on_hazards(variant)
    space = space_for(variant, constraints=constraints, overrides=overrides)
    if adaptive:
        objective = adaptive_objective(
            variant.fn, setup, rel_ci=rel_ci,
            min_repetitions=min(3, repetitions), max_repetitions=repetitions,
            warmup=warmup)
    else:
        objective = timed_objective(variant.fn, setup,
                                    warmup=warmup, repetitions=repetitions)
    return tune(objective, space, strategy,
                kernel=variant.qualified_name, problem=problem,
                budget=budget, guide=guide, cache=cache, backend=backend,
                process=process,
                attempt_name=f"autotune:{variant.qualified_name}")
