"""Declarative search spaces for kernel auto-tuning.

A tuning run searches over *configurations*: assignments of values to named
tunable parameters (tile sizes, worker counts, variant choices).  This
module describes that space declaratively so that every strategy in
:mod:`repro.tuning.strategies` — and the cache in
:mod:`repro.tuning.harness` — sees the same deterministic enumeration:

* :class:`IntegerParam` — an inclusive integer range with a stride;
* :class:`PowerOfTwoParam` — powers of two between two bounds, the natural
  axis for tile/block sizes;
* :class:`ChoiceParam` — an explicit, ordered set of values (variant names,
  schedules, ...);
* :class:`Constraint` — a cross-parameter predicate such as "three tiles
  must fit in L1" (:func:`tiles_fit_cache`), pruning configurations that a
  machine model already rules out.

The space exposes exactly the hooks the strategies need: full enumeration
(grid), seeded sampling (random search, annealing starts), single-parameter
axes (coordinate descent), and adjacent neighbours (annealing moves).  All
orderings are deterministic — same space, same iteration order, every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "IntegerParam",
    "PowerOfTwoParam",
    "ChoiceParam",
    "Constraint",
    "SearchSpace",
    "tiles_fit_cache",
    "config_key",
]


@dataclass(frozen=True)
class Parameter:
    """Base class: a named, ordered, finite axis of the search space."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter needs a name")

    def values(self) -> tuple:
        """Ordered candidate values; subclasses must override."""
        raise NotImplementedError

    @property
    def default(self):
        """Default value; subclasses may override."""
        return self.values()[0]

    def __len__(self) -> int:
        return len(self.values())

    def index_of(self, value) -> int:
        """Position of ``value`` on this axis (ValueError when absent)."""
        vals = self.values()
        try:
            return vals.index(value)
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r}: {value!r} not among {vals}") from None


@dataclass(frozen=True)
class IntegerParam(Parameter):
    """Inclusive integer range ``low..high`` with stride ``step``."""

    low: int = 1
    high: int = 1
    step: int = 1
    default_value: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} exceeds high {self.high}")
        if self.step < 1:
            raise ValueError(f"{self.name}: step must be positive")
        if self.default_value is not None and self.default_value not in self.values():
            raise ValueError(f"{self.name}: default {self.default_value} not in range")

    def values(self) -> tuple:
        return tuple(range(self.low, self.high + 1, self.step))

    @property
    def default(self) -> int:
        return self.default_value if self.default_value is not None else self.low


@dataclass(frozen=True)
class PowerOfTwoParam(Parameter):
    """Powers of two in ``[low, high]`` — tile/block/worker axes."""

    low: int = 1
    high: int = 1
    default_value: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        for bound, label in ((self.low, "low"), (self.high, "high")):
            if bound < 1 or bound & (bound - 1):
                raise ValueError(f"{self.name}: {label} must be a positive power of two")
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} exceeds high {self.high}")
        if self.default_value is not None and self.default_value not in self.values():
            raise ValueError(f"{self.name}: default {self.default_value} not a "
                             f"power of two in range")

    def values(self) -> tuple:
        out = []
        v = self.low
        while v <= self.high:
            out.append(v)
            v *= 2
        return tuple(out)

    @property
    def default(self) -> int:
        return self.default_value if self.default_value is not None else self.low


@dataclass(frozen=True)
class ChoiceParam(Parameter):
    """Explicit ordered candidate values (variant names, schedules, ...)."""

    choices: tuple = ()
    default_value: object = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.choices:
            raise ValueError(f"{self.name}: needs at least one choice")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: duplicate choices")
        if self.default_value is not None and self.default_value not in self.choices:
            raise ValueError(f"{self.name}: default {self.default_value!r} not a choice")

    def values(self) -> tuple:
        return self.choices

    @property
    def default(self):
        return self.default_value if self.default_value is not None else self.choices[0]


@dataclass(frozen=True)
class Constraint:
    """A cross-parameter validity predicate with a human-readable reason.

    ``predicate`` receives the full configuration mapping and returns
    whether it is admissible.  Constraints encode machine knowledge — e.g.
    a tile working set bounded by a cache capacity from
    :class:`repro.machine.specs.CPUSpec` — so the search never measures
    configurations a model already rejects.
    """

    description: str
    predicate: Callable[[Mapping[str, object]], bool]

    def __call__(self, config: Mapping[str, object]) -> bool:
        return bool(self.predicate(config))


def tiles_fit_cache(capacity_bytes: float, param: str = "tile",
                    arrays: int = 3, dtype_bytes: int = 8) -> Constraint:
    """Constraint: ``arrays · tile² · dtype_bytes ≤ capacity_bytes``.

    The classic blocked-matmul admissibility condition (three ``tile×tile``
    operand blocks resident at once); pass ``machine.cache("L1")
    .capacity_bytes`` or an L2 capacity for coarser blocking.
    """
    if capacity_bytes <= 0:
        raise ValueError("cache capacity must be positive")

    def pred(config: Mapping[str, object]) -> bool:
        tile = int(config[param])
        return arrays * tile * tile * dtype_bytes <= capacity_bytes

    return Constraint(
        f"{arrays}*{param}^2*{dtype_bytes}B <= {capacity_bytes:g}B", pred)


def config_key(config: Mapping[str, object]) -> tuple:
    """Canonical hashable identity of a configuration (sorted items)."""
    return tuple(sorted(config.items(), key=lambda kv: kv[0]))


class SearchSpace:
    """A finite product of parameter axes filtered by constraints.

    Iteration order is deterministic: the cross product enumerates the
    *last* parameter fastest (odometer order), exactly like
    :func:`repro.timing.experiment.full_factorial`.
    """

    def __init__(self, parameters: Sequence[Parameter],
                 constraints: Sequence[Constraint] = ()):
        if not parameters:
            raise ValueError("search space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self.parameters = tuple(parameters)
        self.constraints = tuple(constraints)
        if not any(True for _ in self.configs()):
            raise ValueError("constraints leave no valid configuration")

    # -- queries ------------------------------------------------------------

    def parameter(self, name: str) -> Parameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(f"no parameter {name!r}; known: {[p.name for p in self.parameters]}")

    def is_valid(self, config: Mapping[str, object]) -> bool:
        """Is ``config`` on-axis for every parameter and constraint-clean?"""
        if sorted(config) != sorted(p.name for p in self.parameters):
            return False
        for p in self.parameters:
            if config[p.name] not in p.values():
                return False
        return all(c(config) for c in self.constraints)

    def configs(self) -> Iterator[dict]:
        """All valid configurations in deterministic odometer order."""
        import itertools

        axes = [p.values() for p in self.parameters]
        names = [p.name for p in self.parameters]
        for combo in itertools.product(*axes):
            cfg = dict(zip(names, combo))
            if all(c(cfg) for c in self.constraints):
                yield cfg

    def size(self) -> int:
        """Number of valid configurations (enumerates once)."""
        return sum(1 for _ in self.configs())

    def default_config(self) -> dict:
        """Per-parameter defaults, repaired to the nearest valid config.

        When constraints reject the raw defaults the first valid
        configuration in enumeration order is returned instead.
        """
        cfg = {p.name: p.default for p in self.parameters}
        if self.is_valid(cfg):
            return cfg
        return next(iter(self.configs()))

    # -- strategy hooks -----------------------------------------------------

    def sample(self, rng: np.random.Generator, max_tries: int = 1000) -> dict:
        """One valid configuration drawn uniformly per axis (rejection)."""
        for _ in range(max_tries):
            cfg = {p.name: p.values()[int(rng.integers(len(p)))]
                   for p in self.parameters}
            if all(c(cfg) for c in self.constraints):
                return cfg
        raise RuntimeError(
            f"could not sample a valid configuration in {max_tries} tries; "
            "constraints may be too tight")

    def axis(self, config: Mapping[str, object], name: str) -> list[dict]:
        """Valid configs varying ``name`` over its axis, others fixed.

        The coordinate-descent sweep: includes ``config`` itself when valid.
        """
        param = self.parameter(name)
        out = []
        for value in param.values():
            cfg = dict(config)
            cfg[name] = value
            if all(c(cfg) for c in self.constraints):
                out.append(cfg)
        return out

    def neighbors(self, config: Mapping[str, object]) -> list[dict]:
        """Valid configs one axis-step away in any single parameter."""
        out = []
        for p in self.parameters:
            vals = p.values()
            i = p.index_of(config[p.name])
            for j in (i - 1, i + 1):
                if 0 <= j < len(vals):
                    cfg = dict(config)
                    cfg[p.name] = vals[j]
                    if all(c(cfg) for c in self.constraints):
                        out.append(cfg)
        return out

    def __repr__(self) -> str:
        axes = ", ".join(f"{p.name}[{len(p)}]" for p in self.parameters)
        return f"SearchSpace({axes}, {len(self.constraints)} constraint(s))"
