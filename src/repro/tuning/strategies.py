"""Search strategies over a :class:`~repro.tuning.space.SearchSpace`.

Four classic strategies from the code-tuning literature, ordered by how
much structure they assume:

* :class:`GridSearch` — exhaustive enumeration; the ground truth every
  other strategy is judged against on small spaces.
* :class:`RandomSearch` — seeded uniform sampling; the standard baseline
  that is surprisingly hard to beat on low-effective-dimension spaces
  (Bergstra & Bengio, 2012).
* :class:`CoordinateDescent` — greedy axis sweeps from a starting point;
  the shape of hand-tuning ("fix everything, sweep the tile size, repeat")
  made systematic.
* :class:`SimulatedAnnealing` — neighbour moves with a cooling temperature,
  escaping the local minima coordinate descent gets stuck in.

Every strategy is deterministic under its seed: identical seeds replay the
identical sequence of configurations, so tuning histories are reproducible
artifacts (the reproducibility-engineering stance of the course).
Strategies never measure anything themselves — they ask the
:class:`~repro.tuning.harness.EvaluationHarness` and stop cleanly when it
raises :class:`~repro.tuning.harness.BudgetExhausted`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from .harness import BudgetExhausted, EvaluationHarness, TuningResult
from .space import SearchSpace, config_key

__all__ = [
    "SearchStrategy",
    "GridSearch",
    "RandomSearch",
    "CoordinateDescent",
    "SimulatedAnnealing",
]


class SearchStrategy(ABC):
    """Template: run the concrete search, absorb budget exhaustion."""

    name = "abstract"

    def run(self, space: SearchSpace, harness: EvaluationHarness) -> TuningResult:
        """Search ``space`` through ``harness`` until done or out of budget.

        Restarts the harness's wall-clock budget first: a reused harness
        (repeated searches over a shared cache) is budgeted per search,
        never charged for idle time between searches.
        """
        harness.reset_clock()
        tracer = harness._tracer_now()
        with tracer.span("tuning.search", category="tuning",
                         strategy=self.name, kernel=harness.kernel,
                         problem=harness.problem):
            try:
                self._search(space, harness)
            except BudgetExhausted:
                pass
        return harness.result(strategy=self.name)

    @abstractmethod
    def _search(self, space: SearchSpace, harness: EvaluationHarness) -> None:
        ...


class GridSearch(SearchStrategy):
    """Evaluate every valid configuration in deterministic odometer order.

    All grid points are independent, so the whole enumeration is one
    :meth:`~repro.tuning.harness.EvaluationHarness.evaluate_many` batch —
    concurrent when the harness carries an execution backend, and recorded
    identically to a serial sweep either way.
    """

    name = "grid"

    def _search(self, space: SearchSpace, harness: EvaluationHarness) -> None:
        harness.evaluate_many(space.configs())


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling without replacement (until the space or the
    budget is exhausted, whichever comes first)."""

    name = "random"

    def __init__(self, seed: int = 0, max_samples: int | None = None):
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.seed = seed
        self.max_samples = max_samples

    def _search(self, space: SearchSpace, harness: EvaluationHarness) -> None:
        rng = np.random.default_rng(self.seed)
        total = space.size()
        limit = total if self.max_samples is None else min(self.max_samples, total)
        # Sampling consumes the RNG, never the measurements, so the whole
        # seeded draw sequence can be fixed up front and evaluated as one
        # independent batch (same order a serial run would measure in).
        seen: set[tuple] = set()
        samples: list[dict] = []
        while len(seen) < limit:
            config = space.sample(rng)
            key = config_key(config)
            if key in seen:
                continue
            seen.add(key)
            samples.append(config)
        harness.evaluate_many(samples)


class CoordinateDescent(SearchStrategy):
    """Greedy cyclic axis sweeps from a starting configuration.

    Each pass sweeps every parameter's full axis (others held fixed) and
    moves to the best point found; passes repeat until one completes with
    no improvement, a deterministic fixed point.  ``seed=None`` starts from
    the space's default configuration (reproducible without randomness);
    an integer seed starts from a seeded random sample instead.
    """

    name = "coordinate-descent"

    def __init__(self, seed: int | None = None, max_passes: int = 10):
        if max_passes < 1:
            raise ValueError("max_passes must be positive")
        self.seed = seed
        self.max_passes = max_passes

    def _search(self, space: SearchSpace, harness: EvaluationHarness) -> None:
        if self.seed is None:
            current = space.default_config()
        else:
            current = space.sample(np.random.default_rng(self.seed))
        best = harness.evaluate(current)
        for _ in range(self.max_passes):
            improved = False
            for param in space.parameters:
                # one axis sweep is decided before any of its results, so
                # its configurations are independent: batch them (the
                # winner is picked afterwards, exactly as the serial loop
                # would — axis configs are distinct, so later comparisons
                # never see a current that appears again in the sweep)
                candidates = [config for config in space.axis(current, param.name)
                              if config != current]
                for config, seconds in zip(candidates,
                                           harness.evaluate_many(candidates)):
                    if seconds < best:
                        best, current, improved = seconds, config, True
            if not improved:
                return


class SimulatedAnnealing(SearchStrategy):
    """Metropolis neighbour moves under a geometric cooling schedule.

    A move to a worse neighbour (relative regression ``delta``) is accepted
    with probability ``exp(-delta / T)``; ``T`` cools by ``cooling`` each
    step from ``initial_temperature``.  With the temperature expressed in
    *relative* objective units the schedule is scale-free: the same settings
    work for second-scale and microsecond-scale objectives.
    """

    name = "simulated-annealing"

    def __init__(self, seed: int = 0, steps: int = 100,
                 initial_temperature: float = 0.5, cooling: float = 0.95):
        if steps < 1:
            raise ValueError("steps must be positive")
        if initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.seed = seed
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def _search(self, space: SearchSpace, harness: EvaluationHarness) -> None:
        rng = np.random.default_rng(self.seed)
        current = space.sample(rng)
        current_s = harness.evaluate(current)
        temperature = self.initial_temperature
        for _ in range(self.steps):
            neighbors = space.neighbors(current)
            if not neighbors:
                return
            candidate = neighbors[int(rng.integers(len(neighbors)))]
            candidate_s = harness.evaluate(candidate)
            delta = (candidate_s - current_s) / current_s
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_s = candidate, candidate_s
            temperature *= self.cooling
