"""Model-guided pruning and ranking for the auto-tuner.

The paper's stage-3 lesson — model *before* you measure — applies inside
the tuning loop too: an analytical or Roofline prediction is free, a
measurement is not.  This module lets any ``config -> predicted seconds``
model steer the search:

* :class:`ModelGuide` — a named predictor; :func:`roofline_guide` builds
  one from a :class:`~repro.roofline.model.RooflineModel` plus a
  config-dependent work model (the prediction is the Roofline bound
  ``flops / attainable(intensity)``).
* :func:`rank_by_prediction` / :func:`prune_by_prediction` — order a
  configuration list by predicted time, or keep only the most promising
  prefix, before any measurement happens.
* :class:`GuidedSearch` — a strategy that measures the top-``keep``
  predicted configurations in predicted order; with a tight budget this is
  "spend measurements where the model says it matters".
* :func:`guidance_report` — the measured-vs-predicted error table for a
  finished search, closing the loop: a guide whose ranking disagrees with
  the measurements is itself a finding worth reporting (stage 7).

A guide attached to an :class:`~repro.tuning.harness.EvaluationHarness`
(via ``predict=guide.predict``) stamps its prediction onto every
:class:`~repro.tuning.harness.Evaluation`, so the error analysis needs no
extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..roofline.model import RooflineModel
from ..timing.metrics import WorkCount
from .harness import EvaluationHarness, TuningResult
from .space import SearchSpace
from .strategies import SearchStrategy

__all__ = [
    "ModelGuide",
    "roofline_guide",
    "rank_by_prediction",
    "prune_by_prediction",
    "GuidedSearch",
    "PredictionError",
    "prediction_errors",
    "guidance_report",
]


@dataclass(frozen=True)
class ModelGuide:
    """A named performance model ``config -> predicted seconds``."""

    name: str
    predict_fn: Callable[[Mapping[str, object]], float]

    def predict(self, config: Mapping[str, object]) -> float:
        seconds = float(self.predict_fn(dict(config)))
        if seconds <= 0:
            raise ValueError(
                f"guide {self.name!r} predicted non-positive time for {config}")
        return seconds


def roofline_guide(roofline: RooflineModel,
                   work: Callable[[Mapping[str, object]], WorkCount],
                   name: str | None = None) -> ModelGuide:
    """Guide predicting the Roofline *bound* for each configuration.

    ``work(config)`` maps a configuration to its :class:`WorkCount` —
    tunables that change the algorithm (loop order, variant) change the
    work model; tunables that only change the schedule (tile size) may
    return a constant.  The prediction is optimistic by construction
    (it is a bound), so expect positive prediction errors on slow configs;
    the *ranking* is what guides the search.
    """

    def predict(config: Mapping[str, object]) -> float:
        w = work(config)
        return w.flops / roofline.attainable(w.intensity)

    return ModelGuide(name or f"roofline:{roofline.name}", predict)


def rank_by_prediction(guide: ModelGuide,
                       configs: Iterable[Mapping[str, object]]) -> list[dict]:
    """Configurations sorted by predicted time, fastest first.

    The sort is stable: configurations the model cannot distinguish keep
    their input (enumeration) order, so ranking stays deterministic.
    """
    return [dict(c) for c in sorted(configs, key=lambda c: guide.predict(c))]


def prune_by_prediction(guide: ModelGuide,
                        configs: Iterable[Mapping[str, object]],
                        keep: int | float) -> list[dict]:
    """Keep the best-predicted prefix: a count (int) or a fraction (float).

    ``keep=0.25`` keeps the top quarter (at least one); ``keep=10`` keeps
    the top ten.  Skipped configurations cost nothing — that is the point.
    """
    ranked = rank_by_prediction(guide, configs)
    if isinstance(keep, bool) or not isinstance(keep, (int, float)):
        raise ValueError("keep must be an int count or a float fraction")
    if isinstance(keep, float):
        if not 0 < keep <= 1:
            raise ValueError("fractional keep must be in (0, 1]")
        n = max(1, int(round(keep * len(ranked))))
    else:
        if keep < 1:
            raise ValueError("integer keep must be positive")
        n = keep
    return ranked[:n]


class GuidedSearch(SearchStrategy):
    """Measure the ``keep`` best-predicted configurations, best first.

    Model-guided pruning as a strategy: the guide ranks the whole space for
    free, the budget is spent only on the promising prefix.  Wrap the same
    guide into the harness (``predict=guide.predict``) to get per-config
    measured-vs-predicted errors in the history.
    """

    name = "guided"

    def __init__(self, guide: ModelGuide, keep: int | float = 0.25):
        self.guide = guide
        self.keep = keep

    def _search(self, space: SearchSpace, harness: EvaluationHarness) -> None:
        for config in prune_by_prediction(self.guide, space.configs(), self.keep):
            harness.evaluate(config)


@dataclass(frozen=True)
class PredictionError:
    """Measured-vs-predicted outcome for one evaluated configuration."""

    config: Mapping[str, object]
    predicted_seconds: float
    measured_seconds: float

    @property
    def error(self) -> float:
        """(predicted - measured)/measured; negative means model too slow."""
        return (self.predicted_seconds - self.measured_seconds) / self.measured_seconds


def prediction_errors(result: TuningResult) -> list[PredictionError]:
    """Per-configuration errors for every cold evaluation with a prediction."""
    return [
        PredictionError(dict(e.config), e.predicted_seconds, e.seconds)
        for e in result.history
        if not e.cached and e.predicted_seconds is not None
    ]


def guidance_report(result: TuningResult) -> str:
    """Plain-text measured-vs-predicted table (stage-7 material)."""
    errors = prediction_errors(result)
    if not errors:
        return f"guidance report: no model predictions recorded for {result.kernel}"
    lines = [
        f"Guidance report: {result.kernel} [{result.problem}] via {result.strategy}",
        f"  {'predicted':>12s} {'measured':>12s} {'error':>8s}  config",
    ]
    for pe in errors:
        lines.append(f"  {pe.predicted_seconds:12.4e} {pe.measured_seconds:12.4e} "
                     f"{pe.error:+8.0%}  {dict(sorted(pe.config.items()))}")
    mean_abs = sum(abs(pe.error) for pe in errors) / len(errors)
    lines.append(f"  mean |error| over {len(errors)} config(s): {mean_abs:.0%}")
    return "\n".join(lines)
