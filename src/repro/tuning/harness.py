"""Budgeted, memoizing evaluation harness for the auto-tuner.

The harness is the only component that ever *measures*: strategies ask it
to evaluate configurations and it enforces the tuning discipline —

* every cold evaluation goes through the measurement methodology of
  :mod:`repro.timing` (warmup + repetitions) when timing a real kernel;
* an explicit :class:`Budget` caps both the number of cold evaluations and
  the wall-clock spent, raising :class:`BudgetExhausted` so strategies stop
  cleanly mid-search;
* a memoizing cache keyed on ``(kernel, problem, config)`` makes revisited
  configurations free — a repeated search over the same space performs zero
  new measurements;
* everything is recorded: the :class:`TuningResult` history is the stage-7
  artifact, JSON-persistable and byte-identical across runs for a
  deterministic objective and seed.

The *objective* is any callable mapping a configuration dict to a positive
number (smaller is better; seconds by convention).  Use
:func:`timed_objective` to build one from a real kernel with proper
warmup/repetition, or pass an analytical/simulated model directly for
deterministic searches.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, MutableMapping

from ..observe import Tracer, get_tracer
from ..timing.adaptive import measure_adaptive
from ..timing.timers import measure
from .space import config_key

__all__ = [
    "BudgetExhausted",
    "Budget",
    "Evaluation",
    "TuningResult",
    "EvaluationHarness",
    "timed_objective",
    "adaptive_objective",
]


class BudgetExhausted(RuntimeError):
    """Raised by the harness when a cold evaluation would exceed the budget."""


@dataclass(frozen=True)
class Budget:
    """Limits on a tuning run.

    Attributes
    ----------
    max_evaluations:
        Maximum number of *cold* (measured) evaluations; cache hits are
        free.  ``None`` leaves the count unbounded.
    max_seconds:
        Wall-clock ceiling for the whole search, checked before each cold
        evaluation.  ``None`` leaves time unbounded.
    """

    max_evaluations: int | None = None
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if self.max_evaluations is None and self.max_seconds is None:
            raise ValueError("budget must bound evaluations or time (or both)")


@dataclass(frozen=True)
class Evaluation:
    """One harness call: a configuration and what it cost.

    ``cached`` evaluations repeat a configuration already measured this
    search (or found in a shared cache) and consumed no budget.
    """

    index: int
    config: Mapping[str, object]
    seconds: float
    predicted_seconds: float | None = None
    cached: bool = False

    def prediction_error(self) -> float | None:
        """(predicted - measured)/measured, when a model guided this eval."""
        if self.predicted_seconds is None:
            return None
        return (self.predicted_seconds - self.seconds) / self.seconds

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "config": dict(sorted(self.config.items())),
            "seconds": self.seconds,
            "predicted_seconds": self.predicted_seconds,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "Evaluation":
        return cls(index=int(d["index"]), config=dict(d["config"]),
                   seconds=float(d["seconds"]),
                   predicted_seconds=(None if d.get("predicted_seconds") is None
                                      else float(d["predicted_seconds"])),
                   cached=bool(d.get("cached", False)))


@dataclass
class TuningResult:
    """The complete record of one search — the documentation artifact.

    History preserves evaluation order (including cache hits), so two runs
    with the same seed over the same deterministic objective serialize to
    byte-identical JSON.
    """

    kernel: str
    problem: str
    strategy: str
    history: list[Evaluation] = field(default_factory=list)

    # -- outcomes -----------------------------------------------------------

    @property
    def best(self) -> Evaluation:
        if not self.history:
            raise ValueError("empty tuning history")
        return min(self.history, key=lambda e: e.seconds)

    @property
    def best_config(self) -> dict:
        return dict(self.best.config)

    @property
    def best_seconds(self) -> float:
        return self.best.seconds

    @property
    def measurements(self) -> int:
        """Cold (budget-consuming) evaluations."""
        return sum(1 for e in self.history if not e.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.history if e.cached)

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators) — diff-stable."""
        doc = {
            "kernel": self.kernel,
            "problem": self.problem,
            "strategy": self.strategy,
            "history": [e.to_dict() for e in self.history],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "TuningResult":
        doc = json.loads(text)
        return cls(kernel=doc["kernel"], problem=doc["problem"],
                   strategy=doc["strategy"],
                   history=[Evaluation.from_dict(e) for e in doc["history"]])

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        """Plain-text summary table of the search."""
        lines = [
            f"Tuning result: {self.kernel} [{self.problem}] via {self.strategy}",
            f"  {self.measurements} measurement(s), {self.cache_hits} cache hit(s)",
        ]
        if self.history:
            best = self.best
            lines.append(f"  best {best.seconds:.4e}s at {dict(sorted(best.config.items()))}")
            lines.append(f"  {'#':>4s} {'seconds':>12s} {'predicted':>12s} "
                         f"{'err':>7s} {'hit':>4s}  config")
            for e in self.history:
                pred = (f"{e.predicted_seconds:12.4e}"
                        if e.predicted_seconds is not None else "         n/a")
                err = e.prediction_error()
                err_s = f"{err:+7.0%}" if err is not None else "    n/a"
                hit = "yes" if e.cached else "   "
                lines.append(f"  {e.index:4d} {e.seconds:12.4e} {pred} {err_s} {hit:>4s}"
                             f"  {dict(sorted(e.config.items()))}")
        return "\n".join(lines)


class EvaluationHarness:
    """Evaluate configurations under a budget, memoizing every result.

    Parameters
    ----------
    objective:
        ``config dict -> positive seconds`` (lower is better).
    kernel, problem:
        Cache-key namespace: results for the same configuration of a
        different kernel or problem size never collide.
    budget:
        The :class:`Budget` to enforce; ``None`` means unbounded.
    cache:
        Optional externally-owned mapping shared between harnesses (and
        thus between searches); defaults to a private dict.
    predict:
        Optional model ``config -> predicted seconds`` attached to every
        evaluation for measured-vs-predicted reporting
        (see :mod:`repro.tuning.guidance`).
    backend:
        Optional :class:`~repro.parallel.backends.ExecutionBackend` through
        which :meth:`evaluate_many` measures *independent* cold
        configurations concurrently.  ``None`` (the default) keeps every
        path strictly serial.  The backend is borrowed, never closed.  A
        process backend additionally requires a picklable objective.
    clock:
        Monotonic time source (injectable for deterministic tests).
    tracer:
        Observability hook: every call emits a ``tuning.evaluate`` span
        (attributes: config, cached, seconds) plus ``tuning.*`` counters.
        ``None`` uses the active tracer — a no-op unless tracing is
        enabled (see :mod:`repro.observe`).

    The wall-clock budget clock starts at the first evaluation after
    construction (or after :meth:`reset_clock`).  Strategies reset it at
    the start of every search, so a harness reused across searches — the
    documented repeated-search/shared-cache workflow — never counts idle
    time between searches against ``Budget.max_seconds``.
    """

    def __init__(self, objective: Callable[[Mapping[str, object]], float],
                 kernel: str = "objective", problem: str = "",
                 budget: Budget | None = None,
                 cache: MutableMapping[tuple, float] | None = None,
                 predict: Callable[[Mapping[str, object]], float] | None = None,
                 backend=None,
                 clock: Callable[[], float] = time.monotonic,
                 tracer: Tracer | None = None):
        self.objective = objective
        self.kernel = kernel
        self.problem = problem
        self.budget = budget
        self.cache = cache if cache is not None else {}
        self.predict = predict
        self.backend = backend
        self.tracer = tracer
        self._clock = clock
        self._started: float | None = None
        self.history: list[Evaluation] = []
        self.measurements = 0

    # -- core ---------------------------------------------------------------

    def _key(self, config: Mapping[str, object]) -> tuple:
        return (self.kernel, self.problem, config_key(config))

    def _tracer_now(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def reset_clock(self) -> None:
        """Restart the wall-clock budget: the next evaluation starts it.

        Called by :meth:`SearchStrategy.run
        <repro.tuning.strategies.SearchStrategy.run>` so each search is
        budgeted on its own elapsed time, not on the harness's lifetime.
        """
        self._started = None

    def _check_budget(self, planned_cold: int = 0) -> None:
        if self.budget is None:
            return
        if (self.budget.max_evaluations is not None
                and self.measurements + planned_cold
                >= self.budget.max_evaluations):
            raise BudgetExhausted(
                f"evaluation budget of {self.budget.max_evaluations} spent")
        if (self.budget.max_seconds is not None
                and self._clock() - self._started >= self.budget.max_seconds):
            raise BudgetExhausted(
                f"wall-clock budget of {self.budget.max_seconds}s spent")

    def evaluate(self, config: Mapping[str, object]) -> float:
        """Measure ``config`` (or recall it), record it, return seconds."""
        if self._started is None:
            self._started = self._clock()
        tracer = self._tracer_now()
        with tracer.span("tuning.evaluate", category="tuning",
                         kernel=self.kernel, problem=self.problem,
                         config=dict(config)) as span:
            key = self._key(config)
            predicted = self.predict(config) if self.predict is not None else None
            if key in self.cache:
                seconds = self.cache[key]
                self.history.append(Evaluation(len(self.history), dict(config),
                                               seconds, predicted, cached=True))
                span.set("cached", True)
                span.set("seconds", seconds)
                tracer.count("tuning.cache_hits")
                return seconds
            try:
                self._check_budget()
            except BudgetExhausted:
                span.set("budget_exhausted", True)
                tracer.count("tuning.budget_exhausted")
                raise
            seconds = float(self.objective(dict(config)))
            if seconds <= 0:
                raise ValueError(
                    f"objective must be positive, got {seconds} for {config}")
            self.measurements += 1
            self.cache[key] = seconds
            self.history.append(Evaluation(len(self.history), dict(config),
                                           seconds, predicted, cached=False))
            span.set("cached", False)
            span.set("seconds", seconds)
            tracer.count("tuning.measurements")
            tracer.observe("tuning.seconds", seconds)
            return seconds

    def evaluate_many(self, configs) -> list[float]:
        """Evaluate a batch of *independent* configurations.

        Semantically identical to calling :meth:`evaluate` on each config
        in order — same history entries, same ``cached`` flags (a config
        repeated within the batch is measured once and replayed as a cache
        hit), same cache keys, same :class:`BudgetExhausted` point (the
        entries before the exhausting config are recorded, then the error
        is raised) — so for a deterministic objective the resulting
        :class:`TuningResult` is byte-identical to a serial run.

        With a ``backend`` attached, the cold (unmeasured) configurations
        are dispatched through ``backend.map`` concurrently; results are
        still recorded in input order.  The only semantic difference is
        the wall-clock budget: it is checked once per batch rather than
        before each cold evaluation, since cold evaluations no longer have
        a serial "before".
        """
        configs = [dict(c) for c in configs]
        if self.backend is None:
            return [self.evaluate(c) for c in configs]
        if self._started is None:
            self._started = self._clock()
        tracer = self._tracer_now()
        # Plan: replay serial cache/budget semantics to find which configs
        # are cold, stopping at the config a serial run would raise on.
        cold: list[dict] = []
        cold_keys: list[tuple] = []
        planned = 0
        exhausted: str | None = None
        for config in configs:
            key = self._key(config)
            if key not in self.cache and key not in cold_keys:
                try:
                    self._check_budget(planned_cold=len(cold))
                except BudgetExhausted as exc:
                    exhausted = str(exc)
                    tracer.count("tuning.budget_exhausted")
                    break
                cold.append(config)
                cold_keys.append(key)
            planned += 1
        if cold:
            with tracer.span("tuning.evaluate_many", category="tuning",
                             kernel=self.kernel, problem=self.problem,
                             batch=len(configs), cold=len(cold),
                             backend=self.backend.name):
                measured = self.backend.map(self.objective, cold)
        else:
            measured = []
        seconds_by_key = dict(zip(cold_keys, (float(s) for s in measured)))
        # Record in input order, replaying what a serial loop would do.
        out: list[float] = []
        for config in configs[:planned]:
            key = self._key(config)
            predicted = self.predict(config) if self.predict is not None else None
            if key in self.cache:
                seconds = self.cache[key]
                self.history.append(Evaluation(len(self.history), dict(config),
                                               seconds, predicted, cached=True))
                tracer.count("tuning.cache_hits")
            else:
                seconds = seconds_by_key[key]
                if seconds <= 0:
                    raise ValueError(
                        f"objective must be positive, got {seconds} for {config}")
                self.measurements += 1
                self.cache[key] = seconds
                self.history.append(Evaluation(len(self.history), dict(config),
                                               seconds, predicted, cached=False))
                tracer.count("tuning.measurements")
                tracer.observe("tuning.seconds", seconds)
            out.append(seconds)
        if exhausted is not None:
            raise BudgetExhausted(exhausted)
        return out

    def result(self, strategy: str = "?") -> TuningResult:
        """Freeze the history into a :class:`TuningResult`."""
        return TuningResult(kernel=self.kernel, problem=self.problem,
                            strategy=strategy, history=list(self.history))


def timed_objective(fn: Callable, setup: Callable[[Mapping[str, object]], tuple],
                    warmup: int = 1, repetitions: int = 3) -> Callable:
    """Build an objective that times ``fn`` with proper methodology.

    ``setup(config)`` returns the positional arguments for the timed calls
    (invoked once per evaluation, outside the timed region); the
    configuration itself is splatted as keyword arguments.  The objective
    returns the *best* repetition (closest to noise-free hardware time, per
    :attr:`repro.timing.timers.MeasurementResult.best`).
    """

    def objective(config: Mapping[str, object]) -> float:
        args = setup(config)
        res = measure(lambda: fn(*args, **config),
                      repetitions=repetitions, warmup=warmup)
        return res.best

    return objective


def adaptive_objective(fn: Callable,
                       setup: Callable[[Mapping[str, object]], tuple],
                       *, rel_ci: float = 0.05, min_repetitions: int = 3,
                       max_repetitions: int = 15,
                       max_seconds: float | None = None,
                       warmup: int = 1) -> Callable:
    """Like :func:`timed_objective`, but each evaluation stops when tight.

    Uses :func:`repro.timing.adaptive.measure_adaptive`: a stable
    configuration costs only ``min_repetitions`` timed calls while a noisy
    one keeps sampling up to ``max_repetitions`` (or ``max_seconds``), so
    over a whole search the repetition budget flows to the configurations
    that actually need it.  The objective still returns the best
    repetition, so a search over a deterministic-enough kernel selects the
    same winner as the fixed-repetition objective — just cheaper.
    """

    def objective(config: Mapping[str, object]) -> float:
        args = setup(config)
        res = measure_adaptive(
            lambda: fn(*args, **config), rel_ci=rel_ci,
            min_repetitions=min_repetitions,
            max_repetitions=max_repetitions, max_seconds=max_seconds,
            batch=min_repetitions, warmup=warmup)
        return res.best

    return objective
