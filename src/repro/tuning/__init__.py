"""Search-based kernel auto-tuning — stage 5 (TUNING) of §2.3, automated.

The paper's seven-stage process names its fifth stage *tuning*: apply the
proposed optimization and tune its parameters until the measured time
matches (or refutes) the model's prediction.  The course curriculum lists
"Code tuning and optimization" as a core topic, but by hand that stage is
a notebook sweep — unrecorded, unreproducible, and over-measured.  This
subsystem makes it an explicit, budgeted, cached, seeded artifact:

==============================  ==========================================
:mod:`repro.tuning.space`       declarative search spaces: integer /
                                power-of-two / choice parameters plus
                                cross-parameter constraints from machine
                                specs (e.g. "3·tile² elements fit in L1")
:mod:`repro.tuning.strategies`  exhaustive grid, seeded random, greedy
                                coordinate descent, simulated annealing —
                                deterministic under a seed
:mod:`repro.tuning.harness`     budgeted evaluation (eval-count and
                                wall-clock caps), memoizing cache keyed on
                                (kernel, problem, config), JSON-persistable
                                :class:`TuningResult` histories
:mod:`repro.tuning.guidance`    Roofline/analytical predictions rank or
                                prune configs before measuring; per-config
                                measured-vs-predicted error reports
:mod:`repro.tuning.tune`        ``tune()`` / ``tune_variant()`` entry
                                points; winners land on an
                                :class:`~repro.core.process.EngineeringProcess`
                                as stage-5 attempts
==============================  ==========================================

Quickstart — tune a registered kernel's tile size::

    from repro.kernels import REGISTRY, random_matrices
    from repro.tuning import Budget, CoordinateDescent, tune_variant

    variant = REGISTRY.get("matmul", "tiled")
    result = tune_variant(
        variant,
        setup=lambda cfg: random_matrices(96),
        strategy=CoordinateDescent(),
        budget=Budget(max_evaluations=30),
    )
    print(result.report())         # best tile + full search history
"""

from .guidance import (
    GuidedSearch,
    ModelGuide,
    PredictionError,
    guidance_report,
    prediction_errors,
    prune_by_prediction,
    rank_by_prediction,
    roofline_guide,
)
from .harness import (
    Budget,
    BudgetExhausted,
    Evaluation,
    EvaluationHarness,
    TuningResult,
    adaptive_objective,
    timed_objective,
)
from .space import (
    ChoiceParam,
    Constraint,
    IntegerParam,
    Parameter,
    PowerOfTwoParam,
    SearchSpace,
    config_key,
    tiles_fit_cache,
)
from .strategies import (
    CoordinateDescent,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SimulatedAnnealing,
)
from .tune import space_for, tune, tune_variant

__all__ = [
    # space
    "Parameter",
    "IntegerParam",
    "PowerOfTwoParam",
    "ChoiceParam",
    "Constraint",
    "SearchSpace",
    "tiles_fit_cache",
    "config_key",
    # harness
    "Budget",
    "BudgetExhausted",
    "Evaluation",
    "EvaluationHarness",
    "TuningResult",
    "timed_objective",
    "adaptive_objective",
    # strategies
    "SearchStrategy",
    "GridSearch",
    "RandomSearch",
    "CoordinateDescent",
    "SimulatedAnnealing",
    # guidance
    "ModelGuide",
    "roofline_guide",
    "rank_by_prediction",
    "prune_by_prediction",
    "GuidedSearch",
    "PredictionError",
    "prediction_errors",
    "guidance_report",
    # entry points
    "space_for",
    "tune",
    "tune_variant",
]
