"""repro — a performance-engineering toolbox.

Reproduction of *"Performance Engineering for Graduate Students: A View
from Amsterdam"* (Varbanescu, Swatman & Pathania, SC-W 2023): the complete
toolbox the course teaches, built from scratch in Python.

Sub-packages map to the course topics (Table 1 of the paper):

======================  =====================================================
``repro.core``          the seven-stage PE process + the Toolbox facade
``repro.machine``       CPU/GPU/cluster specs, instruction tables, presets
``repro.timing``        measurement methodology: timers, statistics, design
``repro.kernels``       assignment & project workloads, many variants each
``repro.roofline``      Roofline model and extensions (assignment 1)
``repro.analytical``    analytical models, ECM, scaling laws (assignment 2)
``repro.microbench``    microbenchmarking & machine characterization
``repro.statmodel``     statistical performance models (assignment 3)
``repro.simulator``     cache / port / CPU simulators (the counter source)
``repro.counters``      PAPI-like counters & performance patterns (asg. 4)
``repro.parallel``      schedules, thread teams, execution backends, GPU
``repro.distributed``   network models, collectives, mini-MPI, scaling
``repro.queueing``      queueing theory + discrete-event validation
``repro.polyhedral``    iteration domains, dependences, legal transforms
``repro.tuning``        search-based kernel auto-tuning (stage 5, automated)
``repro.analyze``       static source analysis: lint, work-count, hazards
``repro.observe``       structured tracing + metrics; Chrome-trace export
``repro.perfdb``        longitudinal benchmark store + regression gate
``repro.service``       benchmark-as-a-service: manifests, job engine, HTTP
``repro.report``        unified run reports: one self-contained HTML file
``repro.course``        the paper's own artifacts: data, grading, figures
======================  =====================================================

Quickstart::

    from repro import Toolbox, Requirement, Metric, EngineeringProcess
    tb = Toolbox.default()
    print(tb.summary())
"""

from .analyze import (
    AnalysisReport,
    Finding,
    WorkEstimate,
    analyze_all,
    analyze_worker,
    estimate_registry,
    hazards_registry,
    lint_registry,
    static_app_points,
    verify_workcounts,
)
from .core import (
    EngineeringProcess,
    Feasibility,
    Metric,
    ProcessError,
    Requirement,
    Stage,
    Toolbox,
)
from .kernels import REGISTRY, KernelRegistry, KernelVariant, TunableParam, register
from .observe import (
    METRICS,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from .parallel import (
    BACKENDS,
    ExecutionBackend,
    compare_backends,
    make_backend,
    open_backend,
    parallel_map,
)
from .perfdb import PerfStore, RunRecord, compare_runs
from .profiling import FunctionCost, Profile, amdahl_gate, profile_callable
from .report import build_report, compare_report
from .roofline import AppPoint, RooflineModel, cpu_roofline, gpu_roofline
from .timing import (
    MeasurementBudget,
    MeasurementResult,
    SampleSummary,
    measure,
    measure_adaptive,
    measure_until_stable,
    sample_summary,
)
from .transform import (
    TransformReport,
    apply_rule,
    run_flywheel,
    transform_candidates,
)
from .tuning import (
    Budget,
    CoordinateDescent,
    GridSearch,
    RandomSearch,
    SearchSpace,
    SimulatedAnnealing,
    TuningResult,
    tune,
    tune_variant,
)

__version__ = "1.7.0"

__all__ = [
    "Toolbox",
    "EngineeringProcess",
    "Stage",
    "Requirement",
    "Metric",
    "Feasibility",
    "ProcessError",
    # kernel registry
    "REGISTRY",
    "KernelRegistry",
    "KernelVariant",
    "TunableParam",
    "register",
    # execution backends & parallel helpers
    "BACKENDS",
    "ExecutionBackend",
    "make_backend",
    "open_backend",
    "parallel_map",
    "compare_backends",
    # roofline
    "RooflineModel",
    "AppPoint",
    "cpu_roofline",
    "gpu_roofline",
    # profiling
    "FunctionCost",
    "Profile",
    "profile_callable",
    "amdahl_gate",
    # static analysis
    "AnalysisReport",
    "Finding",
    "WorkEstimate",
    "analyze_all",
    "analyze_worker",
    "lint_registry",
    "verify_workcounts",
    "hazards_registry",
    "estimate_registry",
    "static_app_points",
    # auto-tuning (stage 5)
    "SearchSpace",
    "Budget",
    "GridSearch",
    "RandomSearch",
    "CoordinateDescent",
    "SimulatedAnnealing",
    "TuningResult",
    "tune",
    "tune_variant",
    # observability
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "MetricsRegistry",
    "METRICS",
    # adaptive measurement
    "MeasurementResult",
    "MeasurementBudget",
    "SampleSummary",
    "measure",
    "measure_adaptive",
    "measure_until_stable",
    "sample_summary",
    # source transformation
    "TransformReport",
    "apply_rule",
    "run_flywheel",
    "transform_candidates",
    # longitudinal performance tracking
    "PerfStore",
    "RunRecord",
    "compare_runs",
    # unified run reports
    "build_report",
    "compare_report",
    "__version__",
]
