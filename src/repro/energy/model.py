"""Energy and power modeling — the paper's future-work topic (2).

The conclusion lists "including additional metrics — such as
energy-efficiency — more prominently" as a planned course extension.  This
module implements that extension over the existing machine models:

* a CPU **power model** with static (leakage + uncore) and dynamic
  (per-active-core, utilization-scaled) components, plus a DRAM term
  driven by bandwidth — the structure RAPL measurements decompose into;
* **energy metrics**: joules, energy-per-FLOP, EDP/ED²P;
* the two classic energy analyses taught with it: **race-to-idle vs.
  pace-to-idle** under DVFS, and the **energy-optimal core count** for a
  saturating (memory-bound) kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.specs import CPUSpec

__all__ = [
    "PowerModel",
    "EnergyReport",
    "energy_of_run",
    "dvfs_energy_curve",
    "energy_optimal_cores",
]


@dataclass(frozen=True)
class PowerModel:
    """Node power decomposition.

    Attributes
    ----------
    static_watts:
        Idle/leakage + uncore power, paid whenever the node is on.
    core_watts:
        Dynamic power of one fully-busy core at nominal frequency.
    dram_watts_per_gbs:
        DRAM power per GB/s of actual traffic.
    frequency_exponent:
        Dynamic power scales as (f/f_nom)^exponent (≈3 with voltage
        scaling: P ~ C·V²·f and V ~ f).
    """

    static_watts: float = 40.0
    core_watts: float = 6.0
    dram_watts_per_gbs: float = 0.4
    frequency_exponent: float = 3.0

    def __post_init__(self) -> None:
        if min(self.static_watts, self.core_watts, self.dram_watts_per_gbs) < 0:
            raise ValueError("power terms cannot be negative")
        if not 1.0 <= self.frequency_exponent <= 4.0:
            raise ValueError("frequency exponent outside the plausible 1..4")

    def power(self, active_cores: int, utilization: float = 1.0,
              dram_gbs: float = 0.0, frequency_scale: float = 1.0) -> float:
        """Instantaneous watts for a machine state."""
        if active_cores < 0:
            raise ValueError("active cores cannot be negative")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        if dram_gbs < 0:
            raise ValueError("DRAM bandwidth cannot be negative")
        if frequency_scale <= 0:
            raise ValueError("frequency scale must be positive")
        dynamic = (self.core_watts * active_cores * utilization
                   * frequency_scale ** self.frequency_exponent)
        return self.static_watts + dynamic + self.dram_watts_per_gbs * dram_gbs


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one run."""

    seconds: float
    joules: float
    flops: float = 0.0

    def __post_init__(self) -> None:
        if self.seconds <= 0 or self.joules < 0 or self.flops < 0:
            raise ValueError("invalid energy report values")

    @property
    def watts(self) -> float:
        return self.joules / self.seconds

    @property
    def joules_per_flop(self) -> float:
        if self.flops <= 0:
            raise ValueError("no FLOP work recorded")
        return self.joules / self.flops

    @property
    def gflops_per_watt(self) -> float:
        """The Green500 metric."""
        if self.flops <= 0:
            raise ValueError("no FLOP work recorded")
        return (self.flops / self.seconds) / self.watts / 1e9

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s)."""
        return self.joules * self.seconds

    @property
    def ed2p(self) -> float:
        """Energy-delay² product (J·s²) — weights performance harder."""
        return self.joules * self.seconds ** 2


def energy_of_run(power_model: PowerModel, seconds: float, active_cores: int,
                  flops: float = 0.0, dram_bytes: float = 0.0,
                  utilization: float = 1.0,
                  frequency_scale: float = 1.0) -> EnergyReport:
    """Energy of one kernel execution under the power model."""
    if seconds <= 0:
        raise ValueError("run time must be positive")
    dram_gbs = dram_bytes / seconds / 1e9
    watts = power_model.power(active_cores, utilization, dram_gbs,
                              frequency_scale)
    return EnergyReport(seconds=seconds, joules=watts * seconds, flops=flops)


def dvfs_energy_curve(power_model: PowerModel, base_seconds: float,
                      active_cores: int, compute_bound_fraction: float = 1.0,
                      scales: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2),
                      flops: float = 0.0) -> dict[float, EnergyReport]:
    """Energy vs frequency scale: the race-to-idle analysis.

    A compute-bound kernel's runtime scales as 1/f; a memory-bound one's
    barely moves.  ``compute_bound_fraction`` interpolates:
    T(s) = T·(fraction/s + (1-fraction)).  The curve shows the taught
    result: for compute-bound code with high static power, racing to idle
    (high f) often wins; for memory-bound code, lower f nearly always
    saves energy.
    """
    if base_seconds <= 0:
        raise ValueError("base time must be positive")
    if not 0.0 <= compute_bound_fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    out = {}
    for s in scales:
        if s <= 0:
            raise ValueError("frequency scales must be positive")
        seconds = base_seconds * (compute_bound_fraction / s
                                  + (1 - compute_bound_fraction))
        out[s] = energy_of_run(power_model, seconds, active_cores,
                               flops=flops, frequency_scale=s)
    return out


def energy_optimal_cores(power_model: PowerModel, cpu: CPUSpec,
                         cycles_per_line_single: float, mem_cycles_per_line: float,
                         lines: float) -> tuple[int, dict[int, EnergyReport]]:
    """Energy-optimal core count for an ECM-style saturating kernel.

    Runtime follows the ECM multicore model (linear until the memory
    floor); power grows with active cores.  Past saturation, extra cores
    burn power without adding speed — the energy optimum sits at (or just
    below) n_sat.  Returns (optimal cores, per-core-count reports).
    """
    if cycles_per_line_single <= 0 or mem_cycles_per_line < 0 or lines <= 0:
        raise ValueError("invalid kernel parameters")
    reports = {}
    freq = cpu.frequency_hz
    for n in range(1, cpu.cores + 1):
        per_line = max(cycles_per_line_single / n, mem_cycles_per_line)
        seconds = per_line * lines / freq
        reports[n] = energy_of_run(power_model, seconds, active_cores=n)
    best = min(reports, key=lambda n: reports[n].joules)
    return best, reports
