"""Energy-efficiency metrics and models (the paper's future-work topic 2)."""

from .model import (
    EnergyReport,
    PowerModel,
    dvfs_energy_curve,
    energy_of_run,
    energy_optimal_cores,
)

__all__ = [
    "PowerModel",
    "EnergyReport",
    "energy_of_run",
    "dvfs_energy_curve",
    "energy_optimal_cores",
]
