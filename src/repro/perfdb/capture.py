"""Pytest-side capture: turn a benchmark session into raw per-benchmark times.

``repro-perfdb record`` runs the ``benchmarks/`` suite in a child pytest
with ``REPRO_PERFDB_CAPTURE`` pointing at an output path;
``benchmarks/conftest.py`` calls :func:`install_capture` so this plugin
rides along.  Capture works by *observation*, not by changing benchmarks:
a thread-local :class:`~repro.observe.Tracer` wraps each test call, and
afterwards the top-level ``timing.measure`` / ``timing.measure_until_stable``
spans are harvested — their ``timing.repetition`` children carry the raw
per-repetition seconds the store needs.  Tests that use the
pytest-benchmark fixture instead contribute that fixture's raw rounds.

Benchmark ids are stable across runs by construction: the pytest node id,
plus a ``::measureK`` suffix numbering the top-level measure calls within
one test in execution order.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Iterable, Mapping, Sequence

import pytest

from ..observe import METRICS, Span, Tracer, tracing
from ..observe.metrics import snapshot_delta

__all__ = ["CAPTURE_ENV", "harvest_measure_times", "PerfCapturePlugin",
           "install_capture", "load_capture"]

#: Environment variable naming the JSON file a capture session writes.
CAPTURE_ENV = "REPRO_PERFDB_CAPTURE"

_MEASURE_SPANS = ("timing.measure", "timing.measure_until_stable",
                  "timing.measure_adaptive")


def harvest_measure_times(spans: Iterable[Span]) -> list[list[float]]:
    """Raw repetition times of each *top-level* measure span, in call order.

    Top-level means ``parent_id is None``: measurements made inside other
    instrumented machinery (a tuning search, a variant comparison) belong
    to that machinery's span tree and are deliberately not double-counted
    as benchmarks of their own.
    """
    spans = sorted(spans, key=lambda s: s.span_id)
    children: dict[int | None, list[Span]] = defaultdict(list)
    for s in spans:
        children[s.parent_id].append(s)
    out: list[list[float]] = []
    for s in spans:
        if s.name not in _MEASURE_SPANS or s.parent_id is not None:
            continue
        times = [float(c.attrs["seconds"]) for c in children[s.span_id]
                 if c.name == "timing.repetition" and "seconds" in c.attrs]
        if times:
            out.append(times)
    return out


def _pytest_benchmark_times(item) -> list[float] | None:
    """Raw rounds from a pytest-benchmark fixture, when the test used one."""
    bench = getattr(item, "funcargs", {}).get("benchmark")
    stats = getattr(bench, "stats", None)          # Metadata (or None)
    inner = getattr(stats, "stats", None)          # Stats with .data
    data = getattr(inner, "data", None)
    if data:
        times = [float(t) for t in data if t > 0]
        return times or None
    return None


class PerfCapturePlugin:
    """Collects per-benchmark samples for the whole session, then writes JSON.

    The output document: ``{"schema": 1, "samples": {id: [seconds, ...]},
    "metrics": <observe snapshot delta>, "exitstatus": int}``.
    """

    def __init__(self, out_path: str | os.PathLike):
        self.out_path = os.fspath(out_path)
        self.samples: dict[str, list[float]] = {}
        self._metrics_before = METRICS.snapshot()

    def pytest_collection_modifyitems(self, config, items):
        # Meta-benchmarks (marked perfdb_skip) measure the toolbox itself,
        # not a kernel: during a record they would only add noisy
        # pseudo-benchmarks, and their own assertions could abort the run.
        keep, drop = [], []
        for it in items:
            (keep if it.get_closest_marker("perfdb_skip") is None
             else drop).append(it)
        if drop:
            config.hook.pytest_deselected(items=drop)
            items[:] = keep

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(self, item):
        if item.get_closest_marker("perfdb_skip") is not None:
            return (yield)
        tracer = Tracer(metrics=METRICS)
        with tracing(tracer):
            result = yield
        for k, times in enumerate(harvest_measure_times(tracer.spans)):
            self.samples[f"{item.nodeid}::measure{k}"] = times
        bench_times = _pytest_benchmark_times(item)
        if bench_times:
            self.samples[item.nodeid] = bench_times
        return result

    def pytest_sessionfinish(self, session, exitstatus):
        doc = {
            "schema": 1,
            "samples": {bid: times
                        for bid, times in sorted(self.samples.items())},
            "metrics": snapshot_delta(self._metrics_before,
                                      METRICS.snapshot()),
            "exitstatus": int(exitstatus),
        }
        with open(self.out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)


def install_capture(config) -> None:
    """Register the capture plugin when ``REPRO_PERFDB_CAPTURE`` is set.

    Called from ``benchmarks/conftest.py``'s ``pytest_configure`` (or any
    suite that wants to be recordable); without the environment variable
    only the ``perfdb_skip`` marker is registered, so plain benchmark runs
    are otherwise untouched.
    """
    config.addinivalue_line(
        "markers",
        "perfdb_skip: exclude this test from perfdb record capture "
        "(meta-benchmarks that measure the toolbox itself, not a kernel)")
    path = os.environ.get(CAPTURE_ENV)
    if path and not config.pluginmanager.has_plugin("repro-perfdb-capture"):
        config.pluginmanager.register(PerfCapturePlugin(path),
                                      "repro-perfdb-capture")


def load_capture(path: str | os.PathLike) -> tuple[dict, Mapping]:
    """Read a capture file back: ``(samples, metrics)``; raises on damage."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != 1:
        raise ValueError(f"unknown capture schema {doc.get('schema')!r}")
    samples = {str(k): [float(t) for t in v]
               for k, v in doc.get("samples", {}).items()}
    return samples, doc.get("metrics", {})
