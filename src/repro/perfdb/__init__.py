"""Longitudinal performance tracking: store, gate, and report benchmarks.

The toolbox can *measure* (:mod:`repro.timing`) and *observe one run*
(:mod:`repro.observe`) — this package is the memory on top: a durable,
append-only store of benchmark results plus a statistical regression gate
and a dashboard, so optimisation claims are checked against history, the
way the paper's seven-stage process (and its own seven-edition
self-evaluation) demands.  It substitutes for continuous-benchmarking
services such as ``asv`` or Codespeed.

==============================  ==========================================
:mod:`repro.perfdb.record`      :class:`RunRecord` — raw times + summary
                                per benchmark, machine fingerprint, git
                                SHA, metrics snapshot, schema version
:mod:`repro.perfdb.store`       :class:`PerfStore` — append-only JSONL,
                                corrupt-line tolerant, atomic concurrent
                                appends, baseline pinning
:mod:`repro.perfdb.compare`     :func:`compare_runs` — Mann-Whitney gate
                                with median-ratio effect sizes, plus the
                                :func:`history_drift` change-point scan
:mod:`repro.perfdb.report`      sparkline text dashboard over the history
:mod:`repro.perfdb.capture`     pytest plugin that harvests raw
                                ``timing.measure`` repetition times (and
                                pytest-benchmark rounds) during ``record``
:mod:`repro.perfdb.cli`         ``python -m repro.perfdb`` — ``record`` /
                                ``compare`` (the CI gate) / ``report`` /
                                ``baseline``
==============================  ==========================================

Quickstart::

    from repro.perfdb import PerfStore, RunRecord, compare_runs

    store = PerfStore(".perfdb")
    store.append(RunRecord.new({"kernels/matmul": times}))
    verdicts = compare_runs(store.latest(), store.baseline())
    print(verdicts.report())
"""

from .compare import (
    IMPROVED,
    MISSING,
    NEW,
    REGRESSED,
    UNCHANGED,
    BenchmarkComparison,
    ChangePoint,
    RunComparison,
    compare_runs,
    history_drift,
)
from .record import (
    SCHEMA_VERSION,
    BenchmarkResult,
    RunRecord,
    SchemaMismatch,
    calibration_probe,
    current_git_sha,
    machine_fingerprint,
)
from .report import report_text, sparkline
from .store import DEFAULT_STORE_DIR, PerfStore, PerfStoreWarning

__all__ = [
    # records
    "SCHEMA_VERSION",
    "SchemaMismatch",
    "BenchmarkResult",
    "RunRecord",
    "calibration_probe",
    "machine_fingerprint",
    "current_git_sha",
    # store
    "PerfStore",
    "PerfStoreWarning",
    "DEFAULT_STORE_DIR",
    # comparison engine
    "compare_runs",
    "RunComparison",
    "BenchmarkComparison",
    "ChangePoint",
    "history_drift",
    "IMPROVED",
    "REGRESSED",
    "UNCHANGED",
    "NEW",
    "MISSING",
    # reporting
    "report_text",
    "sparkline",
]
