"""Run records: the durable unit of the longitudinal benchmark store.

"Beyond the Badge" (PAPERS.md) argues that reproducibility needs durable,
provenance-stamped measurement artifacts, not one-off numbers.  A
:class:`RunRecord` is that artifact for one pass over the benchmark suite:
every benchmark's *raw* repetition times (so later comparisons can rerun
the statistics, not trust old verdicts), their :class:`~repro.timing.stats.
Summary`, and enough provenance to know whether two runs are comparable at
all — a machine fingerprint, the git SHA, and the
:mod:`repro.observe` metrics snapshot of the run.

Records are schema-versioned: loaders refuse records from a different
schema instead of misreading them (see :class:`SchemaMismatch`).
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Mapping, Sequence

from ..timing.stats import Summary, summarize

__all__ = [
    "SCHEMA_VERSION",
    "SchemaMismatch",
    "BenchmarkResult",
    "RunRecord",
    "calibration_probe",
    "machine_fingerprint",
    "current_git_sha",
]

#: Bump on any backwards-incompatible change to the record layout.
SCHEMA_VERSION = 1


class SchemaMismatch(ValueError):
    """A serialized record carries a schema version this code cannot read."""


def calibration_probe(repetitions: int = 9, warmup: int = 3) -> dict:
    """Measure a fixed reference kernel: the run's machine-speed stamp.

    A 256x256 NumPy matmul, best-of-``repetitions`` — deliberately
    *independent of any repo code*, so a change to the toolbox can never
    move the probe.  Two runs whose probes differ substantially were
    measured on effectively different machines (another host, thermal
    throttling, sustained contention); the comparison engine uses the
    probe ratio to normalise sustained machine-speed drift out of its
    verdicts instead of reporting every benchmark "regressed" because the
    whole box was slow that afternoon.
    """
    import numpy as np

    from ..observe import NullTracer
    from ..timing.timers import measure

    a = np.random.default_rng(0).random((256, 256))
    # NullTracer: the probe must never show up as a captured benchmark
    res = measure(lambda: a @ a, repetitions=repetitions, warmup=warmup,
                  tracer=NullTracer())
    return {"kernel": "numpy-matmul-256", "best_seconds": res.best,
            "median_seconds": res.summary.median}


def machine_fingerprint(calibrate: bool = True) -> dict:
    """Where a run was measured — the comparability stamp.

    Runtime facts (host, platform, interpreter and library versions, core
    count), the default teaching-machine preset's key figures from
    :mod:`repro.machine.presets` (so a record names both the *actual* host
    and the *modeled* machine its analytical comparisons assumed), and —
    unless ``calibrate=False`` — the :func:`calibration_probe`.
    """
    import numpy

    fp: dict[str, object] = {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }
    try:
        import scipy

        fp["scipy"] = scipy.__version__
    except Exception:  # pragma: no cover - scipy is a hard dep in practice
        fp["scipy"] = None
    try:
        from ..machine.presets import generic_server_cpu

        cpu = generic_server_cpu()
        fp["preset"] = {
            "name": cpu.name,
            "cores": cpu.cores,
            "peak_gflops": cpu.peak_flops() / 1e9,
            "stream_gbs": cpu.stream_bandwidth / 1e9,
            "ridge_point": cpu.ridge_point(),
        }
    except Exception:  # pragma: no cover - presets are part of the package
        fp["preset"] = None
    if calibrate:
        try:
            fp["calibration"] = calibration_probe()
        except Exception:  # pragma: no cover - probe is plain numpy
            fp["calibration"] = None
    return fp


def current_git_sha(cwd: str | None = None) -> str | None:
    """The repository HEAD, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmark's raw repetition times plus their summary."""

    benchmark_id: str
    times: tuple[float, ...]
    summary: Summary

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError(f"benchmark {self.benchmark_id!r} has no times")
        if any(t <= 0 for t in self.times):
            raise ValueError(f"benchmark {self.benchmark_id!r} has "
                             "non-positive times")

    @classmethod
    def from_times(cls, benchmark_id: str,
                   times: Sequence[float]) -> "BenchmarkResult":
        times = tuple(float(t) for t in times)
        return cls(benchmark_id=benchmark_id, times=times,
                   summary=summarize(times))

    def to_dict(self) -> dict:
        return {"times": list(self.times), "summary": asdict(self.summary)}

    @classmethod
    def from_dict(cls, benchmark_id: str, d: Mapping) -> "BenchmarkResult":
        return cls(benchmark_id=benchmark_id,
                   times=tuple(float(t) for t in d["times"]),
                   summary=Summary(**d["summary"]))


@dataclass(frozen=True)
class RunRecord:
    """One recorded pass over the benchmark suite.

    ``created`` is Unix epoch seconds; ``benchmarks`` maps a stable
    benchmark id (pytest node id plus a per-test measure index) to its
    :class:`BenchmarkResult`; ``metrics`` is the
    :func:`repro.observe.snapshot_delta` of the run.
    """

    run_id: str
    created: float
    benchmarks: Mapping[str, BenchmarkResult]
    machine: Mapping[str, object] = field(default_factory=dict)
    git_sha: str | None = None
    label: str = ""
    metrics: Mapping[str, object] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.run_id:
            raise ValueError("run_id cannot be empty")
        if not self.benchmarks:
            raise ValueError("a run must contain at least one benchmark")

    @classmethod
    def new(cls, samples: Mapping[str, Sequence[float]], label: str = "",
            metrics: Mapping | None = None,
            machine: Mapping | None = None,
            git_sha: str | None = None,
            created: float | None = None) -> "RunRecord":
        """Build a record from raw per-benchmark samples, stamping provenance."""
        created = time.time() if created is None else float(created)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(created))
        return cls(
            run_id=f"{stamp}-{uuid.uuid4().hex[:6]}",
            created=created,
            benchmarks={bid: BenchmarkResult.from_times(bid, times)
                        for bid, times in sorted(samples.items())},
            machine=machine_fingerprint() if machine is None else dict(machine),
            git_sha=current_git_sha() if git_sha is None else git_sha,
            label=label,
            metrics=dict(metrics) if metrics else {},
        )

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "created": self.created,
            "label": self.label,
            "git_sha": self.git_sha,
            "machine": dict(self.machine),
            "metrics": dict(self.metrics),
            "benchmarks": {bid: r.to_dict()
                           for bid, r in sorted(self.benchmarks.items())},
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "RunRecord":
        schema = d.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaMismatch(
                f"record schema {schema!r} (this reader expects "
                f"{SCHEMA_VERSION}); refusing to guess at its layout")
        return cls(
            run_id=str(d["run_id"]),
            created=float(d["created"]),
            benchmarks={bid: BenchmarkResult.from_dict(bid, r)
                        for bid, r in d["benchmarks"].items()},
            machine=dict(d.get("machine", {})),
            git_sha=d.get("git_sha"),
            label=str(d.get("label", "")),
            metrics=dict(d.get("metrics", {})),
        )

    def describe(self) -> str:
        """One-line inventory: ``run_id  when  [label]  sha  n benchmarks``."""
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.localtime(self.created))
        sha = (self.git_sha or "nogit")[:8]
        label = f" [{self.label}]" if self.label else ""
        return (f"{self.run_id}  {when}  {sha}"
                f"  {len(self.benchmarks)} benchmark(s){label}")
