"""``python -m repro.perfdb`` — record, compare, report, baseline.

The longitudinal workflow, start to finish::

    python -m repro.perfdb record benchmarks/test_bench_perfdb.py
    python -m repro.perfdb baseline latest        # pin it
    ... hack on a kernel ...
    python -m repro.perfdb record benchmarks/test_bench_perfdb.py
    python -m repro.perfdb compare                # exit 1 on regression
    python -m repro.perfdb report                 # sparkline dashboard

``compare`` is the CI gate: exit 0 when no benchmark significantly
regressed against the baseline (the pinned run, else the run before the
candidate), exit 1 on a regression, exit 2 on operational errors.
``record`` honours ``REPRO_BENCH_SMOKE`` (and any other environment) by
passing it straight through to the child pytest.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

from ..timing.adaptive import rel_ci_half_width
from .capture import CAPTURE_ENV, load_capture
from .compare import compare_runs
from .record import RunRecord, calibration_probe, machine_fingerprint
from .report import report_text
from .store import PerfStore

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perfdb",
        description="longitudinal benchmark tracking and regression gating")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store directory (default: $REPRO_PERFDB or "
                             ".perfdb)")
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run benchmarks and store a run")
    rec.add_argument("targets", nargs="*", default=None, metavar="PYTEST_ARG",
                     help="pytest targets/args (default: benchmarks/)")
    rec.add_argument("--label", default="", help="free-form run label")
    rec.add_argument("--passes", type=int, default=3,
                     help="maximum independent pytest passes whose raw "
                          "samples are pooled into the run (default 3); >1 "
                          "spreads the measurement over time so a transient "
                          "machine-load burst cannot contaminate a whole "
                          "benchmark")
    rec.add_argument("--min-passes", type=int, default=2,
                     help="passes always run before the sequential stopping "
                          "rule may end the record early (default 2)")
    rec.add_argument("--rel-ci", type=float, default=0.05,
                     help="record stops adding passes once every pooled "
                          "benchmark's bootstrap CI half-width on the median "
                          "is within this fraction of the median (default "
                          "0.05); 0 disables early stopping and always runs "
                          "--passes passes")

    cmp_ = sub.add_parser("compare", help="gate a run against a baseline")
    cmp_.add_argument("--candidate", default=None, metavar="RUN",
                      help="run id/prefix or 'latest' (default: latest)")
    cmp_.add_argument("--baseline", default=None, metavar="RUN",
                      help="run id/prefix (default: pinned baseline, else "
                           "the run before the candidate)")
    cmp_.add_argument("--alpha", type=float, default=0.05,
                      help="Mann-Whitney significance level (default 0.05)")
    cmp_.add_argument("--min-change", type=float, default=0.10,
                      help="practical-significance floor on the median "
                           "ratio (default 0.10 = 10%%)")

    rep = sub.add_parser("report", help="sparkline dashboard of the history")
    rep.add_argument("--width", type=int, default=24,
                     help="sparkline length in runs (default 24)")

    base = sub.add_parser("baseline", help="show or pin the baseline run")
    base.add_argument("run", nargs="?", default=None,
                      help="run id/prefix or 'latest' to pin; omit to show")
    return parser


def _cmd_record(store: PerfStore, args) -> int:
    targets = list(args.targets) if args.targets else ["benchmarks/"]
    passes = max(1, int(args.passes))
    min_passes = max(1, min(int(args.min_passes), passes))
    rel_ci = max(0.0, float(args.rel_ci))
    store.root.mkdir(parents=True, exist_ok=True)
    capture_path = store.root / f"capture-{os.getpid()}.json"
    env = dict(os.environ)
    env[CAPTURE_ENV] = str(capture_path)
    # make `repro` importable in the child regardless of the caller's cwd
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p])
    cmd = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
           *targets]
    print(f"perfdb record: {' '.join(cmd)}  ({passes} pass(es))")
    # Pool raw samples across independent pytest passes: a transient burst
    # of machine load (contention, throttling) lasting longer than one
    # benchmark's repetition window then taints at most one pass's share
    # of the samples, and the pooled median stays on the quiet-machine
    # level — the store-side analogue of "repeat your experiments".
    # Probe machine speed before the passes and again after (inside the
    # fingerprint), keeping the quieter of the two windows: a single short
    # probe is more burst-prone than the pooled benchmarks it calibrates.
    try:
        cal_before = calibration_probe()
    except Exception:
        cal_before = None
    samples: dict[str, list[float]] = {}
    metrics: dict = {}
    passes_run, worst_ci, stopped_early = 0, None, False
    for n in range(passes):
        try:
            proc = subprocess.run(cmd, env=env)
            if proc.returncode != 0:
                print(f"perfdb record: benchmark pass {n + 1}/{passes} "
                      f"failed (pytest exit {proc.returncode}); nothing "
                      f"stored", file=sys.stderr)
                return 2
            if not capture_path.exists():
                print("perfdb record: the benchmark run produced no capture "
                      "file — does the suite's conftest call "
                      "repro.perfdb.capture.install_capture?",
                      file=sys.stderr)
                return 2
            pass_samples, metrics = load_capture(capture_path)
        finally:
            capture_path.unlink(missing_ok=True)
        for bid, times in pass_samples.items():
            samples.setdefault(bid, []).extend(times)
        passes_run = n + 1
        # Sequential stopping across passes: once every pooled benchmark's
        # median is pinned to within --rel-ci, more passes only cost time.
        if rel_ci > 0 and samples:
            worst_ci = max(rel_ci_half_width(times)
                           for times in samples.values())
            if (passes_run >= min_passes and passes_run < passes
                    and worst_ci <= rel_ci):
                stopped_early = True
                print(f"perfdb record: converged after {passes_run}/"
                      f"{passes} passes (worst pooled rel CI "
                      f"{worst_ci:.1%} <= {rel_ci:.1%})")
                break
    if not samples:
        print("perfdb record: no benchmark produced measurable samples",
              file=sys.stderr)
        return 2
    machine = machine_fingerprint()
    cal_after = machine.get("calibration")
    if cal_before and cal_after:
        machine["calibration"] = min(
            (cal_before, cal_after), key=lambda c: c["best_seconds"])
    metrics = dict(metrics)
    metrics["perfdb.record.passes"] = passes_run
    metrics["perfdb.record.max_passes"] = passes
    metrics["perfdb.record.stopped_early"] = stopped_early
    if worst_ci is not None:
        metrics["perfdb.record.worst_rel_ci"] = worst_ci
    record = RunRecord.new(samples, label=args.label, metrics=metrics,
                           machine=machine)
    store.append(record)
    print(f"perfdb record: stored {record.describe()} -> {store.runs_path}")
    return 0


def _cmd_compare(store: PerfStore, args) -> int:
    runs = store.runs()
    if len(runs) < 2:
        print(f"perfdb compare: need at least two runs in {store.root}, "
              f"have {len(runs)}", file=sys.stderr)
        return 2
    try:
        candidate = store.get(args.candidate) if args.candidate else runs[-1]
        if args.baseline:
            baseline = store.get(args.baseline)
        else:
            baseline = store.baseline()
            if baseline is None or baseline.run_id == candidate.run_id:
                earlier = [r for r in runs if r.created < candidate.created
                           or (r.created == candidate.created
                               and r.run_id != candidate.run_id)]
                if not earlier:
                    print("perfdb compare: no earlier run to compare "
                          "against", file=sys.stderr)
                    return 2
                baseline = earlier[-1]
        comparison = compare_runs(candidate, baseline, alpha=args.alpha,
                                  min_rel_change=args.min_change)
    except (LookupError, ValueError) as exc:
        print(f"perfdb compare: {exc}", file=sys.stderr)
        return 2
    print(comparison.report())
    return 0 if comparison.ok else 1


def _cmd_report(store: PerfStore, args) -> int:
    print(report_text(store, width=args.width))
    return 0


def _cmd_baseline(store: PerfStore, args) -> int:
    if args.run is None:
        pinned = store.baseline()
        print(f"baseline: {pinned.describe()}" if pinned
              else "baseline: (none pinned)")
        return 0
    try:
        record = store.set_baseline(args.run)
    except LookupError as exc:
        print(f"perfdb baseline: {exc}", file=sys.stderr)
        return 2
    print(f"baseline pinned: {record.describe()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    store = PerfStore(args.store)
    handler = {"record": _cmd_record, "compare": _cmd_compare,
               "report": _cmd_report, "baseline": _cmd_baseline}[args.command]
    return handler(store, args)
