"""Sharded append-only JSONL store for benchmark run records.

One :class:`~repro.perfdb.record.RunRecord` per line, spread over shard
files under the store directory (default ``.perfdb/``, gitignored).  The
format is deliberately boring — append-only newline-delimited JSON —
because the paper's measurement discipline demands artifacts that survive
crashes, concurrent writers, and future readers:

* appends are a single ``O_APPEND`` ``write()`` of one complete line, so
  two processes recording at once never interleave bytes of a record;
* loading tolerates a corrupt or truncated line (a crash mid-append, a
  botched merge) by warning and skipping it, never by refusing the rest
  of the history; every skip is tallied on :attr:`PerfStore.corrupt_lines`
  and the process-wide ``perfdb.corrupt_lines`` observe counter, so a
  serving layer can surface store health instead of losing it to a
  warning stream;
* records from an unknown schema version are rejected cleanly — warned
  about and skipped — instead of being misread.

Sharding: the original flat ``runs.jsonl`` is still read and is still
where tenant-less appends land, so existing tooling keeps working — but
``append(record, tenant=...)`` routes to ``shards/<tenant>/<group>.jsonl``
(group derived from the record's benchmark ids), one file per
tenant × benchmark family.  Many concurrent tenants then append to
*different* files instead of serializing on one inode, per-tenant history
reads touch only that tenant's shards, and :meth:`compact` can rewrite a
shard (dropping corrupt lines and duplicate run ids) plus refresh
``index.json`` — a per-file benchmark inventory that lets
:meth:`history` skip shards that cannot contain the queried benchmark.
:meth:`migrate` moves a legacy flat store into shards wholesale.

The baseline pin (``baseline.json``) names the run every ``compare``
defaults to; promoting a new baseline is an atomic rename.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from pathlib import Path

from ..observe.metrics import METRICS
from .record import RunRecord, SchemaMismatch

__all__ = ["PerfStoreWarning", "PerfStore", "DEFAULT_STORE_DIR",
           "DEFAULT_TENANT"]

#: Where the store lives unless the caller (or ``REPRO_PERFDB``) says else.
DEFAULT_STORE_DIR = ".perfdb"

#: Tenant that legacy flat-store records are migrated under.
DEFAULT_TENANT = "default"

_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9._-]+")


class PerfStoreWarning(UserWarning):
    """A store file contained something unreadable that was skipped."""


def _safe(component: str) -> str:
    """Filesystem-safe shard path component (never empty, never dotfiles)."""
    cleaned = _SAFE_COMPONENT.sub("_", component).strip("._")
    return cleaned or "x"


def _record_group(record: RunRecord) -> str:
    """Shard group of a record: the leading benchmark of its ids.

    ``service/matmul-small`` shards as ``service_matmul-small`` and a
    pytest node id ``benchmarks/test_bench_x.py::t`` as
    ``benchmarks_test_bench_x.py`` — per-benchmark files, so one tenant's
    workloads append to different inodes.  Records mixing several
    benchmarks land in ``mixed`` so a group name never lies about its
    contents.
    """
    groups = {"_".join(_safe(c) for c in
                       bid.replace("::", "/").split("/")[:2])
              for bid in record.benchmarks}
    if len(groups) == 1:
        return groups.pop()
    return "mixed"


class PerfStore:
    """A directory holding the benchmark history of one repository."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get("REPRO_PERFDB", DEFAULT_STORE_DIR)
        self.root = Path(root)
        #: Unreadable lines skipped by this store instance's reads so far.
        self.corrupt_lines = 0

    @property
    def runs_path(self) -> Path:
        """The legacy flat shard: tenant-less appends land here."""
        return self.root / "runs.jsonl"

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def baseline_path(self) -> Path:
        return self.root / "baseline.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def shard_path(self, tenant: str, group: str) -> Path:
        return self.shards_dir / _safe(tenant) / f"{_safe(group)}.jsonl"

    def shard_files(self, tenant: str | None = None) -> list[Path]:
        """Every shard file, or one tenant's, sorted for stable reads."""
        if not self.shards_dir.is_dir():
            return []
        if tenant is not None:
            tdir = self.shards_dir / _safe(tenant)
            return sorted(tdir.glob("*.jsonl")) if tdir.is_dir() else []
        return sorted(self.shards_dir.glob("*/*.jsonl"))

    def tenants(self) -> list[str]:
        """Every tenant with at least one shard file, sorted."""
        return sorted({p.parent.name for p in self.shard_files()})

    def _paths(self, tenant: str | None = None) -> list[Path]:
        paths = [] if tenant is not None else [self.runs_path]
        paths += self.shard_files(tenant)
        return [p for p in paths if p.exists()]

    # -- writing -------------------------------------------------------------

    @staticmethod
    def _encode(record: RunRecord) -> bytes:
        line = json.dumps(record.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        return line.encode("utf-8")

    @staticmethod
    def _append_line(path: Path, data: bytes) -> None:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def append(self, record: RunRecord, tenant: str | None = None) -> Path:
        """Durably append one record (atomic line write, fsync'd).

        Without ``tenant`` the record lands in the legacy flat file;
        with one it goes to that tenant's per-benchmark-family shard.
        Returns the file written.
        """
        if tenant is None:
            path = self.runs_path
        else:
            path = self.shard_path(tenant, _record_group(record))
        path.parent.mkdir(parents=True, exist_ok=True)
        self._append_line(path, self._encode(record))
        return path

    # -- reading -------------------------------------------------------------

    def _read_file(self, path: Path) -> list[RunRecord]:
        records: list[RunRecord] = []
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    self._tally_corrupt()
                    warnings.warn(
                        f"{path}:{lineno}: corrupt record skipped "
                        "(truncated append?)", PerfStoreWarning, stacklevel=3)
                    continue
                try:
                    records.append(RunRecord.from_dict(doc))
                except SchemaMismatch as exc:
                    self._tally_corrupt()
                    warnings.warn(f"{path}:{lineno}: {exc}",
                                  PerfStoreWarning, stacklevel=3)
                except (KeyError, TypeError, ValueError) as exc:
                    self._tally_corrupt()
                    warnings.warn(
                        f"{path}:{lineno}: malformed record "
                        f"skipped ({exc})", PerfStoreWarning, stacklevel=3)
        return records

    def _tally_corrupt(self) -> None:
        self.corrupt_lines += 1
        METRICS.counter("perfdb.corrupt_lines").inc()

    def runs(self, tenant: str | None = None) -> list[RunRecord]:
        """Every readable record, ordered by creation time.

        ``tenant`` restricts the read to that tenant's shards (the flat
        legacy file is tenant-less and excluded).  Unparseable lines
        (truncated append, editor damage) and records from a different
        schema version produce a :class:`PerfStoreWarning`, bump
        :attr:`corrupt_lines`, and are skipped; the rest of the history
        still loads.
        """
        records: list[RunRecord] = []
        for path in self._paths(tenant):
            records.extend(self._read_file(path))
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def latest(self) -> RunRecord | None:
        runs = self.runs()
        return runs[-1] if runs else None

    def get(self, run_id: str) -> RunRecord:
        """Resolve a full run id, a unique prefix, or the word ``latest``."""
        runs = self.runs()
        if not runs:
            raise LookupError(f"store {self.root} holds no runs")
        if run_id == "latest":
            return runs[-1]
        exact = [r for r in runs if r.run_id == run_id]
        if exact:
            return exact[-1]
        matches = [r for r in runs if r.run_id.startswith(run_id)]
        if not matches:
            raise LookupError(f"no run matches {run_id!r}")
        if len({r.run_id for r in matches}) > 1:
            raise LookupError(
                f"run id prefix {run_id!r} is ambiguous: "
                + ", ".join(sorted({r.run_id for r in matches})))
        return matches[-1]

    def history(self, benchmark_id: str) -> list[RunRecord]:
        """The runs (oldest first) that contain ``benchmark_id``.

        When a fresh ``index.json`` exists (written by :meth:`compact`),
        shards whose inventory cannot contain the benchmark are skipped
        without being read; stale or missing index entries fall back to
        reading the file — the index is an accelerator, never an oracle.
        """
        index = self._load_index()
        records: list[RunRecord] = []
        for path in self._paths():
            entry = index.get(self._index_key(path))
            if entry is not None and self._entry_fresh(entry, path) \
                    and benchmark_id not in entry["benchmarks"]:
                continue
            records.extend(r for r in self._read_file(path)
                           if benchmark_id in r.benchmarks)
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def benchmark_ids(self) -> list[str]:
        """Every benchmark id seen in any run, sorted."""
        ids: set[str] = set()
        for run in self.runs():
            ids.update(run.benchmarks)
        return sorted(ids)

    # -- health --------------------------------------------------------------

    def health(self) -> dict:
        """Store vitals for a serving layer: shard inventory and skip count.

        Reads everything once (bumping :attr:`corrupt_lines` as usual) and
        reports totals; ``corrupt_lines`` here is the count *from this
        scan*, not the instance's lifetime tally.
        """
        before = self.corrupt_lines
        legacy = self._read_file(self.runs_path) \
            if self.runs_path.exists() else []
        shard_count = 0
        for path in self.shard_files():
            shard_count += len(self._read_file(path))
        return {
            "records": len(legacy) + shard_count,
            "tenants": self.tenants(),
            "shard_files": len(self.shard_files()),
            "legacy_records": len(legacy),
            "corrupt_lines": self.corrupt_lines - before,
            "indexed": self.index_path.exists(),
        }

    # -- compaction + index --------------------------------------------------

    @staticmethod
    def _index_key(path: Path) -> str:
        return path.name if path.name == "runs.jsonl" \
            else f"shards/{path.parent.name}/{path.name}"

    @staticmethod
    def _entry_fresh(entry: dict, path: Path) -> bool:
        try:
            stat = path.stat()
        except OSError:
            return False
        return (entry.get("size") == stat.st_size
                and entry.get("mtime") == stat.st_mtime)

    def _load_index(self) -> dict:
        if not self.index_path.exists():
            return {}
        try:
            doc = json.loads(self.index_path.read_text(encoding="utf-8"))
            return doc if isinstance(doc, dict) else {}
        except (OSError, json.JSONDecodeError):
            return {}

    def compact(self, tenant: str | None = None) -> dict:
        """Rewrite shards dropping dead weight; refresh ``index.json``.

        Per file: corrupt/alien-schema lines are dropped for good (their
        count was already surfaced while reading), duplicate run ids keep
        only the newest occurrence, and surviving records are rewritten
        ordered by creation time via an atomic replace.  Afterwards the
        index records each file's benchmark inventory and stat stamp so
        :meth:`history` can prune its reads.  Returns compaction stats.
        """
        stats = {"files": 0, "kept": 0, "dropped_lines": 0, "dropped_dupes": 0}
        index: dict[str, dict] = {}
        for path in self._paths(tenant) if tenant is not None else self._paths():
            raw_lines = sum(1 for line in path.read_text(
                encoding="utf-8", errors="replace").splitlines() if line.strip())
            records = self._read_file(path)
            by_id: dict[str, RunRecord] = {}
            for rec in records:  # later lines win: newest occurrence kept
                by_id[rec.run_id] = rec
            kept = sorted(by_id.values(), key=lambda r: (r.created, r.run_id))
            tmp = path.with_suffix(".jsonl.tmp")
            with open(tmp, "wb") as fh:
                for rec in kept:
                    fh.write(self._encode(rec))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            stats["files"] += 1
            stats["kept"] += len(kept)
            stats["dropped_lines"] += raw_lines - len(records)
            stats["dropped_dupes"] += len(records) - len(kept)
            stat = path.stat()
            benchmarks: set[str] = set()
            for rec in kept:
                benchmarks.update(rec.benchmarks)
            index[self._index_key(path)] = {
                "size": stat.st_size,
                "mtime": stat.st_mtime,
                "records": len(kept),
                "benchmarks": sorted(benchmarks),
            }
        if tenant is not None:  # partial compaction: merge into prior index
            merged = self._load_index()
            merged.update(index)
            index = merged
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(index, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.index_path)
        return stats

    def migrate(self, tenant: str = DEFAULT_TENANT) -> int:
        """Move flat ``runs.jsonl`` records into per-tenant shards.

        The migration path for pre-shard stores: every readable legacy
        record is re-appended under ``tenant`` (grouped per benchmark
        family as usual), the flat file is removed, and the index is
        refreshed.  Idempotent — a store with no flat file migrates zero
        records.  Returns how many records moved.
        """
        if not self.runs_path.exists():
            return 0
        records = self._read_file(self.runs_path)
        for rec in records:
            self.append(rec, tenant=tenant)
        self.runs_path.unlink()
        self.compact()
        return len(records)

    # -- baseline pin --------------------------------------------------------

    def set_baseline(self, run_id: str) -> RunRecord:
        """Pin (promote) a run as the comparison baseline; returns it."""
        record = self.get(run_id)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.baseline_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps({"run_id": record.run_id}, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.baseline_path)
        return record

    def baseline(self) -> RunRecord | None:
        """The pinned baseline run, or ``None`` when nothing is pinned."""
        if not self.baseline_path.exists():
            return None
        try:
            run_id = json.loads(
                self.baseline_path.read_text(encoding="utf-8"))["run_id"]
            return self.get(run_id)
        except (json.JSONDecodeError, KeyError, LookupError) as exc:
            warnings.warn(f"{self.baseline_path}: unusable baseline pin "
                          f"({exc})", PerfStoreWarning, stacklevel=2)
            return None
