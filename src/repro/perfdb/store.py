"""Append-only JSONL store for benchmark run records.

One :class:`~repro.perfdb.record.RunRecord` per line in ``runs.jsonl``
under the store directory (default ``.perfdb/``, gitignored).  The format
is deliberately boring — append-only newline-delimited JSON — because the
paper's measurement discipline demands artifacts that survive crashes,
concurrent writers, and future readers:

* appends are a single ``O_APPEND`` ``write()`` of one complete line, so
  two processes recording at once never interleave bytes of a record;
* loading tolerates a corrupt or truncated line (a crash mid-append, a
  botched merge) by warning and skipping it, never by refusing the rest
  of the history;
* records from an unknown schema version are rejected cleanly — warned
  about and skipped — instead of being misread.

The baseline pin (``baseline.json``) names the run every ``compare``
defaults to; promoting a new baseline is an atomic rename.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from .record import RunRecord, SchemaMismatch

__all__ = ["PerfStoreWarning", "PerfStore", "DEFAULT_STORE_DIR"]

#: Where the store lives unless the caller (or ``REPRO_PERFDB``) says else.
DEFAULT_STORE_DIR = ".perfdb"


class PerfStoreWarning(UserWarning):
    """A store file contained something unreadable that was skipped."""


class PerfStore:
    """A directory holding the benchmark history of one repository."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get("REPRO_PERFDB", DEFAULT_STORE_DIR)
        self.root = Path(root)

    @property
    def runs_path(self) -> Path:
        return self.root / "runs.jsonl"

    @property
    def baseline_path(self) -> Path:
        return self.root / "baseline.json"

    # -- writing -------------------------------------------------------------

    def append(self, record: RunRecord) -> None:
        """Durably append one record (atomic line write, fsync'd)."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        fd = os.open(self.runs_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- reading -------------------------------------------------------------

    def runs(self) -> list[RunRecord]:
        """Every readable record, ordered by creation time.

        Unparseable lines (truncated append, editor damage) and records
        from a different schema version produce a :class:`PerfStoreWarning`
        and are skipped; the rest of the history still loads.
        """
        if not self.runs_path.exists():
            return []
        records: list[RunRecord] = []
        with open(self.runs_path, "r", encoding="utf-8", errors="replace") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{self.runs_path}:{lineno}: corrupt record skipped "
                        "(truncated append?)", PerfStoreWarning, stacklevel=2)
                    continue
                try:
                    records.append(RunRecord.from_dict(doc))
                except SchemaMismatch as exc:
                    warnings.warn(f"{self.runs_path}:{lineno}: {exc}",
                                  PerfStoreWarning, stacklevel=2)
                except (KeyError, TypeError, ValueError) as exc:
                    warnings.warn(
                        f"{self.runs_path}:{lineno}: malformed record "
                        f"skipped ({exc})", PerfStoreWarning, stacklevel=2)
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def latest(self) -> RunRecord | None:
        runs = self.runs()
        return runs[-1] if runs else None

    def get(self, run_id: str) -> RunRecord:
        """Resolve a full run id, a unique prefix, or the word ``latest``."""
        runs = self.runs()
        if not runs:
            raise LookupError(f"store {self.root} holds no runs")
        if run_id == "latest":
            return runs[-1]
        exact = [r for r in runs if r.run_id == run_id]
        if exact:
            return exact[-1]
        matches = [r for r in runs if r.run_id.startswith(run_id)]
        if not matches:
            raise LookupError(f"no run matches {run_id!r}")
        if len({r.run_id for r in matches}) > 1:
            raise LookupError(
                f"run id prefix {run_id!r} is ambiguous: "
                + ", ".join(sorted({r.run_id for r in matches})))
        return matches[-1]

    def history(self, benchmark_id: str) -> list[RunRecord]:
        """The runs (oldest first) that contain ``benchmark_id``."""
        return [r for r in self.runs() if benchmark_id in r.benchmarks]

    def benchmark_ids(self) -> list[str]:
        """Every benchmark id seen in any run, sorted."""
        ids: set[str] = set()
        for run in self.runs():
            ids.update(run.benchmarks)
        return sorted(ids)

    # -- baseline pin --------------------------------------------------------

    def set_baseline(self, run_id: str) -> RunRecord:
        """Pin (promote) a run as the comparison baseline; returns it."""
        record = self.get(run_id)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.baseline_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps({"run_id": record.run_id}, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.baseline_path)
        return record

    def baseline(self) -> RunRecord | None:
        """The pinned baseline run, or ``None`` when nothing is pinned."""
        if not self.baseline_path.exists():
            return None
        try:
            run_id = json.loads(
                self.baseline_path.read_text(encoding="utf-8"))["run_id"]
            return self.get(run_id)
        except (json.JSONDecodeError, KeyError, LookupError) as exc:
            warnings.warn(f"{self.baseline_path}: unusable baseline pin "
                          f"({exc})", PerfStoreWarning, stacklevel=2)
            return None
