"""The regression gate: verdict every benchmark against a baseline run.

Reuses the course's comparison discipline from :mod:`repro.timing.stats`
wholesale — a one-sided Mann-Whitney test via
:func:`~repro.timing.stats.significantly_faster` (never claim a change
from overlapping noise), a bootstrap CI on the median ratio as the effect
size, and a practical-significance floor (``min_rel_change``) so a
statistically real 0.5% wobble does not fail CI.

Pairwise verdicts miss slow drifts — ten runs each 2% slower than the
last never trip a latest-vs-previous gate — so :func:`history_drift` runs
the :func:`~repro.timing.stats.change_points` scan over a benchmark's
full stored history of per-run medians.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..timing.stats import (
    change_points,
    median_ratio_ci,
    significantly_faster,
)
from .record import RunRecord

__all__ = [
    "IMPROVED",
    "REGRESSED",
    "UNCHANGED",
    "NEW",
    "MISSING",
    "BenchmarkComparison",
    "RunComparison",
    "compare_runs",
    "ChangePoint",
    "history_drift",
]

IMPROVED = "improved"
REGRESSED = "regressed"
UNCHANGED = "unchanged"
NEW = "new"          # benchmark exists only in the candidate run
MISSING = "missing"  # benchmark disappeared from the candidate run

#: Only normalise by the calibration probes when the candidate's machine
#: ran more than this much *slower* than the baseline's — below it, probe
#: noise would add more error than it removes (the practical-significance
#: floor absorbs small drift anyway).
NORMALIZE_DRIFT = 0.10


def _probe_seconds(run: RunRecord) -> float | None:
    """The run's calibration-probe best time, if the record carries one."""
    cal = run.machine.get("calibration") if run.machine else None
    try:
        best = float(cal["best_seconds"])  # type: ignore[index]
    except (TypeError, KeyError, ValueError):
        return None
    return best if best > 0 else None


@dataclass(frozen=True)
class BenchmarkComparison:
    """One benchmark's verdict: candidate vs baseline.

    ``ratio`` is median(candidate)/median(baseline) — above 1 is slower —
    with ``ratio_ci`` its bootstrap confidence interval; ``rel_change`` is
    the same effect expressed as a signed fraction.
    """

    benchmark_id: str
    verdict: str
    candidate_median: float | None
    baseline_median: float | None
    ratio: float | None
    ratio_ci: tuple[float, float] | None
    rel_change: float | None
    significant: bool
    #: min(candidate)/min(baseline) — the quiet-machine effect size.
    best_ratio: float | None = None
    #: Half-width of ``ratio_ci`` relative to ``ratio`` — how tightly the
    #: effect size was pinned down by the samples the (possibly adaptive)
    #: capture collected.  The gate's verdict is only as sharp as this.
    achieved_rel_ci: float | None = None

    @property
    def regressed(self) -> bool:
        return self.verdict == REGRESSED


def _compare_times(benchmark_id: str, candidate: Sequence[float],
                   baseline: Sequence[float], alpha: float,
                   min_rel_change: float,
                   confidence: float) -> BenchmarkComparison:
    from ..timing.stats import summarize

    cand_med = summarize(candidate).median
    base_med = summarize(baseline).median
    ratio = cand_med / base_med
    rel_change = ratio - 1.0
    best_ratio = min(candidate) / min(baseline)
    ci = median_ratio_ci(candidate, baseline, confidence=confidence)
    slower = significantly_faster(baseline, candidate, alpha)
    faster = significantly_faster(candidate, baseline, alpha)
    # Four conditions to claim a change: rank test, effect CI clear of 1,
    # a practically meaningful median shift — and the same shift in the
    # *best* time.  Timing noise is one-sided (contention and throttling
    # only ever add time), so the min over the samples estimates the
    # quiet-machine time: a median that moved while the min did not is a
    # machine-load artifact, not a code change.
    if (slower and ci[0] > 1.0 and rel_change >= min_rel_change
            and best_ratio >= 1.0 + min_rel_change):
        verdict, significant = REGRESSED, True
    elif (faster and ci[1] < 1.0 and rel_change <= -min_rel_change
            and best_ratio <= 1.0 - min_rel_change):
        verdict, significant = IMPROVED, True
    else:
        verdict, significant = UNCHANGED, slower or faster
    achieved = (ci[1] - ci[0]) / 2.0 / ratio if ratio > 0 else None
    return BenchmarkComparison(
        benchmark_id=benchmark_id, verdict=verdict,
        candidate_median=cand_med, baseline_median=base_med,
        ratio=ratio, ratio_ci=ci, rel_change=rel_change,
        significant=significant, best_ratio=best_ratio,
        achieved_rel_ci=achieved)


@dataclass(frozen=True)
class RunComparison:
    """Every benchmark's verdict for one candidate/baseline pair."""

    candidate: RunRecord
    baseline: RunRecord
    results: tuple[BenchmarkComparison, ...]
    alpha: float
    min_rel_change: float
    #: Machine-speed factor divided out of the candidate's times (1.0 when
    #: the calibration probes agreed or were absent).
    machine_scale: float = 1.0

    @property
    def regressions(self) -> tuple[BenchmarkComparison, ...]:
        return tuple(r for r in self.results if r.verdict == REGRESSED)

    @property
    def improvements(self) -> tuple[BenchmarkComparison, ...]:
        return tuple(r for r in self.results if r.verdict == IMPROVED)

    @property
    def ok(self) -> bool:
        """The CI gate: true when no benchmark significantly regressed."""
        return not self.regressions

    def report(self) -> str:
        """Text verdict table, worst offenders first."""
        lines = [
            f"perfdb compare: candidate {self.candidate.describe()}",
            f"        baseline  {self.baseline.describe()}",
            f"  gate: Mann-Whitney alpha={self.alpha}, practical floor "
            f"{self.min_rel_change:+.1%}",
        ]
        if self.machine_scale != 1.0:
            lines.append(
                f"  calibration: candidate machine ran "
                f"{self.machine_scale:.2f}x the baseline's probe speed — "
                f"candidate times normalised by /{self.machine_scale:.3f}")
        lines += [
            f"  {'benchmark':52s} {'base med':>10s} {'cand med':>10s} "
            f"{'ratio':>7s} {'best':>7s} {'ci95(ratio)':>16s} verdict",
        ]
        for r in self.results:
            bid = r.benchmark_id
            bid = bid if len(bid) <= 52 else "..." + bid[-49:]
            if r.verdict in (NEW, MISSING):
                lines.append(f"  {bid:52s} {'-':>10s} {'-':>10s} {'-':>7s} "
                             f"{'-':>7s} {'-':>16s} {r.verdict}")
                continue
            ci = f"[{r.ratio_ci[0]:6.3f},{r.ratio_ci[1]:6.3f}]"
            flag = "" if r.verdict == UNCHANGED else (
                f"  ({r.rel_change:+.1%}, effect pinned to "
                f"±{r.achieved_rel_ci:.1%})"
                if r.achieved_rel_ci is not None
                else f"  ({r.rel_change:+.1%})")
            lines.append(
                f"  {bid:52s} {r.baseline_median:10.3e} "
                f"{r.candidate_median:10.3e} {r.ratio:7.3f} "
                f"{r.best_ratio:7.3f} {ci:>16s} {r.verdict}{flag}")
        lines.append(
            f"  verdicts: {len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved, "
            f"{sum(1 for r in self.results if r.verdict == UNCHANGED)} "
            f"unchanged, "
            f"{sum(1 for r in self.results if r.verdict in (NEW, MISSING))} "
            f"new/missing -> gate {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _severity(c: BenchmarkComparison) -> tuple:
    rank = {REGRESSED: 0, MISSING: 1, NEW: 2, UNCHANGED: 3, IMPROVED: 4}
    return (rank[c.verdict],
            -(c.rel_change if c.rel_change is not None else 0.0),
            c.benchmark_id)


def compare_runs(candidate: RunRecord, baseline: RunRecord,
                 alpha: float = 0.05, min_rel_change: float = 0.10,
                 confidence: float = 0.95,
                 normalize: bool = True) -> RunComparison:
    """Verdict every benchmark the two runs share (plus new/missing ones).

    A benchmark *regresses* when the baseline's times are significantly
    faster (one-sided Mann-Whitney at ``alpha``), the bootstrap CI of the
    median ratio sits entirely above 1, the median moved by at least
    ``min_rel_change``, **and** the best (minimum) time moved by as much —
    statistical and practical significance together, exactly the claim
    discipline the course grades.  The default 10% floor absorbs the
    run-to-run drift separate process invocations show even on an idle
    machine (CPU frequency, cache and allocator state).  The best-time
    condition uses timing noise's one-sidedness: load can only *add*
    time, so a code change moves the min along with the median, while a
    busy machine moves only the median — a real regression worth acting
    on clears all four.

    With ``normalize`` (the default), when both records carry a
    :func:`~repro.perfdb.record.calibration_probe` and the candidate's
    probe ran more than :data:`NORMALIZE_DRIFT` *slower* than the
    baseline's, the candidate's times are divided by the probe ratio
    before any statistics run.  The probe is a fixed NumPy kernel no repo
    change can touch, so a probe shift can only mean the *machine* ran at
    a different speed (throttling, sustained contention, a different
    host) — exactly the run-level confound that would otherwise flag
    every benchmark at once.  Normalisation is deliberately one-sided: a
    slower candidate machine needs excusing, a faster one cannot create a
    false regression, and scaling times *up* from a noisy probe would.
    """
    if candidate.run_id == baseline.run_id:
        raise ValueError("cannot compare a run against itself")
    scale = 1.0
    if normalize:
        cal_c, cal_b = _probe_seconds(candidate), _probe_seconds(baseline)
        if cal_c is not None and cal_b is not None:
            drift = cal_c / cal_b
            if drift > 1.0 + NORMALIZE_DRIFT:
                scale = drift
    results: list[BenchmarkComparison] = []
    for bid in sorted(set(candidate.benchmarks) | set(baseline.benchmarks)):
        cand = candidate.benchmarks.get(bid)
        base = baseline.benchmarks.get(bid)
        if base is None:
            results.append(BenchmarkComparison(
                bid, NEW, cand.summary.median, None, None, None, None, False))
        elif cand is None:
            results.append(BenchmarkComparison(
                bid, MISSING, None, base.summary.median, None, None, None,
                False))
        else:
            cand_times = [t / scale for t in cand.times]
            results.append(_compare_times(bid, cand_times, base.times,
                                          alpha, min_rel_change, confidence))
    results.sort(key=_severity)
    return RunComparison(candidate=candidate, baseline=baseline,
                         results=tuple(results), alpha=alpha,
                         min_rel_change=min_rel_change, machine_scale=scale)


@dataclass(frozen=True)
class ChangePoint:
    """A level shift in one benchmark's history of per-run medians."""

    benchmark_id: str
    index: int          # first run of the new regime (into ``run_ids``)
    run_id: str
    before_median: float
    after_median: float

    @property
    def rel_change(self) -> float:
        return self.after_median / self.before_median - 1.0


def history_drift(runs: Sequence[RunRecord], benchmark_id: str,
                  min_segment: int = 3, alpha: float = 0.01,
                  min_rel_change: float = 0.05) -> list[ChangePoint]:
    """Change-point scan over one benchmark's full stored history.

    ``runs`` is the oldest-first run list (e.g. ``store.history(bid)``);
    the series scanned is the per-run median.  Catches the drift and
    step-many-runs-ago cases a pairwise gate is blind to.
    """
    import numpy as np

    with_bench = [r for r in runs if benchmark_id in r.benchmarks]
    series = [r.benchmarks[benchmark_id].summary.median for r in with_bench]
    if len(series) < 2 * min_segment:
        return []
    points = change_points(series, min_segment=min_segment, alpha=alpha,
                           min_rel_change=min_rel_change)
    bounds = [0] + points + [len(series)]
    out = []
    for i, idx in enumerate(points):
        out.append(ChangePoint(
            benchmark_id=benchmark_id, index=idx,
            run_id=with_bench[idx].run_id,
            before_median=float(np.median(series[bounds[i]:idx])),
            after_median=float(np.median(series[idx:bounds[i + 2]]))))
    return out
