"""Text dashboard over the stored benchmark history.

Same idiom as the shared text renderer in :mod:`repro.observe.export`:
fixed-width rows, a legend, worst offenders first.  Each benchmark gets a
sparkline of its per-run medians across the whole store, its latest-vs-
baseline ratio, and any change points the drift scan found — the
longitudinal view (the paper evaluates its own course across seven
editions the same way).
"""

from __future__ import annotations

import time
from typing import Sequence

from ..timing.adaptive import detect_modes
from .compare import history_drift
from .record import RunRecord
from .store import PerfStore

__all__ = ["sparkline", "mode_split", "report_text"]

_BLOCKS = "▁▂▃▄▅▆▇█"  # ▁▂▃▄▅▆▇█


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a series as unicode block glyphs, low to high.

    ``width`` caps the number of glyphs (keeping the most recent values);
    a flat series renders mid-height so one glyph never reads as "low".
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None:
        if width < 1:
            raise ValueError("width must be positive")
        vals = vals[-width:]
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _BLOCKS[3] * len(vals)
    span = hi - lo
    return "".join(_BLOCKS[min(7, int(8 * (v - lo) / span))] for v in vals)


def mode_split(modes) -> str:
    """Per-mode medians as ``median×weight`` pairs.

    ``Mode.center`` is the median of the samples assigned to that mode —
    for a multimodal benchmark these are the honest numbers to report,
    not the pooled median nobody measured.  Shared by this table and the
    HTML report (:mod:`repro.report.sections`).
    """
    return " / ".join(f"{m.center:.3e}s×{m.weight:.0%}" for m in modes)


def _ratio_key(entry: tuple) -> tuple:
    _, ratio, *_ = entry
    return (-(ratio if ratio is not None else float("-inf")), entry[0])


def report_text(store: PerfStore, width: int = 24,
                drift_alpha: float = 0.01) -> str:
    """The ``repro-perfdb report`` dashboard for one store."""
    runs = store.runs()
    if not runs:
        return f"(no runs recorded in {store.root})"
    baseline = store.baseline() or runs[0]
    lines = [f"perfdb report: {len(runs)} run(s) in {store.root}", "runs:"]
    for run in runs:
        pin = "  *baseline*" if run.run_id == baseline.run_id else ""
        lines.append(f"  {run.describe()}{pin}")

    latest = runs[-1]
    entries = []
    for bid in store.benchmark_ids():
        history = [r for r in runs if bid in r.benchmarks]
        series = [r.benchmarks[bid].summary.median for r in history]
        ratio = None
        n_latest, modes = None, ()
        if bid in latest.benchmarks:
            latest_times = latest.benchmarks[bid].times
            n_latest = len(latest_times)
            modes = detect_modes(latest_times)
            if bid in baseline.benchmarks \
                    and latest.run_id != baseline.run_id:
                ratio = (latest.benchmarks[bid].summary.median
                         / baseline.benchmarks[bid].summary.median)
        drifts = history_drift(history, bid, alpha=drift_alpha)
        entries.append((bid, ratio, series, drifts, n_latest, modes))
    entries.sort(key=_ratio_key)

    lines.append(f"benchmarks (worst vs baseline first, sparkline = per-run "
                 f"median, last {width} runs, n = latest-run samples):")
    lines.append(f"  {'benchmark':52s} {'runs':>4s} {'n':>4s} "
                 f"{'latest':>10s} {'vs base':>8s}  trend")
    for bid, ratio, series, drifts, n_latest, modes in entries:
        label = bid if len(bid) <= 52 else "..." + bid[-49:]
        vs = f"{ratio - 1.0:+7.1%}" if ratio is not None else "      -"
        nsamp = f"{n_latest:4d}" if n_latest is not None else "   -"
        spark = sparkline(series, width=width)
        drift = ""
        if drifts:
            worst = max(drifts, key=lambda d: abs(d.rel_change))
            drift = (f"  ! shift {worst.rel_change:+.0%} at run "
                     f"{worst.run_id}")
        multi = (f"  ~ multimodal ({len(modes)} modes in latest run: "
                 f"{mode_split(modes)})" if len(modes) >= 2 else "")
        lines.append(f"  {label:52s} {len(series):4d} {nsamp} "
                     f"{series[-1]:10.3e} {vs:>8s}  {spark}{drift}{multi}")
    stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(runs[-1].created))
    lines.append(f"latest run recorded {stamp}; '!' marks a change point in "
                 "the median history (drift scan); '~' flags a latest-run "
                 "sample whose timing distribution is multimodal, with its "
                 "per-mode medians (median×weight)")
    return "\n".join(lines)
