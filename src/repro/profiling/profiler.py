"""Function-level profiling — the "no optimization without measuring" tool.

Assignment 2 has students use "detailed performance profilers like perf";
stage 2 of the process starts by finding where time goes.  This module
wraps :mod:`cProfile` into the toolbox idiom: run a workload, get a
structured flat profile and hotspot report, and apply the course's
decision rules (is the profile flat or peaked? is the hotspot worth
attacking, per Amdahl?).
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Callable

__all__ = ["FunctionCost", "Profile", "profile_callable", "amdahl_gate"]


@dataclass(frozen=True)
class FunctionCost:
    """One function's share of a profile.

    ``callers`` holds ``(caller name, exclusive seconds attributed to calls
    from that caller)`` edges, which the collapsed-stack export folds into
    flamegraph frames.
    """

    name: str
    calls: int
    total_seconds: float      # inclusive (cumulative) time
    self_seconds: float       # exclusive time
    callers: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.calls < 0 or self.total_seconds < 0 or self.self_seconds < 0:
            raise ValueError("profile numbers cannot be negative")


@dataclass(frozen=True)
class Profile:
    """A flat profile: per-function costs plus the total."""

    total_seconds: float
    functions: tuple[FunctionCost, ...]

    def hotspots(self, top: int = 5) -> list[FunctionCost]:
        """The ``top`` functions by exclusive time."""
        if top < 1:
            raise ValueError("top must be positive")
        ranked = sorted(self.functions, key=lambda f: -f.self_seconds)
        return ranked[:top]

    def fraction(self, name_substring: str) -> float:
        """Fraction of total time spent (exclusively) in matching functions."""
        if self.total_seconds <= 0:
            return 0.0
        matched = sum(f.self_seconds for f in self.functions
                      if name_substring in f.name)
        return matched / self.total_seconds

    @property
    def flatness(self) -> float:
        """Share of time outside the single hottest function.

        Near 0: one hotspot (attack it).  Near 1: flat profile (lesson:
        no single optimization will help; think algorithm or design).
        """
        if not self.functions or self.total_seconds <= 0:
            return 1.0
        hottest = max(f.self_seconds for f in self.functions)
        return 1.0 - hottest / self.total_seconds

    def collapsed_stacks(self) -> str:
        """The profile in Brendan Gregg's collapsed-stack format.

        One ``caller;function weight`` line per caller edge (weight =
        exclusive microseconds attributed to calls from that caller), plus
        a bare ``function weight`` line for root/uncredited time — feed the
        result to ``flamegraph.pl`` or any collapsed-stack viewer.
        cProfile keeps caller *edges* rather than full stacks, so frames
        are at most two deep; the widths are still the real self-time
        distribution.
        """
        lines = []
        for f in sorted(self.functions, key=lambda f: f.name):
            credited = 0.0
            for caller, seconds in sorted(f.callers):
                us = round(seconds * 1e6)
                if us > 0:
                    lines.append(f"{caller};{f.name} {us}")
                credited += seconds
            rest = round((f.self_seconds - credited) * 1e6)
            if rest > 0:
                lines.append(f"{f.name} {rest}")
        return "\n".join(lines)

    def report(self, top: int = 10) -> str:
        lines = [f"profile: {self.total_seconds:.4f}s total",
                 f"  {'function':48s} {'calls':>8s} {'self':>9s} {'total':>9s} {'self%':>7s}"]
        for f in self.hotspots(top):
            share = f.self_seconds / self.total_seconds if self.total_seconds else 0
            lines.append(f"  {f.name[:48]:48s} {f.calls:8d} "
                         f"{f.self_seconds:9.4f} {f.total_seconds:9.4f} {share:7.1%}")
        lines.append(f"  flatness: {self.flatness:.2f} "
                     f"({'flat profile' if self.flatness > 0.7 else 'peaked profile'})")
        return "\n".join(lines)


def profile_callable(fn: Callable[[], object], min_self_seconds: float = 0.0
                     ) -> Profile:
    """Profile one call of ``fn`` with cProfile.

    Functions below ``min_self_seconds`` of exclusive time are dropped
    from the structured result (they remain in the total).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    total = stats.total_tt

    def shortname(key):
        filename, lineno, funcname = key
        return f"{filename.rsplit('/', 1)[-1]}:{lineno}({funcname})"

    functions = []
    for key, (cc, nc, tt, ct, callers) in stats.stats.items():
        if tt < min_self_seconds:
            continue
        functions.append(FunctionCost(
            name=shortname(key),
            calls=int(nc),
            total_seconds=float(ct),
            self_seconds=float(tt),
            callers=tuple(sorted(
                (shortname(ck), float(c_tt))
                for ck, (_cc, _nc, c_tt, _ct) in callers.items())),
        ))
    return Profile(total_seconds=float(total), functions=tuple(functions))


def amdahl_gate(profile: Profile, name_substring: str,
                assumed_speedup: float = 10.0) -> tuple[float, bool]:
    """Is optimizing the matching functions worth it?

    Returns (overall speedup if the matched fraction is accelerated by
    ``assumed_speedup``, worth-it flag at the course's 1.3x threshold).
    The standard stage-4 sanity check before spending effort.
    """
    if assumed_speedup <= 1:
        raise ValueError("assumed speedup must exceed 1")
    fraction = profile.fraction(name_substring)
    serial = 1.0 - fraction
    # Amdahl with 'workers' = assumed local speedup of the hot part
    overall = 1.0 / (serial + fraction / assumed_speedup)
    return overall, overall >= 1.3
