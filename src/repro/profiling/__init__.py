"""Profiling: where does the time go (stage 2's first question)."""

from .profiler import FunctionCost, Profile, amdahl_gate, profile_callable

__all__ = ["FunctionCost", "Profile", "profile_callable", "amdahl_gate"]
