"""AST work-count verifier: static FLOP/byte estimates vs declared models.

Every kernel variant ships a hand-declared :class:`~repro.timing.metrics.WorkCount`
model.  Nothing so far checks that the model and the *source* agree — a
mistyped constant (``flops=n*n`` instead of ``2*n*n``) silently corrupts
every roofline plot and analytical prediction built on it.  This pass
closes the loop: it interprets the variant's AST over a small concrete
*probe* input, tallying floating-point operations, integer/address
operations and **unique-cell** memory traffic as it goes, then
cross-checks the resulting :class:`WorkEstimate` against the declared
model.

The interpreter is a shadow executor, not a sandbox: array reads and
writes land on real (tiny) NumPy buffers so that loop bounds, gathered
indices and data-dependent iteration counts resolve exactly, while a
parallel *cell-id* array sliced alongside the data attributes every
access to the cell of the array it touches.  Traffic is the compulsory
kind the declared models charge — a cell counts once no matter how often
it is re-read, and compiler-temporary arrays (binary-op results, gather
copies, sorted scratch) are *ephemeral*: their cells never tally, only
the named buffers' do.  The variant's returned array is charged as
stores (it is the output) even when it was built out of temporaries.

What cannot be counted (``with`` executors, imports inside the body,
opaque library calls like ``np.fft.fft``) is reported as an
informational ``not-countable`` finding rather than a guess.

Rules
-----
``W000`` not-countable (info)
    The source uses constructs the interpreter does not model.
``W001`` work-mismatch (error)
    Estimated FLOPs or total bytes diverge from the declared model by
    the tolerance factor (default 2x) or more.  Variants whose
    divergence is *understood* (e.g. twiddle-factor recomputation the
    algorithmic model deliberately ignores) declare ``workcount_expect``
    metadata with the reason, downgrading this to info.
``W002`` no-probe (info)
    No probe spec exists for the variant's kernel family.
"""

from __future__ import annotations

import ast
import inspect
import math
import operator
import textwrap
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..observe import get_tracer
from ..timing.metrics import WorkCount
from .lint import _select
from .report import AnalysisReport, Finding

__all__ = [
    "NotCountable",
    "WorkEstimate",
    "ProbeSpec",
    "WORKCOUNT_RULES",
    "default_probes",
    "estimate_variant",
    "estimate_registry",
    "verify_workcounts",
    "verify_variant",
    "static_app_points",
]

#: rule id -> (slug, default severity, summary)
WORKCOUNT_RULES = {
    "W000": ("not-countable", "info",
             "variant source could not be statically interpreted"),
    "W001": ("work-mismatch", "error",
             "static estimate diverges from the declared WorkCount model"),
    "W002": ("no-probe", "info",
             "no probe spec for this kernel family; variant skipped"),
}


class NotCountable(Exception):
    """The variant's source uses constructs the interpreter cannot count."""


@dataclass(frozen=True)
class WorkEstimate:
    """Statically derived operation/traffic counts for one probe input.

    Mirrors :class:`~repro.timing.metrics.WorkCount`; ``countable=False``
    records *why* no estimate exists instead of fabricating zeros that a
    comparison would misread.
    """

    variant: str
    countable: bool
    flops: float = 0.0
    loads_bytes: float = 0.0
    stores_bytes: float = 0.0
    int_ops: float = 0.0
    reason: str = ""

    @property
    def bytes_total(self) -> float:
        return self.loads_bytes + self.stores_bytes

    @property
    def intensity(self) -> float:
        """Static arithmetic-intensity estimate in FLOP/byte."""
        if self.bytes_total <= 0:
            return float("inf")
        return self.flops / self.bytes_total


@dataclass(frozen=True)
class ProbeSpec:
    """Deterministic probe inputs for one kernel family.

    ``build(variant_name)`` returns ``(fn_args, work_args)``: the
    positional arguments the variant is interpreted with, and the
    arguments its declared work model is *called* with (signatures
    differ — ``matmul_work(n)`` vs ``_work_from_matrix(matrix)``).
    """

    kernel: str
    build: Callable[[str], tuple[tuple, tuple]]
    note: str = ""


# ---------------------------------------------------------------------------
# shadow values
# ---------------------------------------------------------------------------

_STRIDE = 10**9  # cell id = base * _STRIDE + flat index


class _BaseMeta:
    """Identity of one allocated buffer, shared by all views of it."""

    __slots__ = ("base", "itemsize", "ephemeral")

    def __init__(self, base: int, itemsize: int, ephemeral: bool):
        self.base = base
        self.itemsize = itemsize
        self.ephemeral = ephemeral


class TrackedArray:
    """A real ndarray shadowed by a parallel array of unique cell ids.

    Slicing produces views whose ``ids`` are sliced identically, so any
    element access — direct, through a view, or gathered — maps back to
    the cells of the underlying buffer.
    """

    __slots__ = ("data", "ids", "meta")

    def __init__(self, data: np.ndarray, ids: np.ndarray, meta: _BaseMeta):
        self.data = data
        self.ids = ids
        self.meta = meta

    @property
    def shape(self):
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def ndim(self) -> int:
        return int(self.data.ndim)

    @property
    def dtype(self):
        return self.data.dtype


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _UserFn:
    """A function interpreted from its AST (module-level or nested def)."""

    __slots__ = ("name", "node", "closure", "globals")

    def __init__(self, name, node, closure, globals_):
        self.name = name
        self.node = node
        self.closure = closure  # _Env or None
        self.globals = globals_


class _TrackedMethod:
    __slots__ = ("arr", "name")

    def __init__(self, arr, name):
        self.arr = arr
        self.name = name


class _UfuncMethod:
    __slots__ = ("ufunc", "name")

    def __init__(self, ufunc, name):
        self.ufunc = ufunc
        self.name = name


class _Env:
    """Lexical scope: local vars, enclosing-scope chain, module globals."""

    __slots__ = ("vars", "parent", "globals")

    def __init__(self, vars_: dict, parent: "_Env | None" = None,
                 globals_: dict | None = None):
        self.vars = vars_
        self.parent = parent
        self.globals = globals_ if globals_ is not None else (
            parent.globals if parent is not None else {})


_BUILTINS = {
    "range": range, "len": len, "min": min, "max": max, "abs": abs,
    "int": int, "float": float, "complex": complex, "bool": bool,
    "str": str, "sorted": sorted, "list": list, "tuple": tuple,
    "zip": zip, "enumerate": enumerate, "round": round, "isinstance": isinstance,
    "ValueError": ValueError, "TypeError": TypeError, "KeyError": KeyError,
    "IndexError": IndexError, "RuntimeError": RuntimeError,
    "True": True, "False": False, "None": None,
}

#: ast op -> (flop kind, concrete operator)
_BIN_OPS = {
    ast.Add: ("add", operator.add), ast.Sub: ("add", operator.sub),
    ast.Mult: ("mul", operator.mul), ast.Div: ("mul", operator.truediv),
    ast.FloorDiv: ("int", operator.floordiv), ast.Mod: ("int", operator.mod),
    ast.Pow: ("mul", operator.pow),
    ast.LShift: ("int", operator.lshift), ast.RShift: ("int", operator.rshift),
    ast.BitAnd: ("int", operator.and_), ast.BitOr: ("int", operator.or_),
    ast.BitXor: ("int", operator.xor), ast.MatMult: ("matmul", operator.matmul),
}

_CMP_OPS = {
    ast.Eq: operator.eq, ast.NotEq: operator.ne, ast.Lt: operator.lt,
    ast.LtE: operator.le, ast.Gt: operator.gt, ast.GtE: operator.ge,
}

#: ufunc name -> flop kind of one element-op
_UFUNC_KIND = {
    "add": "add", "subtract": "add", "negative": "add", "absolute": "add",
    "conjugate": "add", "multiply": "mul", "true_divide": "mul",
    "divide": "mul", "exp": "mul", "sqrt": "mul", "sin": "mul", "cos": "mul",
    "power": "mul", "log": "mul", "log2": "mul",
}

_TRACKED_METHODS = frozenset({
    "copy", "reshape", "astype", "ravel", "min", "max", "sum", "mean", "item",
})


def _flop_weight(kind: str, is_complex: bool) -> float:
    """Real FLOPs of one element-op: complex mult ~6, complex add 2."""
    if kind == "add":
        return 2.0 if is_complex else 1.0
    return 6.0 if is_complex else 1.0


def _is_float_like(value) -> bool:
    return isinstance(value, (float, complex, np.floating, np.complexfloating))


class _Interp:
    """Concrete shadow interpreter over kernel source with work tallies."""

    def __init__(self, fuel: int = 3_000_000):
        self.fuel = fuel
        self.flops = 0.0
        self.int_ops = 0.0
        self.loaded: set[int] = set()
        self.stored: set[int] = set()
        self.itemsize: dict[int, int] = {}
        self._next_base = 1
        self._wrapcache: dict[int, TrackedArray] = {}
        self._ast_cache: dict[int, tuple] = {}
        self._depth = 0

    # -- tallies ------------------------------------------------------------

    def _tick(self, n: int = 1) -> None:
        self.fuel -= n
        if self.fuel <= 0:
            raise NotCountable("interpretation budget exhausted")

    def _fresh(self, data: np.ndarray, ephemeral: bool) -> TrackedArray:
        data = np.asarray(data)
        base = self._next_base
        self._next_base += 1
        self.itemsize[base] = int(data.dtype.itemsize)
        ids = (np.arange(data.size, dtype=np.int64)
               + base * _STRIDE).reshape(data.shape)
        return TrackedArray(data, ids, _BaseMeta(base, data.dtype.itemsize, ephemeral))

    def wrap(self, obj: np.ndarray) -> TrackedArray:
        """Persistent (non-ephemeral) wrap, memoized so views share cells."""
        cached = self._wrapcache.get(id(obj))
        if cached is None or cached.data is not obj:
            cached = self._fresh(obj, ephemeral=False)
            cached.data = obj  # shadow the caller's buffer, not a copy
            self._wrapcache[id(obj)] = cached
        return cached

    def _load_ids(self, ids, ephemeral: bool) -> None:
        if ephemeral:
            return
        flat = np.asarray(ids).ravel()
        self._tick(flat.size)
        self.loaded.update(flat.tolist())

    def _store_ids(self, ids, ephemeral: bool) -> None:
        if ephemeral:
            return
        flat = np.asarray(ids).ravel()
        self._tick(flat.size)
        self.stored.update(flat.tolist())

    def _load_array(self, arr: TrackedArray) -> None:
        self._load_ids(arr.ids, arr.meta.ephemeral)

    def _charge_elems(self, dtype, kind: str, count: int) -> None:
        if kind != "int" and dtype.kind in "fc":
            self.flops += count * _flop_weight(kind, dtype.kind == "c")
        else:
            self.int_ops += count

    def _bytes(self, cells: set[int]) -> float:
        return float(sum(self.itemsize[c // _STRIDE] for c in cells))

    # -- realization (shadow value -> plain python/numpy) -------------------

    def _realize(self, value, charge: bool = True):
        if isinstance(value, TrackedArray):
            if charge:
                self._load_array(value)
            return value.data
        if isinstance(value, (list, tuple)):
            return type(value)(self._realize(v, charge) for v in value)
        if isinstance(value, dict):
            return {k: self._realize(v, charge) for k, v in value.items()}
        if isinstance(value, (_UserFn, _TrackedMethod, _UfuncMethod)):
            raise NotCountable("cannot pass an interpreted function to a native call")
        return value

    @staticmethod
    def _data_of(value):
        return value.data if isinstance(value, TrackedArray) else value

    # -- entry point --------------------------------------------------------

    def run(self, fn: Callable, args: tuple) -> object:
        """Interpret ``fn(*args)``; returns the shadow return value."""
        wrapped = tuple(self.wrap(a) if isinstance(a, np.ndarray) else a
                        for a in args)
        return self._call_user(self._user_fn_for(fn), wrapped, {})

    def _user_fn_for(self, fn: Callable) -> _UserFn:
        cached = self._ast_cache.get(id(fn))
        if cached is not None and cached[0] is fn:
            return cached[1]
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError, IndentationError) as exc:
            raise NotCountable(f"source unavailable for {fn!r}: {exc}") from None
        node = next((n for n in tree.body if isinstance(n, ast.FunctionDef)), None)
        if node is None:
            raise NotCountable(f"no function definition found for {fn!r}")
        closure = None
        freevars = fn.__code__.co_freevars
        if freevars:
            cells = {}
            for name, cell in zip(freevars, fn.__closure__ or ()):
                value = cell.cell_contents
                cells[name] = (self.wrap(value)
                               if isinstance(value, np.ndarray) else value)
            closure = _Env(cells, globals_=fn.__globals__)
        user = _UserFn(fn.__name__, node, closure, fn.__globals__)
        self._ast_cache[id(fn)] = (fn, user)
        return user

    # -- names --------------------------------------------------------------

    def _lookup(self, name: str, env: _Env):
        scope = env
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        if name in env.globals:
            value = env.globals[name]
            if isinstance(value, np.ndarray):
                return self.wrap(value)
            return value
        if name in _BUILTINS:
            return _BUILTINS[name]
        raise NotCountable(f"unresolvable name {name!r}")

    # -- function calls -----------------------------------------------------

    def _call_user(self, user: _UserFn, args: tuple, kwargs: dict):
        self._depth += 1
        if self._depth > 64:
            raise NotCountable(f"recursion too deep interpreting {user.name}")
        try:
            env = _Env(self._bind(user, args, kwargs), parent=user.closure,
                       globals_=user.globals)
            try:
                self._exec_block(user.node.body, env)
            except _Return as ret:
                return ret.value
            return None
        finally:
            self._depth -= 1

    def _bind(self, user: _UserFn, args: tuple, kwargs: dict) -> dict:
        a = user.node.args
        params = [p.arg for p in a.posonlyargs + a.args]
        if a.kwonlyargs and any(d is None for d in a.kw_defaults):
            raise NotCountable(f"{user.name}: required keyword-only args unsupported")
        bound: dict = {}
        positional = list(args)
        if len(positional) > len(params):
            if a.vararg is None:
                raise NotCountable(f"{user.name}: too many positional arguments")
            bound[a.vararg.arg] = tuple(positional[len(params):])
            positional = positional[:len(params)]
        elif a.vararg is not None:
            bound[a.vararg.arg] = ()
        for name, value in zip(params, positional):
            bound[name] = value
        for name, value in kwargs.items():
            if name not in params and name not in [p.arg for p in a.kwonlyargs]:
                raise NotCountable(f"{user.name}: unexpected keyword {name!r}")
            bound[name] = value
        default_env = _Env({}, globals_=user.globals)
        defaults = a.defaults
        for name, node in zip(params[len(params) - len(defaults):], defaults):
            if name not in bound:
                bound[name] = self._eval(node, default_env)
        for p, node in zip(a.kwonlyargs, a.kw_defaults):
            if p.arg not in bound:
                bound[p.arg] = self._eval(node, default_env)
        for name in params:
            if name not in bound:
                raise NotCountable(f"{user.name}: missing argument {name!r}")
        return bound

    # -- statements ---------------------------------------------------------

    def _exec_block(self, stmts, env: _Env) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _exec(self, node, env: _Env) -> None:
        self._tick()
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is None:
            raise NotCountable(f"unsupported statement {type(node).__name__}")
        method(node, env)

    def _exec_Expr(self, node, env):
        self._eval(node.value, env)

    def _exec_Pass(self, node, env):
        pass

    def _exec_Assign(self, node, env):
        value = self._eval(node.value, env)
        for target in node.targets:
            self._assign_target(target, value, env)

    def _exec_AnnAssign(self, node, env):
        if node.value is not None:
            self._assign_target(node.target, self._eval(node.value, env), env)

    def _exec_AugAssign(self, node, env):
        kind, op = _BIN_OPS[type(node.op)]
        rhs = self._eval(node.value, env)
        target = node.target
        if isinstance(target, ast.Name):
            current = self._lookup(target.id, env)
            if isinstance(current, TrackedArray):
                self._inplace(current, slice(None), kind, op, rhs)
            else:
                env.vars[target.id] = self._binop(kind, op, current, rhs)
            return
        if isinstance(target, ast.Subscript):
            obj = self._eval(target.value, env)
            key = self._eval_index(target.slice, env)
            if isinstance(obj, TrackedArray):
                self._inplace(obj, key, kind, op, rhs)
            elif isinstance(obj, dict):
                obj[key] = self._binop(kind, op, obj[key], rhs)
            else:
                raise NotCountable("augmented assignment to unsupported target")
            return
        raise NotCountable("unsupported augmented-assignment target")

    def _inplace(self, arr: TrackedArray, key, kind, op, rhs) -> None:
        """``arr[key] op= rhs`` — load-modify-store on the selected cells."""
        rkey = self._realize_key(key)
        sel_ids = arr.ids[rkey]
        self._load_ids(sel_ids, arr.meta.ephemeral)
        self._store_ids(sel_ids, arr.meta.ephemeral)
        if isinstance(rhs, TrackedArray):
            self._load_array(rhs)
        rdata = self._data_of(rhs)
        try:
            arr.data[rkey] = op(arr.data[rkey], rdata)
        except Exception as exc:
            raise NotCountable(f"in-place update failed: {exc}") from None
        self._charge_elems(arr.data.dtype, kind, int(np.size(sel_ids)))

    def _exec_For(self, node, env):
        iterable = self._eval(node.iter, env)
        broke = False
        for item in self._iterate(iterable):
            self._tick(2)
            self._assign_target(node.target, item, env)
            try:
                self._exec_block(node.body, env)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke and node.orelse:
            self._exec_block(node.orelse, env)

    def _exec_While(self, node, env):
        broke = False
        while True:
            self._tick(2)
            if not self._truth(self._eval(node.test, env)):
                break
            try:
                self._exec_block(node.body, env)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke and node.orelse:
            self._exec_block(node.orelse, env)

    def _exec_If(self, node, env):
        if self._truth(self._eval(node.test, env)):
            self._exec_block(node.body, env)
        elif node.orelse:
            self._exec_block(node.orelse, env)

    def _exec_Return(self, node, env):
        value = self._eval(node.value, env) if node.value is not None else None
        raise _Return(value)

    def _exec_Break(self, node, env):
        raise _Break()

    def _exec_Continue(self, node, env):
        raise _Continue()

    def _exec_FunctionDef(self, node, env):
        env.vars[node.name] = _UserFn(node.name, node, env, env.globals)

    def _exec_Assert(self, node, env):
        if not self._truth(self._eval(node.test, env)):
            raise NotCountable("assertion failed during interpretation")

    def _exec_Raise(self, node, env):
        raise NotCountable("probe input reaches a raise statement")

    def _exec_With(self, node, env):
        raise NotCountable("with-statement (runtime resource) not statically countable")

    _exec_AsyncWith = _exec_With

    def _exec_Import(self, node, env):
        raise NotCountable("import inside kernel body not statically countable")

    _exec_ImportFrom = _exec_Import

    def _exec_Try(self, node, env):
        raise NotCountable("try/except not statically countable")

    def _exec_Global(self, node, env):
        raise NotCountable("global statement not supported")

    _exec_Nonlocal = _exec_Global
    _exec_Delete = _exec_Global

    # -- assignment targets -------------------------------------------------

    def _assign_target(self, target, value, env: _Env) -> None:
        if isinstance(target, ast.Name):
            env.vars[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            items = self._unpack(value, len(target.elts))
            for sub, item in zip(target.elts, items):
                self._assign_target(sub, item, env)
            return
        if isinstance(target, ast.Subscript):
            obj = self._eval(target.value, env)
            key = self._eval_index(target.slice, env)
            if isinstance(obj, TrackedArray):
                self._setitem(obj, key, value)
            elif isinstance(obj, (dict, list)):
                obj[self._realize_key(key)] = value
            else:
                raise NotCountable("assignment to unsupported subscript target")
            return
        if isinstance(target, ast.Starred):
            raise NotCountable("starred assignment not supported")
        raise NotCountable(f"unsupported assignment target {type(target).__name__}")

    def _unpack(self, value, n: int) -> list:
        if isinstance(value, (tuple, list)):
            items = list(value)
        elif isinstance(value, str):
            items = list(value)
        elif isinstance(value, TrackedArray):
            items = list(self._iterate(value))
        elif isinstance(value, np.ndarray):
            items = list(value)
        else:
            raise NotCountable(f"cannot unpack {type(value).__name__}")
        if len(items) != n:
            raise NotCountable("unpack arity mismatch")
        return items

    def _setitem(self, arr: TrackedArray, key, value) -> None:
        rkey = self._realize_key(key)
        sel_ids = arr.ids[rkey]
        self._store_ids(sel_ids, arr.meta.ephemeral)
        if isinstance(value, TrackedArray):
            self._load_array(value)
        try:
            arr.data[rkey] = self._data_of(value)
        except Exception as exc:
            raise NotCountable(f"array store failed: {exc}") from None

    def _realize_key(self, key):
        if isinstance(key, tuple):
            return tuple(self._realize_key(k) for k in key)
        if isinstance(key, TrackedArray):
            self._load_array(key)  # index vector is itself traffic
            return key.data
        if isinstance(key, list):
            return [self._realize_key(k) for k in key]
        if isinstance(key, (np.integer, np.bool_)):
            return key
        if isinstance(key, (int, bool, slice, str)) or key is None:
            return key
        if isinstance(key, np.ndarray):
            return key
        raise NotCountable(f"unsupported subscript key {type(key).__name__}")

    # -- expressions --------------------------------------------------------

    def _eval(self, node, env: _Env):
        self._tick()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise NotCountable(f"unsupported expression {type(node).__name__}")
        return method(node, env)

    def _eval_Constant(self, node, env):
        return node.value

    def _eval_Name(self, node, env):
        return self._lookup(node.id, env)

    def _eval_Tuple(self, node, env):
        return tuple(self._eval(e, env) for e in node.elts)

    def _eval_List(self, node, env):
        return [self._eval(e, env) for e in node.elts]

    def _eval_Dict(self, node, env):
        out = {}
        for k, v in zip(node.keys, node.values):
            if k is None:
                raise NotCountable("dict unpacking not supported")
            out[self._realize_key(self._eval(k, env))] = self._eval(v, env)
        return out

    def _eval_Slice(self, node, env):
        def part(sub):
            if sub is None:
                return None
            value = self._eval(sub, env)
            if isinstance(value, (np.integer,)):
                value = int(value)
            if not isinstance(value, int):
                raise NotCountable("non-integer slice bound")
            return value
        return slice(part(node.lower), part(node.upper), part(node.step))

    def _eval_index(self, node, env):
        """Evaluate a subscript index (may be a Tuple of slices/exprs)."""
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e, env) if not isinstance(e, ast.Slice)
                         else self._eval_Slice(e, env) for e in node.elts)
        if isinstance(node, ast.Slice):
            return self._eval_Slice(node, env)
        return self._eval(node, env)

    def _eval_Subscript(self, node, env):
        obj = self._eval(node.value, env)
        key = self._eval_index(node.slice, env)
        if isinstance(obj, TrackedArray):
            return self._getitem(obj, key)
        rkey = self._realize_key(key)
        try:
            return obj[rkey]
        except NotCountable:
            raise
        except Exception as exc:
            raise NotCountable(f"subscript failed: {exc}") from None

    def _getitem(self, arr: TrackedArray, key):
        rkey = self._realize_key(key)
        fancy = isinstance(rkey, (np.ndarray, list)) or (
            isinstance(rkey, tuple)
            and any(isinstance(k, (np.ndarray, list)) for k in rkey))
        try:
            sub_data = arr.data[rkey]
            sub_ids = arr.ids[rkey]
        except NotCountable:
            raise
        except Exception as exc:
            raise NotCountable(f"array read failed: {exc}") from None
        if not isinstance(sub_data, np.ndarray) or sub_data.ndim == 0:
            self._load_ids(sub_ids, arr.meta.ephemeral)
            return np.asarray(sub_data)[()].item()
        if fancy:
            self._load_ids(sub_ids, arr.meta.ephemeral)
            return self._fresh(np.array(sub_data), ephemeral=True)
        return TrackedArray(sub_data, sub_ids, arr.meta)  # basic slice: a view

    def _eval_Attribute(self, node, env):
        obj = self._eval(node.value, env)
        name = node.attr
        if isinstance(obj, TrackedArray):
            if name == "shape":
                return obj.shape
            if name == "ndim":
                return obj.ndim
            if name == "size":
                return obj.size
            if name == "dtype":
                return obj.dtype
            if name == "T":
                return TrackedArray(obj.data.T, obj.ids.T, obj.meta)
            if name in ("real", "imag"):
                return TrackedArray(getattr(obj.data, name),
                                    obj.ids, obj.meta)
            if name in _TRACKED_METHODS:
                return _TrackedMethod(obj, name)
            raise NotCountable(f"unsupported ndarray attribute .{name}")
        if isinstance(obj, np.ufunc) and name in ("at", "reduceat", "reduce", "outer"):
            if name in ("at", "reduceat"):
                return _UfuncMethod(obj, name)
            raise NotCountable(f"ufunc method .{name} not modeled")
        try:
            value = getattr(obj, name)
        except NotCountable:
            raise
        except Exception as exc:
            raise NotCountable(f"attribute access .{name} failed: {exc}") from None
        if isinstance(value, np.ndarray):
            return self.wrap(value)
        return value

    def _eval_UnaryOp(self, node, env):
        value = self._eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            return not self._truth(value)
        op = {ast.USub: operator.neg, ast.UAdd: operator.pos,
              ast.Invert: operator.invert}[type(node.op)]
        if isinstance(value, TrackedArray):
            self._load_array(value)
            data = op(value.data)
            kind = "int" if isinstance(node.op, ast.Invert) else "add"
            self._charge_elems(data.dtype, kind, data.size)
            return self._fresh(data, ephemeral=True)
        try:
            return op(value)
        except Exception as exc:
            raise NotCountable(f"unary op failed: {exc}") from None

    def _eval_BinOp(self, node, env):
        entry = _BIN_OPS.get(type(node.op))
        if entry is None:
            raise NotCountable(f"unsupported operator {type(node.op).__name__}")
        kind, op = entry
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return self._binop(kind, op, left, right)

    def _binop(self, kind, op, left, right):
        if isinstance(left, TrackedArray) or isinstance(right, TrackedArray):
            return self._array_binop(kind, op, left, right)
        try:
            result = op(left, right)
        except Exception as exc:
            raise NotCountable(f"operation failed: {exc}") from None
        if kind != "int" and _is_float_like(result):
            self.flops += _flop_weight(
                kind, isinstance(result, (complex, np.complexfloating)))
        elif isinstance(result, (int, np.integer)) and not isinstance(result, bool):
            self.int_ops += 1
        return result

    def _array_binop(self, kind, op, left, right):
        for operand in (left, right):
            if isinstance(operand, TrackedArray):
                self._load_array(operand)
        ldata, rdata = self._data_of(left), self._data_of(right)
        try:
            data = op(ldata, rdata)
        except Exception as exc:
            raise NotCountable(f"array operation failed: {exc}") from None
        data = np.asarray(data)
        if kind == "matmul":
            # 2·n·m·k FMA flops from the operand shapes, not the result size
            n, k = np.asarray(ldata).shape
            m = np.asarray(rdata).shape[1]
            self.flops += 2.0 * n * m * k
        else:
            self._charge_elems(data.dtype, kind, data.size)
        return self._fresh(data, ephemeral=True)

    def _eval_Compare(self, node, env):
        left = self._eval(node.left, env)
        result = True
        for op_node, comp in zip(node.ops, node.comparators):
            right = self._eval(comp, env)
            value = self._compare(op_node, left, right)
            if isinstance(value, TrackedArray):
                if len(node.ops) > 1:
                    raise NotCountable("chained array comparison")
                return value
            result = result and bool(value)
            if not result:
                return False
            left = right
        return result

    def _compare(self, op_node, left, right):
        if isinstance(op_node, (ast.Is, ast.IsNot)):
            lid = left.data if isinstance(left, TrackedArray) else left
            rid = right.data if isinstance(right, TrackedArray) else right
            same = lid is rid
            return same if isinstance(op_node, ast.Is) else not same
        if isinstance(op_node, (ast.In, ast.NotIn)):
            container = self._realize(right)
            member = self._realize(left)
            try:
                inside = member in container
            except Exception as exc:
                raise NotCountable(f"membership test failed: {exc}") from None
            return inside if isinstance(op_node, ast.In) else not inside
        op = _CMP_OPS.get(type(op_node))
        if op is None:
            raise NotCountable(f"unsupported comparison {type(op_node).__name__}")
        if isinstance(left, TrackedArray) or isinstance(right, TrackedArray):
            for operand in (left, right):
                if isinstance(operand, TrackedArray):
                    self._load_array(operand)
            try:
                data = np.asarray(op(self._data_of(left), self._data_of(right)))
            except Exception as exc:
                raise NotCountable(f"array comparison failed: {exc}") from None
            self.int_ops += data.size
            return self._fresh(data, ephemeral=True)
        try:
            return op(left, right)
        except Exception as exc:
            raise NotCountable(f"comparison failed: {exc}") from None

    def _eval_BoolOp(self, node, env):
        is_and = isinstance(node.op, ast.And)
        value = is_and
        for sub in node.values:
            value = self._truth(self._eval(sub, env))
            if value != is_and:  # short-circuit
                return value
        return value

    def _eval_IfExp(self, node, env):
        if self._truth(self._eval(node.test, env)):
            return self._eval(node.body, env)
        return self._eval(node.orelse, env)

    def _eval_JoinedStr(self, node, env):
        parts = []
        for sub in node.values:
            if isinstance(sub, ast.Constant):
                parts.append(str(sub.value))
            else:
                parts.append(str(self._realize(self._eval(sub.value, env),
                                               charge=False)))
        return "".join(parts)

    def _eval_ListComp(self, node, env):
        out: list = []
        self._run_comp(node.generators, 0, env,
                       lambda e: out.append(self._eval(node.elt, e)))
        return out

    def _eval_GeneratorExp(self, node, env):
        return self._eval_ListComp(node, env)

    def _run_comp(self, generators, i, env, emit) -> None:
        if i == len(generators):
            emit(env)
            return
        gen = generators[i]
        if gen.is_async:
            raise NotCountable("async comprehension not supported")
        for item in self._iterate(self._eval(gen.iter, env)):
            self._tick(2)
            scope = _Env(dict(env.vars), parent=env.parent, globals_=env.globals)
            self._assign_target(gen.target, item, scope)
            if all(self._truth(self._eval(cond, scope)) for cond in gen.ifs):
                self._run_comp(generators, i + 1, scope, emit)

    def _truth(self, value) -> bool:
        if isinstance(value, TrackedArray):
            raise NotCountable("truth value of a whole array")
        try:
            return bool(value)
        except Exception as exc:
            raise NotCountable(f"truthiness failed: {exc}") from None

    def _iterate(self, value):
        if isinstance(value, (range, list, tuple, str)):
            return iter(value)
        if isinstance(value, TrackedArray):
            if value.ndim == 1:
                self._load_array(value)
                return iter(value.data.tolist())
            return iter(TrackedArray(value.data[i], value.ids[i], value.meta)
                        for i in range(value.data.shape[0]))
        if isinstance(value, dict):
            return iter(list(value))
        if isinstance(value, np.ndarray):
            return iter(value)
        raise NotCountable(f"cannot iterate {type(value).__name__}")

    # -- calls --------------------------------------------------------------

    def _eval_Call(self, node, env):
        callee = self._eval(node.func, env)
        args = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                args.extend(self._unpack_star(self._eval(arg.value, env)))
            else:
                args.append(self._eval(arg, env))
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:
                raise NotCountable("** call unpacking not supported")
            kwargs[kw.arg] = self._eval(kw.value, env)
        return self._call(callee, tuple(args), kwargs)

    @staticmethod
    def _unpack_star(value):
        if isinstance(value, (list, tuple)):
            return list(value)
        raise NotCountable("starred call argument must be a list/tuple")

    def _call(self, callee, args: tuple, kwargs: dict):
        if isinstance(callee, _UserFn):
            return self._call_user(callee, args, kwargs)
        if isinstance(callee, _TrackedMethod):
            return self._call_tracked_method(callee, args, kwargs)
        if isinstance(callee, _UfuncMethod):
            return self._call_ufunc_method(callee, args, kwargs)
        if callee in _OPAQUE_CALLS:
            raise NotCountable(_OPAQUE_CALLS[callee])
        handler = _NP_HANDLERS.get(callee)
        if handler is not None:
            return handler(self, args, kwargs)
        if isinstance(callee, np.ufunc):
            return self._call_ufunc(callee, args, kwargs)
        if inspect.isfunction(callee):
            return self._call_user(self._user_fn_for(callee), args, kwargs)
        builtin = _BUILTIN_HANDLERS.get(callee)
        if builtin is not None:
            return builtin(self, args, kwargs)
        return self._native_call(callee, args, kwargs)

    def _call_tracked_method(self, method: _TrackedMethod, args, kwargs):
        arr, name = method.arr, method.name
        if name == "reshape":
            shape = args[0] if len(args) == 1 and isinstance(args[0], tuple) \
                else tuple(int(a) for a in args)
            try:
                return TrackedArray(arr.data.reshape(shape),
                                    arr.ids.reshape(shape), arr.meta)
            except Exception as exc:
                raise NotCountable(f"reshape failed: {exc}") from None
        if name == "ravel":
            return TrackedArray(arr.data.reshape(-1), arr.ids.reshape(-1),
                                arr.meta)
        if name == "copy":
            self._load_array(arr)
            return self._fresh(arr.data.copy(), ephemeral=True)
        if name == "astype":
            self._load_array(arr)
            rargs = self._realize(args, charge=False)
            return self._fresh(arr.data.astype(*rargs), ephemeral=True)
        if name == "item":
            self._load_array(arr)
            return arr.data.item(*self._realize(args, charge=False))
        if name in ("min", "max", "sum", "mean"):
            self._load_array(arr)
            kind = "add"
            rkwargs = {k: self._realize(v, charge=False)
                       for k, v in kwargs.items()}
            try:
                result = getattr(arr.data, name)(
                    *self._realize(args, charge=False), **rkwargs)
            except Exception as exc:
                raise NotCountable(f".{name}() failed: {exc}") from None
            self._charge_elems(arr.data.dtype, kind, max(arr.size - 1, 0))
            if isinstance(result, np.ndarray):
                return self._fresh(result, ephemeral=True)
            return result.item() if hasattr(result, "item") else result
        raise NotCountable(f"unsupported ndarray method .{name}")

    def _call_ufunc(self, uf: np.ufunc, args: tuple, kwargs: dict):
        out = kwargs.pop("out", None)
        if kwargs:
            raise NotCountable(f"ufunc keyword {sorted(kwargs)} not modeled")
        for operand in args:
            if isinstance(operand, TrackedArray):
                self._load_array(operand)
        data_args = [self._data_of(a) for a in args]
        kind = _UFUNC_KIND.get(uf.__name__, "mul")
        if out is not None:
            if not isinstance(out, TrackedArray):
                raise NotCountable("out= target must be an array")
            try:
                uf(*data_args, out=out.data)
            except Exception as exc:
                raise NotCountable(f"ufunc {uf.__name__} failed: {exc}") from None
            self._store_ids(out.ids, out.meta.ephemeral)
            self._charge_elems(out.data.dtype, kind, out.size)
            return out
        try:
            data = np.asarray(uf(*data_args))
        except Exception as exc:
            raise NotCountable(f"ufunc {uf.__name__} failed: {exc}") from None
        self._charge_elems(data.dtype, kind, data.size)
        return self._fresh(data, ephemeral=True)

    def _call_ufunc_method(self, method: _UfuncMethod, args, kwargs):
        uf, name = method.ufunc, method.name
        if kwargs:
            raise NotCountable(f"ufunc.{name} keywords not modeled")
        if name == "at":
            target, index = args[0], args[1]
            values = args[2] if len(args) > 2 else None
            if not isinstance(target, TrackedArray):
                raise NotCountable("ufunc.at target must be an array")
            rindex = self._realize_key(index)
            if isinstance(values, TrackedArray):
                self._load_array(values)
            sel_ids = target.ids[rindex]
            self._load_ids(sel_ids, target.meta.ephemeral)
            self._store_ids(sel_ids, target.meta.ephemeral)
            try:
                if values is None:
                    uf.at(target.data, rindex)
                else:
                    uf.at(target.data, rindex, self._data_of(values))
            except Exception as exc:
                raise NotCountable(f"ufunc.at failed: {exc}") from None
            self._charge_elems(target.data.dtype,
                               _UFUNC_KIND.get(uf.__name__, "mul"),
                               int(np.size(sel_ids)))
            return None
        # reduceat
        source, starts = args[0], args[1]
        for operand in (source, starts):
            if isinstance(operand, TrackedArray):
                self._load_array(operand)
        try:
            data = uf.reduceat(self._data_of(source),
                               np.asarray(self._data_of(starts), dtype=np.intp))
        except Exception as exc:
            raise NotCountable(f"ufunc.reduceat failed: {exc}") from None
        size = int(np.size(self._data_of(source)))
        self._charge_elems(np.asarray(data).dtype,
                           _UFUNC_KIND.get(uf.__name__, "mul"), size)
        return self._fresh(data, ephemeral=True)

    def _native_call(self, callee, args: tuple, kwargs: dict):
        """Execute an opaque native callable for real; charge operand loads."""
        if not callable(callee):
            raise NotCountable(f"{callee!r} is not callable")
        rargs = self._realize(list(args))
        rkwargs = {k: self._realize(v) for k, v in kwargs.items()}
        try:
            result = callee(*rargs, **rkwargs)
        except NotCountable:
            raise
        except Exception as exc:
            name = getattr(callee, "__name__", repr(callee))
            raise NotCountable(f"native call {name} failed: {exc}") from None
        return self._wrap_result(result)

    def _wrap_result(self, result):
        if isinstance(result, np.ndarray):
            return self._fresh(result, ephemeral=True)
        if isinstance(result, (list, tuple)):
            return type(result)(self._wrap_result(r) for r in result)
        return result

    # -- final accounting ---------------------------------------------------

    def charge_output(self, value) -> None:
        """The variant's return value is its output: charge its stores."""
        if isinstance(value, TrackedArray):
            flat = value.ids.ravel()
            self.stored.update(flat.tolist())
        elif isinstance(value, (list, tuple)):
            for item in value:
                self.charge_output(item)

    def estimate(self, variant_name: str) -> WorkEstimate:
        return WorkEstimate(
            variant=variant_name, countable=True,
            flops=self.flops,
            loads_bytes=self._bytes(self.loaded),
            stores_bytes=self._bytes(self.stored),
            int_ops=self.int_ops,
        )


# ---------------------------------------------------------------------------
# numpy call handlers (beyond the generic native fallback)
# ---------------------------------------------------------------------------


def _template_shape_dtype(interp, value, dtype_kw):
    data = interp._data_of(value)
    shape = np.asarray(data).shape
    dtype = dtype_kw if dtype_kw is not None else np.asarray(data).dtype
    return shape, dtype


def _h_alloc(ephemeral: bool, fill: Callable):
    def handler(interp: _Interp, args, kwargs):
        rargs = interp._realize(list(args), charge=False)
        rkwargs = {k: interp._realize(v, charge=False)
                   for k, v in kwargs.items()}
        try:
            data = fill(*rargs, **rkwargs)
        except Exception as exc:
            raise NotCountable(f"allocation failed: {exc}") from None
        return interp._fresh(data, ephemeral=ephemeral)
    return handler


def _h_alloc_like(fill: Callable):
    def handler(interp: _Interp, args, kwargs):
        dtype = kwargs.get("dtype")
        shape, dt = _template_shape_dtype(interp, args[0], dtype)
        return interp._fresh(fill(shape, dtype=dt), ephemeral=False)
    return handler


def _h_asarray(interp: _Interp, args, kwargs):
    value = args[0]
    dtype = kwargs.get("dtype", args[1] if len(args) > 1 else None)
    if isinstance(value, TrackedArray):
        if dtype is None or np.dtype(dtype) == value.dtype:
            return value  # no copy, no traffic
        interp._load_array(value)
        return interp._fresh(value.data.astype(dtype), ephemeral=True)
    data = np.asarray(interp._realize(value), dtype=dtype)
    return interp._fresh(data, ephemeral=True)


def _h_copyto(interp: _Interp, args, kwargs):
    dst, src = args[0], args[1]
    if not isinstance(dst, TrackedArray):
        raise NotCountable("np.copyto destination must be an array")
    if isinstance(src, TrackedArray):
        interp._load_array(src)
    interp._store_ids(dst.ids, dst.meta.ephemeral)
    np.copyto(dst.data, interp._data_of(src))
    return None


def _h_sum(interp: _Interp, args, kwargs):
    value = args[0]
    axis = kwargs.get("axis", args[1] if len(args) > 1 else None)
    if not isinstance(value, TrackedArray):
        return interp._native_call(np.sum, args, kwargs)
    interp._load_array(value)
    kind = "add"
    if axis is None:
        result = np.sum(value.data)
        interp._charge_elems(value.data.dtype, kind, max(value.size - 1, 0))
        return result.item() if hasattr(result, "item") else result
    data = np.sum(value.data, axis=interp._realize(axis, charge=False))
    interp._charge_elems(value.data.dtype, kind, value.size)
    return interp._fresh(data, ephemeral=True)


def _build_np_handlers() -> dict:
    handlers = {
        np.zeros: _h_alloc(False, np.zeros),
        np.ones: _h_alloc(False, np.ones),
        np.full: _h_alloc(False, np.full),
        # np.empty contents are unspecified; zeros keep the shadow run
        # deterministic without changing the traffic accounting
        np.empty: _h_alloc(False, lambda *a, **k: np.zeros(*a, **k)),
        np.arange: _h_alloc(True, np.arange),  # an index temp, not a buffer
        np.zeros_like: _h_alloc_like(np.zeros),
        np.empty_like: _h_alloc_like(np.zeros),
        np.ones_like: _h_alloc_like(np.ones),
        np.asarray: _h_asarray,
        np.array: _h_asarray,
        np.ascontiguousarray: _h_asarray,
        np.copyto: _h_copyto,
        np.sum: _h_sum,
    }
    return handlers


_NP_HANDLERS = _build_np_handlers()

#: callables whose cost we refuse to guess at (no source, nontrivial model)
_OPAQUE_CALLS = {
    np.fft.fft: "np.fft.fft is an opaque library call with no countable source",
    np.fft.ifft: "np.fft.ifft is an opaque library call with no countable source",
}


def _b_minmax(fn):
    def handler(interp: _Interp, args, kwargs):
        if len(args) == 1 and isinstance(args[0], TrackedArray):
            arr = args[0]
            interp._load_array(arr)
            result = getattr(np, fn.__name__)(arr.data)
            interp._charge_elems(arr.data.dtype, "add", max(arr.size - 1, 0))
            return result.item() if hasattr(result, "item") else result
        # the scalar builtin, e.g. min(i0 + tile, n) in tiled loop bounds
        return interp._native_call(fn, args, kwargs)
    return handler


def _b_isinstance(interp: _Interp, args, kwargs):
    value, classinfo = args[0], args[1]
    if isinstance(value, TrackedArray):
        value = value.data
    try:
        return isinstance(value, classinfo)
    except Exception as exc:
        raise NotCountable(f"isinstance failed: {exc}") from None


def _b_zip(interp: _Interp, args, kwargs):
    iterators = [list(interp._iterate(a)) for a in args]
    return [tuple(items) for items in zip(*iterators)]


def _b_enumerate(interp: _Interp, args, kwargs):
    start = int(interp._realize(args[1])) if len(args) > 1 else \
        int(interp._realize(kwargs.get("start", 0)))
    return list(enumerate(interp._iterate(args[0]), start))


def _b_list(interp: _Interp, args, kwargs):
    if not args:
        return []
    return list(interp._iterate(args[0]))


def _b_tuple(interp: _Interp, args, kwargs):
    if not args:
        return ()
    return tuple(interp._iterate(args[0]))


_BUILTIN_HANDLERS = {
    min: _b_minmax(min), max: _b_minmax(max), isinstance: _b_isinstance,
    zip: _b_zip, enumerate: _b_enumerate, list: _b_list, tuple: _b_tuple,
}


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------


def default_probes() -> dict[str, ProbeSpec]:
    """Probe specs for every shipped kernel family (fixed seeds, tiny sizes)."""
    from ..kernels.fft import random_signal
    from ..kernels.gameoflife import random_board
    from ..kernels.histogram import random_keys
    from ..kernels.matmul import random_matrices
    from ..kernels.spmv import random_sparse
    from ..kernels.stencil import init_grid
    from ..kernels.stream import stream_arrays

    def matmul(name):
        a, b, c = random_matrices(8, seed=0)
        return (a, b, c), (8,)

    def spmv(name):
        coo = random_sparse(12, density=0.25, seed=1)
        if name.startswith("csr"):
            mat = coo.to_csr()
        elif name.startswith("csc"):
            mat = coo.to_csc()
        else:
            mat = coo
        x = np.random.default_rng(3).standard_normal(12)
        return (mat, x), (mat,)

    def stencil(name):
        src = init_grid(10)
        dst = np.zeros_like(src)
        return (src, dst), (10,)

    def histogram(name):
        keys = random_keys(96, 8, seed=0)
        return (keys, 8), (96, 8)

    def stream(name):
        a, b, c = stream_arrays(64, seed=0)
        by_op = {"copy": (a, c), "scale": (c, b),
                 "add": (a, b, c), "triad": (a, b, c)}
        # match on the leading operation so derived variants
        # ("triad_scalar", "triad_scalar.auto_l001") share their op's probe
        try:
            args = by_op[name.split("_")[0].split(".")[0]]
        except KeyError:
            raise NotCountable(f"no stream probe for variant {name!r}") from None
        return args, args

    def gameoflife(name):
        board = random_board(10, seed=2)
        return (board,), (10,)

    def fft(name):
        x = random_signal(16, seed=0)
        return (x,), (16,)

    return {
        "matmul": ProbeSpec("matmul", matmul, "8x8 dense operands"),
        "spmv": ProbeSpec("spmv", spmv, "12x12, density 0.25"),
        "stencil": ProbeSpec("stencil", stencil, "10x10 heat plate"),
        "histogram": ProbeSpec("histogram", histogram, "96 keys, 8 bins"),
        "stream": ProbeSpec("stream", stream, "length-64 arrays"),
        "gameoflife": ProbeSpec("gameoflife", gameoflife, "10x10 board"),
        "fft": ProbeSpec("fft", fft, "length-16 signal"),
    }


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def estimate_variant(variant, fn_args: tuple) -> WorkEstimate:
    """Statically interpret one variant over probe args; never executes it."""
    interp = _Interp()
    try:
        result = interp.run(variant.fn, tuple(fn_args))
        interp.charge_output(result)
    except NotCountable as exc:
        return WorkEstimate(variant=variant.qualified_name, countable=False,
                            reason=str(exc))
    except RecursionError:
        return WorkEstimate(variant=variant.qualified_name, countable=False,
                            reason="interpreter recursion limit")
    return interp.estimate(variant.qualified_name)


def estimate_registry(registry=None, probes: Mapping[str, ProbeSpec] | None = None,
                      kernel: str | None = None) -> dict[str, WorkEstimate]:
    """Static work estimates for every (probed) registered variant."""
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    if probes is None:
        probes = default_probes()
    out: dict[str, WorkEstimate] = {}
    for variant in _select(registry, kernel):
        spec = probes.get(variant.kernel)
        if spec is None:
            continue
        try:
            fn_args, _ = spec.build(variant.name)
        except NotCountable as exc:
            out[variant.qualified_name] = WorkEstimate(
                variant=variant.qualified_name, countable=False, reason=str(exc))
            continue
        out[variant.qualified_name] = estimate_variant(variant, fn_args)
    return out


def _ratio(estimated: float, declared: float) -> float:
    """Symmetric divergence factor (>= 1); inf when only one side is zero."""
    if estimated <= 0 and declared <= 0:
        return 1.0
    if estimated <= 0 or declared <= 0:
        return float("inf")
    return max(estimated / declared, declared / estimated)


def verify_workcounts(registry=None,
                      probes: Mapping[str, ProbeSpec] | None = None,
                      kernel: str | None = None,
                      tolerance: float = 2.0) -> AnalysisReport:
    """Cross-check every variant's declared WorkCount against its source.

    A variant whose estimated FLOPs or total bytes diverge from the
    declared model by ``tolerance``x or more yields a ``W001`` error —
    downgraded to info when the variant declares ``workcount_expect``
    metadata explaining the divergence.
    """
    if tolerance <= 1.0:
        raise ValueError("tolerance must exceed 1")
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    if probes is None:
        probes = default_probes()
    tracer = get_tracer()
    report = AnalysisReport()
    variants = _select(registry, kernel)
    with tracer.span("analyze.workcount", category="analyze",
                     variants=len(variants)):
        for variant in variants:
            for finding in _verify_one(variant, probes, tolerance):
                report.add(finding)
        tracer.count("analyze.workcount_findings", len(report))
    return report


def verify_variant(variant, probes: Mapping[str, ProbeSpec] | None = None,
                   tolerance: float = 2.0) -> list[Finding]:
    """Work-count findings for one variant (the per-variant gate).

    The single-variant entry point :mod:`repro.transform` uses to re-derive
    and check a synthesized variant's WorkCount model: empty list means the
    declared model survives the shadow interpreter at ``tolerance``.
    """
    if tolerance <= 1.0:
        raise ValueError("tolerance must exceed 1")
    return _verify_one(variant, probes if probes is not None
                       else default_probes(), tolerance)


def _verify_one(variant, probes, tolerance: float) -> list[Finding]:
    qname = variant.qualified_name
    spec = probes.get(variant.kernel)
    if spec is None:
        slug, severity, _ = WORKCOUNT_RULES["W002"]
        return [Finding("W002", slug, severity, qname,
                        f"no probe spec for kernel family {variant.kernel!r}",
                        source="workcount")]
    try:
        fn_args, work_args = spec.build(variant.name)
    except NotCountable as exc:
        slug, severity, _ = WORKCOUNT_RULES["W002"]
        return [Finding("W002", slug, severity, qname, str(exc),
                        source="workcount")]
    try:
        declared: WorkCount = variant.work(*work_args)
    except Exception as exc:
        slug = WORKCOUNT_RULES["W001"][0]
        return [Finding("W001", slug, "error", qname,
                        f"declared work model rejected the probe: {exc}",
                        source="workcount")]
    est = estimate_variant(variant, fn_args)
    if not est.countable:
        slug, severity, _ = WORKCOUNT_RULES["W000"]
        return [Finding("W000", slug, severity, qname, est.reason,
                        source="workcount")]
    expect = variant.metadata.get("workcount_expect")
    findings = []
    checks = []
    if declared.flops > 0 or est.flops > 0:
        checks.append(("flops", est.flops, declared.flops))
    checks.append(("bytes", est.bytes_total, declared.bytes_total))
    for quantity, estimated, stated in checks:
        factor = _ratio(estimated, stated)
        if factor < tolerance:
            continue
        slug = WORKCOUNT_RULES["W001"][0]
        severity = "info" if expect else "error"
        message = (f"static {quantity} estimate {estimated:.4g} vs declared "
                   f"{stated:.4g} ({factor:.2f}x, tolerance {tolerance:g}x)")
        if expect:
            message += f" — expected: {expect}"
        findings.append(Finding("W001", slug, severity, qname, message,
                                source="workcount"))
    return findings


def static_app_points(registry=None,
                      probes: Mapping[str, ProbeSpec] | None = None,
                      kernel: str | None = None) -> list:
    """Roofline points from static estimates — no kernel is ever executed.

    Returns :class:`~repro.roofline.model.AppPoint` objects (model-only,
    no achieved performance) for every analyzable variant with nonzero
    FLOPs and traffic, ready for ``RooflineModel``/``ascii_roofline``.

    Since the dataflow tier landed, placement prefers its *moved*-traffic
    estimate (temporaries and re-reads included) over this module's
    compulsory-footprint number — a hidden temp chain now lowers a
    variant's static intensity the way it lowers the measured one.  The
    shadow-interpreter estimate remains the fallback for variants the
    abstract domain refuses.  See
    :func:`repro.analyze.dataflow.dataflow_app_points`.
    """
    from .dataflow import dataflow_app_points
    return dataflow_app_points(registry, probes, kernel)
