"""Unified finding/report model shared by every static-analysis pass.

A :class:`Finding` is one located diagnostic — rule id, slug, severity,
the variant (or worker) it concerns, and the source line it anchors to.
An :class:`AnalysisReport` aggregates findings across passes and renders
them as text (CLI) or JSON (CI artifacts); its :meth:`AnalysisReport.ok`
drives the exit-1 gate: only unsuppressed **error** findings fail it.

Severities
----------
``error``
    Contradiction between code and declared metadata (scalar loops in a
    variant claiming a vectorized bound, a work model off by ≥2x, a racy
    chunk write).  Fails the gate.
``warning``
    Likely performance defect worth a look; does not fail the gate.
``info``
    Advisory (idiom suggestions, uncountable-source notes).
``expected``
    A finding the variant *declared* via ``lint_expect`` metadata — the
    intentional "basic code" anti-patterns the course hands students.
    Kept in the report (so suppression is auditable) but never gating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["SEVERITIES", "Finding", "AnalysisReport"]

#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning", "info", "expected")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static-analysis pass.

    Attributes
    ----------
    rule:
        Stable rule id, e.g. ``"L001"``.
    slug:
        Human-memorable rule name, e.g. ``"scalar-loop"`` — the token
        ``lint_expect`` metadata matches against.
    severity:
        One of :data:`SEVERITIES`.
    variant:
        Qualified variant name (``"matmul.tiled"``) or worker label the
        finding is attributed to.
    message:
        One-line description with the concrete evidence.
    source:
        Pass that produced it: ``"lint"``, ``"workcount"``, ``"hazards"``.
    lineno:
        1-based line in the *function source* (0 when not anchored).
    col:
        0-based column of the anchoring node (0 when not anchored).
    end_lineno:
        1-based last line of the anchoring node (0 when not anchored) —
        together with ``lineno``/``col`` this gives rewrite tools like
        :mod:`repro.transform` a machine-usable source span.
    """

    rule: str
    slug: str
    severity: str
    variant: str
    message: str
    source: str = "lint"
    lineno: int = 0
    col: int = 0
    end_lineno: int = 0

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def gating(self) -> bool:
        """True when this finding should fail the analysis gate."""
        return self.severity == "error"

    def __str__(self) -> str:
        loc = f":{self.lineno}" if self.lineno else ""
        return (f"{self.severity.upper():>8s} {self.rule} [{self.slug}] "
                f"{self.variant}{loc}: {self.message}")


class AnalysisReport:
    """Ordered, deduplicated collection of findings from one analysis run."""

    def __init__(self, findings: list[Finding] | None = None):
        self._findings: list[Finding] = []
        self._seen: set[tuple] = set()
        for f in findings or []:
            self.add(f)

    def add(self, finding: Finding) -> None:
        key = (finding.rule, finding.variant, finding.lineno, finding.message)
        if key not in self._seen:
            self._seen.add(key)
            self._findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        for f in findings:
            self.add(f)

    @property
    def findings(self) -> list[Finding]:
        """Findings in deterministic order: severity rank, variant, line."""
        rank = {s: i for i, s in enumerate(SEVERITIES)}
        return sorted(self._findings,
                      key=lambda f: (rank[f.severity], f.variant, f.rule,
                                     f.lineno, f.message))

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity("error")

    @property
    def ok(self) -> bool:
        """True when nothing gates (no unsuppressed error findings)."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in SEVERITIES}
        for f in self._findings:
            out[f.severity] += 1
        return out

    def __len__(self) -> int:
        return len(self._findings)

    # -- renderers ----------------------------------------------------------

    def render_text(self, show_expected: bool = False) -> str:
        """Human-readable report; expected findings hidden by default."""
        lines = []
        for f in self.findings:
            if f.severity == "expected" and not show_expected:
                continue
            lines.append(str(f))
        c = self.counts()
        shown = len(lines)
        lines.append(f"analysis: {c['error']} error(s), {c['warning']} warning(s), "
                     f"{c['info']} info, {c['expected']} expected"
                     + ("" if show_expected or not c["expected"]
                        else " (hidden; --show-expected lists them)"))
        if not shown:
            lines.insert(0, "no findings")
        return "\n".join(lines)

    #: JSON document version; bump on any breaking payload-shape change so
    #: downstream report/service consumers can evolve safely.
    SCHEMA_VERSION = 1

    def to_json(self) -> str:
        """Stable JSON document (findings in deterministic order)."""
        payload = {
            "schema_version": self.SCHEMA_VERSION,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [asdict(f) for f in self.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
