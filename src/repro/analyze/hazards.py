"""Shared-memory hazard detector for chunked parallel workers.

The chunked kernel variants decompose work into ``(lo, hi)`` row/element
ranges and run a module-level *worker* per range through
:mod:`repro.parallel.backends`; operands travel as shared-memory views.
That contract is easy to break silently: a worker whose write range
escapes ``[lo, hi)`` races with its neighbours, a worker accumulating
into a shared array at data-dependent indices loses updates (the
histogram-without-privatization bug class), and a worker defined as a
closure over mutable state sees a *copy* of that state in each process
and diverges without any error.

This pass analyzes worker source statically.  It tracks which local
names are **shared views** (bound from a handle's ``.array``), which are
**private** (locally allocated, or views sliced by the chunk bounds),
and evaluates every write's leading index as a symbolic interval over
``lo``/``hi``.  A write is *safe* when provably inside ``[lo, hi)``,
a *hazard* when provably escaping or when fully independent of the
chunk bounds, and left alone when anchored to the bounds but not
statically resolvable (e.g. ``y[lo + nonempty]``).

Rules
-----
``H001`` overlapping-chunk-write (error)
    A plain store to a shared view whose index range provably escapes
    ``[lo, hi)`` — or ignores the bounds entirely, so every chunk writes
    the same cells.
``H002`` unprivatized-accumulation (error)
    A read-modify-write (``+=`` and friends) on a shared view at indices
    not derived from the chunk bounds: concurrent chunks lose updates.
``H003`` closure-capture (error)
    The worker closes over a mutable object (ndarray, list, dict, set);
    process workers mutate private copies that silently diverge.
``H004`` unpicklable-worker (warning)
    The worker is a lambda or nested function — the process backend
    cannot pickle it, so the variant is quietly thread/serial-only.
"""

from __future__ import annotations

import ast
import inspect
from typing import Callable

from ..observe import get_tracer
from .lint import _select, function_ast
from .report import AnalysisReport, Finding

__all__ = ["HAZARD_RULES", "analyze_worker", "find_workers", "hazards_registry",
           "hazards_variant"]

#: rule id -> (slug, default severity, summary)
HAZARD_RULES = {
    "H001": ("overlapping-chunk-write", "error",
             "write to a shared view escapes or ignores the chunk bounds"),
    "H002": ("unprivatized-accumulation", "error",
             "read-modify-write on a shared view at chunk-independent indices"),
    "H003": ("closure-capture", "error",
             "worker closes over mutable state that diverges across processes"),
    "H004": ("unpicklable-worker", "warning",
             "worker cannot be pickled for the process backend"),
}

_MUTABLE = (list, dict, set, bytearray)


# ---------------------------------------------------------------------------
# symbolic bounds: values as intervals over the lo/hi chunk symbols
# ---------------------------------------------------------------------------

#: one interval endpoint: ("lo"|"hi"|"const", offset) or None = unknown
_Bound = tuple[str, int] | None


class _Interval:
    """Closed interval [low, high] over {lo, hi, const} + integer offset."""

    __slots__ = ("low", "high", "anchored")

    def __init__(self, low: _Bound, high: _Bound, anchored: bool):
        self.low = low
        self.high = high
        #: True when the value derives from lo/hi at all (even unresolvably)
        self.anchored = anchored

    @classmethod
    def unknown(cls, anchored: bool = False) -> "_Interval":
        return cls(None, None, anchored)

    def shift(self, delta: int) -> "_Interval":
        low = (self.low[0], self.low[1] + delta) if self.low else None
        high = (self.high[0], self.high[1] + delta) if self.high else None
        return _Interval(low, high, self.anchored)


def _const(value: int) -> _Interval:
    return _Interval(("const", value), ("const", value), anchored=False)


class _WriteCheck:
    """Classify one write's leading index against the chunk contract.

    Outcomes: ``"safe"`` (provably inside ``[lo, hi)``), ``"overlap"``
    (provably escapes, or fully chunk-independent), ``"anchored"``
    (references the bounds but not resolvable — assumed partitioned).
    """

    @staticmethod
    def classify(interval: _Interval) -> str:
        low, high = interval.low, interval.high
        if low is not None and high is not None:
            lo_ok = low[0] == "lo" and low[1] >= 0
            hi_ok = high[0] == "hi" and high[1] <= -1
            if lo_ok and hi_ok:
                return "safe"
            # a fully-constant index hits the same cell in every chunk
            if low[0] == "const" and high[0] == "const":
                return "overlap"
            if (low[0] == "lo" and low[1] < 0) or \
                    (high[0] == "hi" and high[1] >= 0):
                return "overlap"
            return "anchored"
        return "anchored" if interval.anchored else "overlap"


class _WorkerScanner(ast.NodeVisitor):
    """Single forward pass over a worker body tracking view provenance."""

    def __init__(self, node: ast.FunctionDef, bounds_param: str):
        self.node = node
        self.bounds_param = bounds_param
        self.lo_name: str | None = None
        self.hi_name: str | None = None
        self.shared: set[str] = set()       # whole shared views
        self.private: set[str] = set()      # local allocations / chunk slices
        self.handles: set[str] = {a.arg for a in node.args.posonlyargs + node.args.args}
        self.loop_vars: dict[str, _Interval] = {}
        self.findings: list[tuple[str, int, str]] = []  # (rule, lineno, msg)

    # -- value provenance ---------------------------------------------------

    def _is_handle_array(self, node) -> bool:
        """True for ``<param>.array`` — the shared-view access idiom."""
        return (isinstance(node, ast.Attribute) and node.attr == "array"
                and isinstance(node.value, ast.Name)
                and node.value.id in self.handles)

    def _eval(self, node) -> _Interval:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return _const(node.value)
        if isinstance(node, ast.Name):
            if node.id == self.lo_name:
                return _Interval(("lo", 0), ("lo", 0), anchored=True)
            if node.id == self.hi_name:
                return _Interval(("hi", 0), ("hi", 0), anchored=True)
            if node.id in self.loop_vars:
                return self.loop_vars[node.id]
            return _Interval.unknown()
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = self._eval(node.left), self._eval(node.right)
            sign = 1 if isinstance(node.op, ast.Add) else -1
            if right.low is not None and right.low == right.high \
                    and right.low[0] == "const":
                return left.shift(sign * right.low[1])
            if isinstance(node.op, ast.Add) and left.low is not None \
                    and left.low == left.high and left.low[0] == "const":
                return right.shift(left.low[1])
            return _Interval.unknown(anchored=left.anchored or right.anchored)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._eval(node.operand)
            return _Interval.unknown(anchored=inner.anchored)
        if isinstance(node, ast.Subscript):
            # a loaded *value* is data-dependent no matter where it was
            # loaded from — counts[keys[p]] is the histogram race even
            # though p itself is partition-safe
            return _Interval.unknown(anchored=False)
        anchored = any(isinstance(sub, ast.Name)
                       and (sub.id in (self.lo_name, self.hi_name)
                            or (sub.id in self.loop_vars
                                and self.loop_vars[sub.id].anchored))
                       for sub in ast.walk(node))
        return _Interval.unknown(anchored=anchored)

    def _leading_index(self, slice_node) -> _Interval:
        """Interval covered by the *first axis* of a subscript index."""
        node = slice_node.elts[0] if isinstance(slice_node, ast.Tuple) \
            and slice_node.elts else slice_node
        if isinstance(node, ast.Slice):
            if node.lower is None and node.upper is None:
                # x[:] — the whole axis, in every chunk
                return _Interval(("const", 0), None, anchored=False)
            lower = self._eval(node.lower) if node.lower else _const(0)
            if node.upper is None:
                return _Interval(lower.low, None,
                                 anchored=lower.anchored)
            upper = self._eval(node.upper)
            # slice covers [lower, upper - 1]
            return _Interval(lower.low,
                             upper.shift(-1).high,
                             anchored=lower.anchored or upper.anchored)
        return self._eval(node)

    # -- statement handling -------------------------------------------------

    def _note_binding(self, target, value) -> None:
        """Track what a plain ``name = value`` binding makes of ``name``."""
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if self._is_handle_array(value):
            self.shared.add(name)
            self.private.discard(name)
            return
        if isinstance(value, ast.Subscript) and self._is_handle_array(value.value):
            # a slice of a shared view: private iff provably inside the chunk
            outcome = _WriteCheck.classify(self._leading_index(value.slice))
            (self.private if outcome == "safe" else self.shared).add(name)
            return
        if isinstance(value, ast.Call):
            self.private.add(name)  # locally built object (np.zeros, ...)
            self.shared.discard(name)
            return
        if isinstance(value, ast.Name) and value.id in self.shared:
            self.shared.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        # `lo, hi = bounds` — learn the chunk-bound names
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == self.bounds_param \
                    and len(target.elts) == 2 \
                    and all(isinstance(e, ast.Name) for e in target.elts):
                self.lo_name = target.elts[0].id
                self.hi_name = target.elts[1].id
            elif isinstance(target, (ast.Tuple, ast.List)) \
                    and isinstance(node.value, (ast.Tuple, ast.List)) \
                    and len(target.elts) == len(node.value.elts):
                for sub, val in zip(target.elts, node.value.elts):
                    self._note_binding(sub, val)
            else:
                self._note_binding(target, node.value)
        for target in node.targets:
            self._check_write(target, augmented=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target, augmented=True)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.loop_vars[node.target.id] = self._loop_interval(node.iter)
        self.generic_visit(node)

    def _loop_interval(self, iter_node) -> _Interval:
        if isinstance(iter_node, ast.Call) \
                and isinstance(iter_node.func, ast.Name) \
                and iter_node.func.id == "range" and not iter_node.keywords:
            args = iter_node.args
            if len(args) == 1:
                start, stop = _const(0), self._eval(args[0])
            elif len(args) >= 2:
                start, stop = self._eval(args[0]), self._eval(args[1])
            else:
                return _Interval.unknown()
            # i in range(a, b)  =>  i in [a, b - 1]
            return _Interval(start.low, stop.shift(-1).high,
                             anchored=start.anchored or stop.anchored)
        return _Interval.unknown()

    # -- write classification -----------------------------------------------

    def _write_target_shared(self, target, augmented: bool) -> tuple[bool, object]:
        """(is-shared, subscript-index-or-None) for a write target."""
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and base.id in self.shared:
                return True, target.slice
            if self._is_handle_array(base):
                return True, target.slice
            return False, None
        # a bare name is a *rebinding* under plain assignment; only an
        # augmented assignment (`view += part`) writes through the view
        if augmented and isinstance(target, ast.Name) and target.id in self.shared:
            return True, None
        return False, None

    def _check_write(self, target, augmented: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for sub in target.elts:
                self._check_write(sub, augmented)
            return
        is_shared, index = self._write_target_shared(target, augmented)
        if not is_shared:
            return
        if index is None:
            interval = _Interval(("const", 0), None, anchored=False)
        else:
            interval = self._leading_index(index)
        outcome = _WriteCheck.classify(interval)
        if outcome in ("safe", "anchored"):
            return
        lineno = getattr(target, "lineno", self.node.lineno)
        if augmented:
            self.findings.append((
                "H002", lineno,
                "read-modify-write on a shared view at indices not derived "
                "from the chunk bounds; privatize and merge instead"))
        else:
            self.findings.append((
                "H001", lineno,
                "store to a shared view escapes or ignores the chunk "
                "bounds [lo, hi) — concurrent chunks write the same cells"))


def _bounds_param_of(node: ast.FunctionDef, bounds_param: str | None) -> str:
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    if bounds_param is not None:
        return bounds_param
    for name in params:
        if name == "bounds":
            return name
    return params[-1] if params else ""


def analyze_worker(fn: Callable, label: str | None = None,
                   bounds_param: str | None = None) -> list[Finding]:
    """Hazard findings for one chunked worker function.

    ``bounds_param`` names the parameter receiving the ``(lo, hi)`` chunk
    tuple; defaults to a parameter named ``bounds``, else the last one
    (the ``partial(worker, ...presets..., bounds)`` mapping convention).
    """
    label = label or getattr(fn, "__qualname__", repr(fn))
    findings: list[Finding] = []

    qualname = getattr(fn, "__qualname__", "")
    if "<locals>" in qualname or getattr(fn, "__name__", "") == "<lambda>":
        slug, severity, _ = HAZARD_RULES["H004"]
        findings.append(Finding(
            "H004", slug, severity, label,
            "worker is a lambda or nested function; the process backend "
            "cannot pickle it — define it at module level",
            source="hazards"))

    closure = getattr(fn, "__closure__", None) or ()
    freevars = getattr(getattr(fn, "__code__", None), "co_freevars", ())
    for name, cell in zip(freevars, closure):
        try:
            value = cell.cell_contents
        except ValueError:  # empty cell
            continue
        if isinstance(value, _MUTABLE) or type(value).__name__ == "ndarray":
            slug, severity, _ = HAZARD_RULES["H003"]
            findings.append(Finding(
                "H003", slug, severity, label,
                f"worker captures mutable {type(value).__name__} {name!r} by "
                "closure; each process mutates a private copy that silently "
                "diverges — pass it through a shared handle instead",
                source="hazards"))

    node = function_ast(fn)
    if node is None:
        return findings
    scanner = _WorkerScanner(node, _bounds_param_of(node, bounds_param))
    scanner.visit(node)
    for rule, lineno, message in scanner.findings:
        slug, severity, _ = HAZARD_RULES[rule]
        findings.append(Finding(rule, slug, severity, label, message,
                                source="hazards", lineno=lineno))
    return findings


# ---------------------------------------------------------------------------
# worker discovery: variants that fan out via ex.map(partial(worker, ...))
# ---------------------------------------------------------------------------


def find_workers(variant) -> list[Callable]:
    """Worker functions a variant ships to its execution backend.

    Detects the repo's fan-out idiom — ``ex.map(partial(<worker>, ...),
    bounds)`` or ``ex.map(<worker>, bounds)`` — and resolves the worker
    name in the variant's module globals.
    """
    node = function_ast(variant.fn)
    if node is None:
        return []
    names: list[str] = []
    for call in ast.walk(node):
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "map" and call.args):
            continue
        first = call.args[0]
        if isinstance(first, ast.Call) and isinstance(first.func, ast.Name) \
                and first.func.id == "partial" and first.args \
                and isinstance(first.args[0], ast.Name):
            names.append(first.args[0].id)
        elif isinstance(first, ast.Name):
            names.append(first.id)
    module_globals = getattr(variant.fn, "__globals__", {})
    workers = []
    for name in names:
        fn = module_globals.get(name)
        if callable(fn) and fn not in workers:
            workers.append(fn)
    return workers


def hazards_variant(variant) -> list[Finding]:
    """Hazard findings for every worker one variant fans out to."""
    findings: list[Finding] = []
    for worker in find_workers(variant):
        findings.extend(
            analyze_worker(worker,
                           label=f"{variant.qualified_name} "
                                 f"[{getattr(worker, '__name__', 'worker')}]"))
    return findings


def hazards_registry(registry=None, kernel: str | None = None) -> AnalysisReport:
    """Sweep every registered variant's chunked workers for hazards."""
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    tracer = get_tracer()
    report = AnalysisReport()
    variants = _select(registry, kernel)
    with tracer.span("analyze.hazards", category="analyze",
                     variants=len(variants)):
        for variant in variants:
            for finding in hazards_variant(variant):
                report.add(finding)
        tracer.count("analyze.hazards_findings", len(report))
    return report
