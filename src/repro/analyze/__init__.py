"""Source-level static performance analysis for registered kernels.

Four cooperating passes sweep every :class:`~repro.kernels.base.KernelVariant`
in the registry, entirely from source — no kernel is ever executed:

* :mod:`repro.analyze.lint` — performance anti-pattern linter (``L*`` rules),
* :mod:`repro.analyze.workcount` — AST work-count verifier cross-checking
  declared :class:`~repro.timing.metrics.WorkCount` models (``W*`` rules),
* :mod:`repro.analyze.dataflow` — abstract-interpretation dataflow tier:
  shapes, dtypes, moved traffic, temp lifetimes (``L007``–``L010``,
  ``D*`` rules) plus the static-vs-dynamic cross-check,
* :mod:`repro.analyze.hazards` — shared-memory hazard detector for chunked
  parallel workers (``H*`` rules).

``python -m repro.analyze all`` runs everything and exits 1 on any
error-severity finding — the CI analysis gate.
"""

from .dataflow import (DATAFLOW_LINT_RULES, DATAFLOW_RULES, DATAFLOW_SLUGS,
                       DataflowEstimate, NotAnalyzable, StatementCost,
                       check_transform_facts, crosscheck_registry,
                       crosscheck_variant, dataflow_app_points,
                       dataflow_estimate, dataflow_registry, dataflow_variant,
                       estimate_dataflow_registry)
from .hazards import (HAZARD_RULES, analyze_worker, find_workers,
                      hazards_registry, hazards_variant)
from .lint import LINT_RULES, function_ast, lint_registry, lint_variant
from .report import SEVERITIES, AnalysisReport, Finding
from .workcount import (WORKCOUNT_RULES, NotCountable, ProbeSpec, WorkEstimate,
                        default_probes, estimate_registry, estimate_variant,
                        static_app_points, verify_variant, verify_workcounts)

__all__ = [
    "SEVERITIES", "Finding", "AnalysisReport",
    "LINT_RULES", "lint_variant", "lint_registry", "function_ast",
    "WORKCOUNT_RULES", "NotCountable", "WorkEstimate", "ProbeSpec",
    "default_probes", "estimate_variant", "estimate_registry",
    "verify_workcounts", "verify_variant", "static_app_points",
    "DATAFLOW_RULES", "DATAFLOW_LINT_RULES", "DATAFLOW_SLUGS",
    "NotAnalyzable", "DataflowEstimate", "StatementCost",
    "dataflow_estimate", "dataflow_variant", "dataflow_registry",
    "estimate_dataflow_registry", "crosscheck_variant", "crosscheck_registry",
    "check_transform_facts", "dataflow_app_points",
    "HAZARD_RULES", "analyze_worker", "find_workers", "hazards_variant",
    "hazards_registry",
    "analyze_all",
]


def analyze_all(registry=None, kernel: str | None = None) -> AnalysisReport:
    """Run all four passes and merge their findings into one report."""
    report = AnalysisReport()
    report.extend(lint_registry(registry, kernel=kernel).findings)
    report.extend(verify_workcounts(registry, kernel=kernel).findings)
    report.extend(dataflow_registry(registry, kernel=kernel).findings)
    report.extend(hazards_registry(registry, kernel=kernel).findings)
    return report
