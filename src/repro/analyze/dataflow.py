"""Abstract-interpretation dataflow tier: shapes, dtypes, traffic — statically.

The shadow interpreter (:mod:`repro.analyze.workcount`) answers *"does the
declared model match the source?"* by replaying a variant on a concrete
probe and counting compulsory (unique-cell) traffic.  This tier asks the
deeper static questions the course's modeling assignments pose *before*
anything is measured:

* what **shape and dtype** does every intermediate have (NumPy promotion
  rules included), given only the probe metadata?
* how many **bytes actually move** — every load, every store, every hidden
  temporary — not just the compulsory footprint?
* which statements **allocate-and-drop temporaries**, silently widen a
  float operand, force a copy through fancy indexing, or blow a broadcast
  up far past its operands?

The interpreter is a *hybrid* abstract domain over the same cell-id
machinery as the shadow pass: integer/boolean payloads stay concrete (loop
bounds, index structure and shapes resolve exactly from probe metadata),
while float/complex payloads are treated as **abstract** — their values may
flow through arithmetic, but any attempt to let them steer the analysis
(branching on a float comparison, indexing with data-derived values,
``int()``-laundering a float into a loop bound) refuses with a ``D000``
rather than guessing.  Because every footprint charge is inherited
unchanged from the shadow interpreter, the static-vs-dynamic cross-check
(``D001``) holds *by construction* wherever both tiers cover a variant —
exactly the property the stale-model detector needs.

Two traffic models come out of one pass:

``footprint``
    Unique cells touched — the shadow interpreter's compulsory-traffic
    number, used for the W001/D001 cross-checks.
``moved``
    Every element read or written, temporaries and re-reads included — the
    pessimistic no-cache-reuse bound.  This is what
    :func:`dataflow_app_points` feeds the roofline: a chain of hidden
    temporaries now *lowers* a variant's static arithmetic intensity the
    same way it lowers its measured one.

Rules
-----
``L007`` hidden-temp-chain (warning)
    A single statement allocates ≥2 temporary arrays that die inside it —
    the ``out=`` / in-place opportunity, measured rather than pattern-matched.
``L008`` silent-upcast (warning)
    An operation widens a float/complex operand (e.g. float32 ⊕ float64 →
    float64), doubling traffic for every downstream consumer.
``L009`` copy-index (warning)
    A fancy-index gather / ``.copy()`` / non-contiguous reshape /
    ``np.ascontiguousarray`` pattern forces an avoidable full copy.
``L010`` broadcast-blowup (warning)
    An elementwise result is ≥4x larger than every array operand —
    broadcasting materialized something no operand holds.
``D000`` not-analyzable (info)
    The source escapes the abstract domain (opaque calls, ``with``,
    control flow on abstract float data).
``D001`` static-divergence (error)
    Dataflow and shadow-interpreter estimates disagree by ≥2x — one of the
    two static tiers is stale.  ``dataflow_expect`` metadata downgrades to
    info with the recorded reason.
``D002`` no-probe (info)
    No probe spec for the variant's kernel family.

Precision boundary: integer results of opaque native calls over float data
(``np.argmax`` and friends) are trusted as structure.  This is a deliberate
precision/soundness trade — the cross-check against the shadow interpreter
still holds exactly, but such a variant's estimate is probe-dependent.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..observe import get_tracer
from .lint import _select
from .report import AnalysisReport, Finding
from .workcount import (_BUILTIN_HANDLERS, _STRIDE, _UFUNC_KIND, _Interp,
                        _Return, _ratio, NotCountable, ProbeSpec, TrackedArray,
                        default_probes, estimate_variant)

__all__ = [
    "NotAnalyzable",
    "DATAFLOW_RULES",
    "DATAFLOW_LINT_RULES",
    "DATAFLOW_SLUGS",
    "StatementCost",
    "DataflowEstimate",
    "dataflow_estimate",
    "dataflow_variant",
    "dataflow_registry",
    "estimate_dataflow_registry",
    "crosscheck_variant",
    "crosscheck_registry",
    "check_transform_facts",
    "dataflow_app_points",
]

#: rule id -> (slug, default severity, summary)
DATAFLOW_RULES = {
    "L007": ("hidden-temp-chain", "warning",
             "statement allocates and drops multiple temporary arrays"),
    "L008": ("silent-upcast", "warning",
             "operation silently widens a float/complex operand"),
    "L009": ("copy-index", "warning",
             "fancy-index/transpose pattern forces an avoidable copy"),
    "L010": ("broadcast-blowup", "warning",
             "broadcast result dwarfs every array operand"),
    "D000": ("not-analyzable", "info",
             "variant source escapes the abstract interpreter"),
    "D001": ("static-divergence", "error",
             "dataflow and shadow-interpreter estimates disagree"),
    "D002": ("no-probe", "info",
             "no probe spec for this kernel family; variant skipped"),
}

#: the lint-style rule ids this tier owns (registered in LINT_RULES too so
#: lint_expect metadata recognizes their slugs, but fired only from here)
DATAFLOW_LINT_RULES = frozenset({"L007", "L008", "L009", "L010"})

#: slugs of the dataflow-owned lint rules, for lint_expect bookkeeping
DATAFLOW_SLUGS = frozenset(
    DATAFLOW_RULES[r][0] for r in DATAFLOW_LINT_RULES)


class NotAnalyzable(NotCountable):
    """The variant's behaviour depends on concrete float data values."""


#: statement types that open a temp-lifetime window (leaf statements — the
#: only ones per-statement costs are attributed to)
_SIMPLE_STMTS = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return)


@dataclass
class _TempRec:
    """Lifetime record of one ephemeral (compiler-temporary) allocation."""

    base: int
    size: int
    nbytes: float
    copy_kind: str | None = None   # "gather" / "copy" when a forced copy
    named: bool = False            # bound to a name / escaped via return
    consumed: bool = False         # ever loaded by a later operation


@dataclass(frozen=True)
class StatementCost:
    """Per-statement cost attribution (source span of the variant body)."""

    lineno: int
    col: int
    end_lineno: int
    flops: float = 0.0
    int_ops: float = 0.0
    loads_bytes: float = 0.0
    stores_bytes: float = 0.0
    temp_allocs: int = 0
    temp_bytes: float = 0.0


@dataclass(frozen=True)
class DataflowEstimate:
    """Statically derived facts for one variant on one probe input.

    ``bytes_total`` is the **moved** traffic (every element read/written,
    temporaries included) so the estimate duck-types as a work model for
    :meth:`repro.roofline.model.AppPoint.from_estimate`; the compulsory
    footprint the W001/D001 cross-checks compare against is kept separately.
    """

    variant: str
    analyzable: bool
    flops: float = 0.0
    int_ops: float = 0.0
    footprint_loads_bytes: float = 0.0
    footprint_stores_bytes: float = 0.0
    moved_loads_bytes: float = 0.0
    moved_stores_bytes: float = 0.0
    temp_allocs: int = 0
    temp_bytes: float = 0.0
    result_dtype: str = ""
    result_shape: tuple = ()
    dim_bindings: tuple = ()
    statements: tuple = ()
    reason: str = ""

    @property
    def footprint_bytes(self) -> float:
        return self.footprint_loads_bytes + self.footprint_stores_bytes

    @property
    def bytes_total(self) -> float:
        """Moved bytes — the roofline-facing traffic number."""
        return self.moved_loads_bytes + self.moved_stores_bytes

    @property
    def intensity(self) -> float:
        """FLOP per *moved* byte — the pessimistic no-reuse intensity."""
        if self.bytes_total <= 0:
            return float("inf")
        return self.flops / self.bytes_total

    @property
    def footprint_intensity(self) -> float:
        """FLOP per compulsory byte — the optimistic perfect-cache bound."""
        if self.footprint_bytes <= 0:
            return float("inf")
        return self.flops / self.footprint_bytes


def _is_abstract_scalar(value) -> bool:
    return isinstance(value, (float, complex, np.floating, np.complexfloating))


def _component_bytes(dtype) -> int:
    """Itemsize per real component (complex128 -> 8, float32 -> 4)."""
    return dtype.itemsize // (2 if dtype.kind == "c" else 1)


class _DataflowInterp(_Interp):
    """Hybrid abstract interpreter layered over the concrete shadow pass.

    Inherits every footprint charge unchanged (the D001 cross-check holds
    by construction) and adds: moved-traffic accounting, temp lifetimes,
    per-statement attribution, float-data taint with refusal on abstract
    control flow, and the L007–L010 rule evidence.
    """

    def __init__(self, fuel: int = 3_000_000):
        super().__init__(fuel)
        self.moved_loads = 0.0
        self.moved_stores = 0.0
        self.temp_allocs = 0
        self.temp_bytes = 0.0
        self._temps: list[_TempRec] = []
        self._temp_recs: dict[int, _TempRec] = {}
        self._tainted: set[int] = set()     # bases holding abstract data
        self._evidence: list[tuple[str, int, int, int, str]] = []
        self._evi_seen: set[tuple[str, int]] = set()
        self._fn_stack: list[str] = []
        self._via: str | None = None
        self._anchor = (0, 0, 0)
        self._stmt: dict[tuple, list] = {}
        self._charge_fresh = True

    # -- evidence -----------------------------------------------------------

    def _evi(self, rule: str, message: str, anchor: tuple | None = None) -> None:
        lineno, col, end = anchor if anchor is not None else self._anchor
        key = (rule, lineno)
        if key in self._evi_seen:
            return
        self._evi_seen.add(key)
        if self._via:
            message = f"(via {self._via}) {message}"
        self._evidence.append((rule, lineno, col, end, message))

    # -- taint --------------------------------------------------------------

    def _taint_from(self, result, operands) -> None:
        if isinstance(result, TrackedArray) and any(
                isinstance(o, TrackedArray) and o.meta.base in self._tainted
                for o in operands):
            self._tainted.add(result.meta.base)

    def _taint_result(self, value) -> None:
        if isinstance(value, TrackedArray):
            self._tainted.add(value.meta.base)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._taint_result(item)

    def _any_tainted(self, values) -> bool:
        for value in values:
            if isinstance(value, TrackedArray):
                if value.meta.base in self._tainted:
                    return True
            elif isinstance(value, (list, tuple)):
                if self._any_tainted(value):
                    return True
        return False

    # -- allocation / traffic ----------------------------------------------

    def wrap(self, obj: np.ndarray) -> TrackedArray:
        prev = self._charge_fresh
        self._charge_fresh = False  # inputs are not materialized by the kernel
        try:
            arr = super().wrap(obj)
        finally:
            self._charge_fresh = prev
        if arr.dtype.kind in "fc":
            self._tainted.add(arr.meta.base)  # input float data is abstract
        return arr

    def _fresh(self, data, ephemeral: bool) -> TrackedArray:
        arr = super()._fresh(data, ephemeral)
        if self._charge_fresh:
            nbytes = float(arr.size * arr.meta.itemsize)
            self.moved_stores += nbytes  # materializing the buffer is traffic
            self._stmt_charge(3, nbytes)
            if ephemeral and arr.size > 1:
                rec = _TempRec(base=arr.meta.base, size=arr.size, nbytes=nbytes)
                self._temp_recs[arr.meta.base] = rec
                self._temps.append(rec)
                self.temp_allocs += 1
                self.temp_bytes += nbytes
        return arr

    def _load_ids(self, ids, ephemeral: bool) -> None:
        flat = np.asarray(ids).ravel()
        if flat.size:
            base = int(flat[0]) // _STRIDE
            nbytes = float(flat.size * self.itemsize[base])
            self.moved_loads += nbytes
            self._stmt_charge(2, nbytes)
            rec = self._temp_recs.get(base)
            if rec is not None:
                rec.consumed = True
        super()._load_ids(ids, ephemeral)

    def _store_ids(self, ids, ephemeral: bool) -> None:
        flat = np.asarray(ids).ravel()
        if flat.size:
            base = int(flat[0]) // _STRIDE
            self.moved_stores += float(flat.size * self.itemsize[base])
            self._stmt_charge(3, float(flat.size * self.itemsize[base]))
        super()._store_ids(ids, ephemeral)

    # -- statement attribution ----------------------------------------------

    def _row(self, anchor) -> list:
        # [flops, int_ops, loads_bytes, stores_bytes, temp_allocs, temp_bytes]
        return self._stmt.setdefault(anchor, [0.0, 0.0, 0.0, 0.0, 0, 0.0])

    def _stmt_charge(self, index: int, amount: float) -> None:
        if self._anchor != (0, 0, 0):
            self._row(self._anchor)[index] += amount

    def _exec(self, node, env) -> None:
        if len(self._fn_stack) != 1 or not hasattr(node, "lineno"):
            super()._exec(node, env)  # helper frame: keep the caller's anchor
            return
        anchor = (node.lineno, node.col_offset,
                  getattr(node, "end_lineno", None) or node.lineno)
        prev = self._anchor
        self._anchor = anchor
        simple = isinstance(node, _SIMPLE_STMTS)
        if simple:
            snap = (self.flops, self.int_ops)
            mark = len(self._temps)
        try:
            super()._exec(node, env)
        finally:
            self._anchor = prev
            if simple:
                row = self._row(anchor)
                row[0] += self.flops - snap[0]
                row[1] += self.int_ops - snap[1]
                self._close_window(anchor, mark)

    def _close_window(self, anchor, mark: int) -> None:
        """L007: ≥2 temporaries born and dropped inside one statement."""
        dying = [r for r in self._temps[mark:]
                 if r.size > 1 and r.consumed and not r.named]
        row = self._row(anchor)
        row[4] += len(self._temps) - mark
        if len(dying) >= 2:
            nbytes = int(sum(r.nbytes for r in dying))
            self._evi(
                "L007",
                f"{len(dying)} temporary arrays ({nbytes} bytes) are "
                f"allocated and dropped inside one statement; chain the "
                f"operations through out=/in-place updates instead",
                anchor=anchor)
        row[5] += sum(r.nbytes for r in self._temps[mark:])

    def _call_user(self, user, args: tuple, kwargs: dict):
        self._fn_stack.append(user.name)
        prev_via = self._via
        if len(self._fn_stack) == 2:  # first frame below the variant itself
            self._via = user.name
        try:
            return super()._call_user(user, args, kwargs)
        finally:
            self._fn_stack.pop()
            self._via = prev_via

    def _exec_Return(self, node, env) -> None:
        try:
            super()._exec_Return(node, env)
        except _Return as ret:
            self._mark_named(ret.value)  # the result escapes: not a dying temp
            raise

    # -- naming -------------------------------------------------------------

    def _mark_named(self, value) -> None:
        if isinstance(value, TrackedArray):
            rec = self._temp_recs.get(value.meta.base)
            if rec is not None:
                rec.named = True
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._mark_named(item)

    def _assign_target(self, target, value, env) -> None:
        if isinstance(target, ast.Name):
            self._mark_named(value)
        super()._assign_target(target, value, env)

    # -- abstract-data refusals ---------------------------------------------

    def _truth(self, value) -> bool:
        if _is_abstract_scalar(value):
            raise NotAnalyzable(
                "branch on abstract float data — the outcome depends on "
                "concrete values the abstract domain does not carry")
        return super()._truth(value)

    def _compare(self, op_node, left, right):
        if (not isinstance(op_node, (ast.Is, ast.IsNot, ast.In, ast.NotIn))
                and not isinstance(left, TrackedArray)
                and not isinstance(right, TrackedArray)
                and (_is_abstract_scalar(left) or _is_abstract_scalar(right))):
            raise NotAnalyzable(
                "scalar comparison on abstract float data — the result "
                "could steer control flow")
        arrays = [o for o in (left, right) if isinstance(o, TrackedArray)]
        result = super()._compare(op_node, left, right)
        if isinstance(result, TrackedArray):
            self._taint_from(result, arrays)
            self._rule_checks(result, arrays, "int")
        return result

    def _iterate(self, value):
        if (isinstance(value, TrackedArray) and value.ndim == 1
                and value.meta.base in self._tainted
                and value.dtype.kind not in "fc"):
            raise NotAnalyzable(
                "iteration over integer data derived from float values")
        return super()._iterate(value)

    def _realize_key(self, key):
        self._check_key_taint(key)
        return super()._realize_key(key)

    def _check_key_taint(self, key) -> None:
        if isinstance(key, (tuple, list)):
            for sub in key:
                self._check_key_taint(sub)
        elif isinstance(key, TrackedArray) and key.meta.base in self._tainted:
            raise NotAnalyzable(
                "data-dependent indexing: the index derives from abstract "
                "float data, so the access pattern is not static")

    # -- operation hooks (taint propagation + rule evidence) -----------------

    def _rule_checks(self, result: TrackedArray, arrays: list, kind: str) -> None:
        for operand in arrays:
            rec = self._temp_recs.get(operand.meta.base)
            if rec is not None and rec.copy_kind == "gather" and not rec.named:
                self._evi(
                    "L009",
                    "a fancy-index gather is consumed unnamed by a fresh "
                    "allocation; bind the gather once and update it in "
                    "place (*=, +=) or index into a preallocated buffer")
        if result.dtype.kind in "fc":
            res_comp = _component_bytes(result.dtype)
            for operand in arrays:
                if operand.dtype.kind in "fc" and \
                        _component_bytes(operand.dtype) < res_comp:
                    self._evi(
                        "L008",
                        f"{operand.dtype} operand is silently upcast to a "
                        f"{result.dtype} result — every downstream consumer "
                        f"pays the widened traffic; cast inputs once or use "
                        f"dtype-preserving ops")
                    break
        if kind != "matmul" and arrays:
            biggest = max(a.size for a in arrays)
            if result.size >= 32 and result.size >= 4 * biggest:
                self._evi(
                    "L010",
                    f"broadcast materializes a {result.size}-element result "
                    f"from operands of at most {biggest} elements; restructure "
                    f"to reduce before (or while) broadcasting")

    def _array_binop(self, kind, op, left, right):
        arrays = [o for o in (left, right) if isinstance(o, TrackedArray)]
        result = super()._array_binop(kind, op, left, right)
        self._taint_from(result, arrays)
        self._rule_checks(result, arrays, kind)
        return result

    def _getitem(self, arr: TrackedArray, key):
        result = super()._getitem(arr, key)
        if isinstance(result, TrackedArray):
            if result.meta is not arr.meta:  # fancy gather: a forced copy
                rec = self._temp_recs.get(result.meta.base)
                if rec is not None:
                    rec.copy_kind = "gather"
                self._taint_from(result, [arr])
            return result
        if arr.meta.base in self._tainted and arr.dtype.kind not in "fc":
            raise NotAnalyzable(
                "scalar read of integer data derived from float values")
        return result

    def _setitem(self, arr: TrackedArray, key, value) -> None:
        super()._setitem(arr, key, value)
        if isinstance(value, TrackedArray):
            self._taint_from(arr, [value])

    def _inplace(self, arr: TrackedArray, key, kind, op, rhs) -> None:
        super()._inplace(arr, key, kind, op, rhs)
        if isinstance(rhs, TrackedArray):
            self._taint_from(arr, [rhs])

    def _call_ufunc(self, uf: np.ufunc, args: tuple, kwargs: dict):
        out = kwargs.get("out")
        arrays = [a for a in args if isinstance(a, TrackedArray)]
        result = super()._call_ufunc(uf, args, kwargs)
        if isinstance(result, TrackedArray):
            self._taint_from(result, arrays)
            if result is not out:
                self._rule_checks(result, arrays,
                                  _UFUNC_KIND.get(uf.__name__, "mul"))
        return result

    def _call_ufunc_method(self, method, args, kwargs):
        result = super()._call_ufunc_method(method, args, kwargs)
        if method.name == "at" and args and isinstance(args[0], TrackedArray):
            self._taint_from(args[0], list(args[1:]))
        elif isinstance(result, TrackedArray):
            self._taint_from(result, list(args))
        return result

    def _call_tracked_method(self, method, args, kwargs):
        arr, name = method.arr, method.name
        src_rec = self._temp_recs.get(arr.meta.base)
        if name == "copy" and src_rec is not None and not src_rec.named \
                and src_rec.copy_kind == "gather":
            self._evi(
                "L009",
                "fancy indexing already materializes a fresh array; the "
                "extra .copy() doubles the traffic — drop it")
        if name in ("reshape", "ravel"):
            try:
                if not np.shares_memory(arr.data, arr.data.reshape(-1)):
                    self._evi(
                        "L009",
                        f".{name}() on a non-contiguous (e.g. transposed) "
                        f"array silently copies the whole buffer; make the "
                        f"operand contiguous once, outside the hot path")
            except Exception:
                pass
        result = super()._call_tracked_method(method, args, kwargs)
        if isinstance(result, TrackedArray):
            self._taint_from(result, [arr])
            if name == "copy":
                rec = self._temp_recs.get(result.meta.base)
                if rec is not None:
                    rec.copy_kind = "copy"
        elif name in ("item", "min", "max", "sum", "mean") \
                and arr.meta.base in self._tainted \
                and arr.dtype.kind not in "fc":
            raise NotAnalyzable(
                "scalar reduction of integer data derived from float values")
        return result

    def _call(self, callee, args: tuple, kwargs: dict):
        if callee in (int, round, bool) and args:
            if _is_abstract_scalar(args[0]):
                raise NotAnalyzable(
                    f"{callee.__name__}() on abstract float data would "
                    f"launder values into control flow or shapes")
            if isinstance(args[0], TrackedArray) \
                    and args[0].meta.base in self._tainted:
                raise NotAnalyzable(
                    f"{callee.__name__}() on data derived from float values")
        if callee is np.ascontiguousarray and args \
                and isinstance(args[0], TrackedArray) \
                and not args[0].data.flags["C_CONTIGUOUS"]:
            self._evi(
                "L009",
                "np.ascontiguousarray on a non-contiguous view copies the "
                "whole buffer; keep the hot operand contiguous instead")
        result = super()._call(callee, args, kwargs)
        if callee not in _BUILTIN_HANDLERS and (
                self._any_tainted(args)
                or self._any_tainted(tuple(kwargs.values()))):
            self._taint_result(result)
        return result


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def _describe_args(fn, fn_args) -> tuple:
    """Human-readable symbolic-dimension bindings from probe metadata."""
    try:
        params = list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        params = [f"arg{i}" for i in range(len(fn_args))]
    out = []
    for name, value in zip(params, fn_args):
        if isinstance(value, np.ndarray):
            dims = "x".join(str(d) for d in value.shape)
            out.append(f"{name}: {value.dtype}[{dims}]")
        elif isinstance(value, (bool, int, float, str)):
            out.append(f"{name} = {value!r}")
        else:
            out.append(f"{name}: {type(value).__name__}")
    return tuple(out)


def dataflow_estimate(variant, fn_args: tuple):
    """Abstractly interpret one variant over probe args; never executes it.

    Returns ``(DataflowEstimate, evidence)`` where ``evidence`` is a list
    of ``(rule, lineno, col, end_lineno, message)`` tuples for the
    L007–L010 rules.  A refusal (``D000`` material) yields an estimate
    with ``analyzable=False`` and the reason, plus empty evidence.
    """
    interp = _DataflowInterp()
    qname = variant.qualified_name
    bindings = _describe_args(variant.fn, fn_args)
    try:
        ret = interp.run(variant.fn, tuple(fn_args))
        interp._mark_named(ret)
        interp.charge_output(ret)
    except NotCountable as exc:
        return (DataflowEstimate(variant=qname, analyzable=False,
                                 reason=str(exc), dim_bindings=bindings), [])
    except RecursionError:
        return (DataflowEstimate(variant=qname, analyzable=False,
                                 reason="interpreter recursion limit",
                                 dim_bindings=bindings), [])
    dtype, shape = "", ()
    if isinstance(ret, TrackedArray):
        dtype, shape = str(ret.dtype), tuple(ret.shape)
    statements = tuple(
        StatementCost(lineno=a[0], col=a[1], end_lineno=a[2],
                      flops=row[0], int_ops=row[1],
                      loads_bytes=row[2], stores_bytes=row[3],
                      temp_allocs=row[4], temp_bytes=row[5])
        for a, row in sorted(interp._stmt.items()))
    est = DataflowEstimate(
        variant=qname, analyzable=True,
        flops=interp.flops, int_ops=interp.int_ops,
        footprint_loads_bytes=interp._bytes(interp.loaded),
        footprint_stores_bytes=interp._bytes(interp.stored),
        moved_loads_bytes=interp.moved_loads,
        moved_stores_bytes=interp.moved_stores,
        temp_allocs=interp.temp_allocs, temp_bytes=interp.temp_bytes,
        result_dtype=dtype, result_shape=shape,
        dim_bindings=bindings, statements=statements)
    return est, list(interp._evidence)


def _probe_args(variant, probes):
    """Build fresh probe args for ``variant`` or a D002/skip marker."""
    spec = probes.get(variant.kernel)
    if spec is None:
        return None, Finding(
            rule="D002", slug="no-probe", severity="info",
            variant=variant.qualified_name, source="dataflow",
            message=f"no probe spec for kernel {variant.kernel!r}; skipped")
    try:
        fn_args, _ = spec.build(variant.name)
    except NotCountable as exc:
        return None, Finding(
            rule="D002", slug="no-probe", severity="info",
            variant=variant.qualified_name, source="dataflow",
            message=str(exc))
    return fn_args, None


def dataflow_variant(variant,
                     probes: Mapping[str, ProbeSpec] | None = None) -> list[Finding]:
    """Dataflow findings (L007–L010, D000/D002) for one variant."""
    if probes is None:
        probes = default_probes()
    qname = variant.qualified_name
    fn_args, skip = _probe_args(variant, probes)
    if skip is not None:
        return [skip]
    est, evidence = dataflow_estimate(variant, fn_args)
    if not est.analyzable:
        return [Finding(
            rule="D000", slug="not-analyzable", severity="info",
            variant=qname, source="dataflow",
            message=f"not statically analyzable: {est.reason}")]
    expected = set(getattr(variant, "lint_expect", ()) or ()) & DATAFLOW_SLUGS
    findings, fired = [], set()
    for rule, lineno, col, end_lineno, message in evidence:
        slug, severity, _ = DATAFLOW_RULES[rule]
        fired.add(slug)
        if slug in expected:
            severity = "expected"
        findings.append(Finding(
            rule=rule, slug=slug, severity=severity, variant=qname,
            message=message, source="dataflow",
            lineno=lineno, col=col, end_lineno=end_lineno))
    for slug in sorted(expected - fired):
        findings.append(Finding(
            rule="L000", slug="stale-expect", severity="info",
            variant=qname, source="dataflow",
            message=(f"lint_expect declares {slug!r} but the dataflow rule "
                     f"no longer fires; drop the stale expectation")))
    return findings


def dataflow_registry(registry=None,
                      kernel: str | None = None,
                      probes: Mapping[str, ProbeSpec] | None = None) -> AnalysisReport:
    """Run the dataflow pass over every registered variant."""
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    if probes is None:
        probes = default_probes()
    tracer = get_tracer()
    report = AnalysisReport()
    variants = _select(registry, kernel)
    with tracer.span("analyze.dataflow", category="analyze",
                     variants=len(variants)):
        for variant in variants:
            found = dataflow_variant(variant, probes)
            report.extend(found)
            tracer.count("analyze.dataflow_findings", len(found))
    return report


def estimate_dataflow_registry(registry=None,
                               probes: Mapping[str, ProbeSpec] | None = None,
                               kernel: str | None = None) -> dict[str, DataflowEstimate]:
    """Dataflow estimates for every (probed) registered variant."""
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    if probes is None:
        probes = default_probes()
    out: dict[str, DataflowEstimate] = {}
    for variant in _select(registry, kernel):
        fn_args, skip = _probe_args(variant, probes)
        if fn_args is None:
            if skip is not None and skip.rule == "D002" \
                    and "no probe spec" in skip.message:
                continue
            out[variant.qualified_name] = DataflowEstimate(
                variant=variant.qualified_name, analyzable=False,
                reason=skip.message if skip is not None else "probe build failed")
            continue
        out[variant.qualified_name], _ = dataflow_estimate(variant, fn_args)
    return out


def crosscheck_variant(variant,
                       probes: Mapping[str, ProbeSpec] | None = None,
                       tolerance: float = 2.0) -> list[Finding]:
    """D001: compare the dataflow estimate against the shadow interpreter.

    Both tiers replay the same fixed-seed probe (built twice, so neither
    run sees the other's mutations).  FLOPs and *compulsory footprint*
    bytes must agree within ``tolerance``; a coverage mismatch (one tier
    refuses where the other counts) is advisory, not gating.
    ``dataflow_expect`` metadata downgrades a divergence to info.
    """
    if probes is None:
        probes = default_probes()
    qname = variant.qualified_name
    args_shadow, skip = _probe_args(variant, probes)
    if skip is not None:
        return [skip]
    args_dataflow, _ = _probe_args(variant, probes)
    shadow = estimate_variant(variant, args_shadow)
    est, _ = dataflow_estimate(variant, args_dataflow)
    if not shadow.countable and not est.analyzable:
        return []  # agreement on refusal; both passes already report it
    if shadow.countable != est.analyzable:
        wide, narrow = (("shadow", "dataflow") if shadow.countable
                        else ("dataflow", "shadow"))
        reason = est.reason if not est.analyzable else shadow.reason
        return [Finding(
            rule="D001", slug="static-divergence", severity="info",
            variant=qname, source="dataflow",
            message=(f"coverage mismatch: the {wide} tier counts this "
                     f"variant but the {narrow} tier refuses ({reason})"))]
    problems = []
    if est.flops > 0 or shadow.flops > 0:
        factor = _ratio(est.flops, shadow.flops)
        if factor >= tolerance:
            problems.append(
                f"flops diverge {factor:.1f}x (dataflow {est.flops:.0f} "
                f"vs shadow {shadow.flops:.0f})")
    factor = _ratio(est.footprint_bytes, shadow.bytes_total)
    if factor >= tolerance:
        problems.append(
            f"footprint bytes diverge {factor:.1f}x (dataflow "
            f"{est.footprint_bytes:.0f} vs shadow {shadow.bytes_total:.0f})")
    if not problems:
        return []
    expect = (variant.metadata or {}).get("dataflow_expect")
    severity = "info" if expect else "error"
    suffix = f" — declared expected: {expect}" if expect else ""
    return [Finding(
        rule="D001", slug="static-divergence", severity=severity,
        variant=qname, source="dataflow",
        message="; ".join(problems) + suffix)]


def crosscheck_registry(registry=None,
                        kernel: str | None = None,
                        probes: Mapping[str, ProbeSpec] | None = None,
                        tolerance: float = 2.0) -> AnalysisReport:
    """Static-vs-dynamic cross-check over every registered variant."""
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    if probes is None:
        probes = default_probes()
    tracer = get_tracer()
    report = AnalysisReport()
    variants = _select(registry, kernel)
    with tracer.span("analyze.crosscheck", category="analyze",
                     variants=len(variants)):
        for variant in variants:
            found = crosscheck_variant(variant, probes, tolerance)
            report.extend(found)
            tracer.count("analyze.crosscheck_findings", len(found))
    return report


def check_transform_facts(variant, auto,
                          probes: Mapping[str, ProbeSpec] | None = None) -> list[Finding]:
    """D001 findings when a rewrite changes statically derived result facts.

    Used by :mod:`repro.transform` as an extra refusal check: a synthesized
    ``auto_<rule>`` variant must preserve the original's result dtype and
    shape as seen by the abstract domain (a dtype drift would silently
    change traffic even when values still compare equal on the probe).
    """
    if probes is None:
        probes = default_probes()
    base_args, skip = _probe_args(variant, probes)
    if skip is not None:
        return []
    auto_args, _ = _probe_args(auto, probes)
    if auto_args is None:
        return []
    base_est, _ = dataflow_estimate(variant, base_args)
    auto_est, _ = dataflow_estimate(auto, auto_args)
    if not (base_est.analyzable and auto_est.analyzable):
        return []
    findings = []
    if base_est.result_dtype != auto_est.result_dtype:
        findings.append(Finding(
            rule="D001", slug="static-divergence", severity="error",
            variant=auto.qualified_name, source="dataflow",
            message=(f"rewrite changed the result dtype: "
                     f"{base_est.result_dtype or '<none>'} -> "
                     f"{auto_est.result_dtype or '<none>'}")))
    if base_est.result_shape != auto_est.result_shape:
        findings.append(Finding(
            rule="D001", slug="static-divergence", severity="error",
            variant=auto.qualified_name, source="dataflow",
            message=(f"rewrite changed the result shape: "
                     f"{base_est.result_shape} -> {auto_est.result_shape}")))
    return findings


def dataflow_app_points(registry=None,
                        probes: Mapping[str, ProbeSpec] | None = None,
                        kernel: str | None = None) -> list:
    """Roofline points from dataflow-derived *moved* traffic.

    Prefers the dataflow estimate (moved bytes: temporaries and re-reads
    included, so a temp-chained variant lands at a lower static intensity
    than its ``out=`` twin); falls back to the shadow interpreter's
    footprint estimate for variants the abstract domain refuses.
    """
    from ..roofline.model import AppPoint
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    if probes is None:
        probes = default_probes()
    points = []
    for variant in _select(registry, kernel):
        fn_args, skip = _probe_args(variant, probes)
        if fn_args is None:
            continue
        est, _ = dataflow_estimate(variant, fn_args)
        qname = variant.qualified_name
        if est.analyzable and est.flops > 0 and est.bytes_total > 0:
            points.append(AppPoint.from_estimate(f"{qname} (static)", est))
            continue
        fn_args, _ = _probe_args(variant, probes)
        if fn_args is None:
            continue
        shadow = estimate_variant(variant, fn_args)
        if shadow.countable and shadow.flops > 0 and shadow.bytes_total > 0:
            points.append(AppPoint.from_estimate(f"{qname} (static)", shadow))
    return points
