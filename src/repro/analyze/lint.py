"""Performance anti-pattern linter over kernel-variant source.

The dynamic half of the toolbox measures what a kernel *did*; this pass
reads what the kernel *says* — the level where student code review happens.
Each rule encodes one Python/NumPy performance anti-pattern the course
teaches students to remove:

=======  ==================  ==================================================
L001     scalar-loop         element-at-a-time loops over ndarray data —
                             an *error* when the variant's declared
                             ``technique`` claims a vectorized/library bound,
                             a warning otherwise
L002     loop-alloc          array allocation (``np.zeros``/``np.empty``/
                             ``np.concatenate``/...) inside a loop body
L003     range-len           ``range(len(x))`` where direct iteration or
                             ``enumerate`` applies
L004     invariant-lookup    attribute chains (``a.data``, ``np.exp``) read
                             repeatedly inside inner loops without hoisting
L005     dot-matmul          ``np.dot`` where the ``@`` operator is idiomatic
L006     missing-out         whole-array slice assignment from a chained
                             expression that allocates temporaries — an
                             ``out=`` / in-place opportunity
=======  ==================  ==================================================

Variants that are *intentionally* scalar (the "basic code" each assignment
hands out) declare ``lint_expect=("scalar-loop", ...)`` in their registry
metadata: matching findings are downgraded to severity ``expected`` and a
``stale-expect`` note (L000) flags declared expectations that no longer
fire, so suppressions cannot outlive the code they excuse.

Analysis is source-level via :func:`inspect.getsource` + :mod:`ast`, and
follows direct calls to same-module helpers one level deep (``matmul.ijk``
is a thin wrapper over ``matmul_loop``; its findings belong to the
variant).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Iterable

from ..observe import get_tracer
from .report import AnalysisReport, Finding

__all__ = ["LINT_RULES", "lint_variant", "lint_registry", "function_ast"]

#: rule id -> (slug, default severity, summary)
LINT_RULES = {
    "L000": ("stale-expect", "info",
             "declared lint_expect rule no longer fires"),
    "L001": ("scalar-loop", "warning",
             "element-at-a-time loop over ndarray data"),
    "L002": ("loop-alloc", "warning",
             "array allocation inside a loop body"),
    "L003": ("range-len", "info",
             "range(len(x)) indexing where direct iteration applies"),
    "L004": ("invariant-lookup", "warning",
             "loop-invariant attribute lookup inside an inner loop"),
    "L005": ("dot-matmul", "info",
             "np.dot on 2-D operands where the @ operator is idiomatic"),
    "L006": ("missing-out", "info",
             "chained whole-array expression allocates temporaries"),
    # L007–L010 are owned by the dataflow tier (repro.analyze.dataflow),
    # which fires them from interpreted traffic rather than AST patterns.
    # They are registered here so lint_expect metadata recognizes the slugs.
    "L007": ("hidden-temp-chain", "warning",
             "statement allocates and drops multiple temporary arrays"),
    "L008": ("silent-upcast", "warning",
             "operation silently widens a float/complex operand"),
    "L009": ("copy-index", "warning",
             "fancy-index/transpose pattern forces an avoidable copy"),
    "L010": ("broadcast-blowup", "warning",
             "broadcast result dwarfs every array operand"),
}

#: slugs fired by the dataflow tier, not by the AST linter below — excluded
#: from this pass's stale-expect sweep (the dataflow pass runs its own)
_DATAFLOW_SLUGS = frozenset({
    "hidden-temp-chain", "silent-upcast", "copy-index", "broadcast-blowup",
})

#: techniques whose claim a scalar loop contradicts (upgrades L001 to error)
_VECTORIZED_TECHNIQUES = frozenset({"vectorization", "library"})

#: np.* callables that allocate a fresh array per call
_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "array", "arange", "concatenate", "copy",
    "tile", "repeat", "stack", "vstack", "hstack",
})


def function_ast(fn: Callable) -> ast.FunctionDef | None:
    """Parse ``fn``'s source into its FunctionDef, or None when unavailable."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _attr_chain(node: ast.expr) -> str | None:
    """Dotted name of an attribute chain rooted at a Name, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _span(node: ast.AST) -> tuple[int, int]:
    """(col, end_lineno) of a node — the machine-usable half of a finding."""
    return (getattr(node, "col_offset", 0) or 0,
            getattr(node, "end_lineno", None) or getattr(node, "lineno", 0))


def _is_scalar_index(node: ast.expr) -> bool:
    """Index expression selecting one element (no slices)."""
    if isinstance(node, ast.Tuple):
        return all(_is_scalar_index(e) for e in node.elts)
    return not isinstance(node, ast.Slice)


class _LoopVisitor(ast.NodeVisitor):
    """One pass over a function body collecting rule evidence."""

    def __init__(self) -> None:
        self.loop_stack: list[ast.AST] = []
        self.loop_vars: list[set[str]] = []
        # (rule, lineno, col, end_lineno, msg)
        self.findings: list[tuple[str, int, int, int, str]] = []
        # per-loop tally of attribute-chain loads for L004
        self._attr_loads: list[dict[str, list[tuple[int, int, int]]]] = []

    # -- loops --------------------------------------------------------------

    def _enter_loop(self, node, targets: set[str]) -> None:
        self.loop_stack.append(node)
        self.loop_vars.append(targets)
        self._attr_loads.append({})

    def _exit_loop(self) -> None:
        loads = self._attr_loads.pop()
        depth = len(self.loop_stack)
        for chain, sites in loads.items():
            # repeated in one loop, or any occurrence in a nest ≥2 deep
            if len(sites) >= 2 or depth >= 2:
                lineno, col, end = sites[0]
                self.findings.append((
                    "L004", lineno, col, end,
                    f"hoist loop-invariant lookup {chain!r} "
                    f"({len(sites)} read(s) in a depth-{depth} loop)"))
        self.loop_stack.pop()
        self.loop_vars.pop()

    def visit_For(self, node: ast.For) -> None:
        self._check_range_len(node)
        targets = _names_in(node.target)
        self.visit(node.iter)
        self._enter_loop(node, targets)
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._exit_loop()

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._enter_loop(node, set())
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._exit_loop()

    def _check_range_len(self, node: ast.For) -> None:
        it = node.iter
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range" and len(it.args) == 1
                and isinstance(it.args[0], ast.Call)
                and isinstance(it.args[0].func, ast.Name)
                and it.args[0].func.id == "len" and it.args[0].args):
            seq = _attr_chain(it.args[0].args[0]) or "<expr>"
            self.findings.append((
                "L003", node.lineno, *_span(node),
                f"for-range(len({seq})): iterate {seq} directly or use enumerate"))

    # -- rule evidence ------------------------------------------------------

    def _in_loop(self) -> bool:
        return bool(self.loop_stack)

    def _loop_var_names(self) -> set[str]:
        out: set[str] = set()
        for s in self.loop_vars:
            out |= s
        return out

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain and "." in chain:
            root, leaf = chain.split(".", 1)
            if self._in_loop() and leaf.split(".")[-1] in _ALLOCATORS \
                    and root in ("np", "numpy"):
                self.findings.append((
                    "L002", node.lineno, *_span(node),
                    f"{chain}() allocates a fresh array every iteration; "
                    f"hoist the buffer or use out="))
            if leaf == "dot" and root in ("np", "numpy") and len(node.args) == 2:
                self.findings.append((
                    "L005", node.lineno, *_span(node),
                    "np.dot(a, b): prefer the @ operator for 2-D operands"))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._in_loop() and isinstance(node.ctx, ast.Load):
            chain = _attr_chain(node)
            if chain:
                root = chain.split(".", 1)[0]
                if root not in self._loop_var_names():
                    self._attr_loads[-1].setdefault(chain, []).append(
                        (node.lineno, *_span(node)))
                    return  # don't double-count nested sub-chains
        self.generic_visit(node)

    def _scalar_element_access(self, node: ast.AST) -> ast.Subscript | None:
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Subscript)
                    and _is_scalar_index(sub.slice)
                    and (_names_in(sub.slice) & self._loop_var_names())):
                return sub
        return None

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._in_loop():
            sub = (self._scalar_element_access(node.target)
                   or self._scalar_element_access(node.value))
            if sub is not None:
                name = _attr_chain(sub.value) or "<array>"
                self.findings.append((
                    "L001", node.lineno, *_span(node),
                    f"scalar element update of {name!r} inside a loop"))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._in_loop() and isinstance(node.value, (ast.BinOp, ast.IfExp)):
            sub = self._scalar_element_access(node)
            if sub is not None:
                name = _attr_chain(sub.value) or "<array>"
                self.findings.append((
                    "L001", node.lineno, *_span(node),
                    f"scalar element arithmetic on {name!r} inside a loop"))
        self._check_missing_out(node)
        self.generic_visit(node)

    def _check_missing_out(self, node: ast.Assign) -> None:
        targets = node.targets[0].elts if (
            len(node.targets) == 1 and isinstance(node.targets[0], ast.Tuple)
        ) else node.targets
        values = node.value.elts if isinstance(node.value, ast.Tuple) else [node.value]
        if len(targets) != len(values):
            return
        for target, value in zip(targets, values):
            if not (isinstance(target, ast.Subscript)
                    and not _is_scalar_index(target.slice)):
                continue
            ops = [n for n in ast.walk(value) if isinstance(n, ast.BinOp)]
            if len(ops) >= 2:
                self.findings.append((
                    "L006", node.lineno, *_span(node),
                    f"slice assignment from a {len(ops)}-op expression "
                    f"allocates temporaries; consider np.<op>(..., out=)"))


def _callees(fn_node: ast.FunctionDef, fn: Callable) -> list[Callable]:
    """Module-level functions of ``fn``'s own module called directly."""
    module = getattr(fn, "__module__", None)
    out, seen = [], set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in seen:
                continue
            seen.add(name)
            target = getattr(fn, "__globals__", {}).get(name)
            if (callable(target) and inspect.isfunction(target)
                    and getattr(target, "__module__", None) == module):
                out.append(target)
    return out


def _lint_function(fn: Callable,
                   depth: int = 1) -> list[tuple[str, int, int, int, str]]:
    node = function_ast(fn)
    if node is None:
        return []
    visitor = _LoopVisitor()
    for stmt in node.body:
        visitor.visit(stmt)
    findings = list(visitor.findings)
    if depth > 0:
        for callee in _callees(node, fn):
            for rule, lineno, col, end, msg in _lint_function(callee, depth - 1):
                findings.append((rule, lineno, col, end,
                                 f"(via {callee.__name__}) {msg}"))
    return findings


def lint_variant(variant) -> list[Finding]:
    """Lint one :class:`~repro.kernels.base.KernelVariant`.

    Findings matching the variant's ``lint_expect`` metadata come back with
    severity ``expected``; declared expectations that did not fire yield a
    ``stale-expect`` note.
    """
    raw = _lint_function(variant.fn)
    expected = set(variant.lint_expect)
    unknown = expected - {slug for slug, _, _ in LINT_RULES.values()}
    findings: list[Finding] = []
    fired: set[str] = set()
    for rule, lineno, col, end, msg in raw:
        slug, severity, _ = LINT_RULES[rule]
        fired.add(slug)
        if slug in expected:
            severity = "expected"
        elif rule == "L001" and variant.technique in _VECTORIZED_TECHNIQUES:
            severity = "error"
            msg += (f" — but technique={variant.technique!r} claims a "
                    f"vectorized bound")
        findings.append(Finding(rule=rule, slug=slug, severity=severity,
                                variant=variant.qualified_name, message=msg,
                                source="lint", lineno=lineno, col=col,
                                end_lineno=end))
    for slug in sorted((expected - fired - _DATAFLOW_SLUGS) | unknown):
        findings.append(Finding(
            rule="L000", slug="stale-expect", severity="info",
            variant=variant.qualified_name,
            message=(f"lint_expect declares {slug!r} but "
                     + ("no such rule exists" if slug in unknown
                        else "the rule no longer fires")
                     + "; drop the stale expectation"),
            source="lint"))
    return findings


def lint_registry(registry=None,
                  kernel: str | None = None) -> AnalysisReport:
    """Lint every registered variant (optionally one kernel family)."""
    if registry is None:
        from ..kernels import REGISTRY as registry  # populates the registry
    tracer = get_tracer()
    report = AnalysisReport()
    variants = _select(registry, kernel)
    with tracer.span("analyze.lint", category="analyze",
                     variants=len(variants)):
        for variant in variants:
            found = lint_variant(variant)
            report.extend(found)
            tracer.count("analyze.lint_findings", len(found))
    return report


def _select(registry, kernel: str | None) -> list:
    """Variants to sweep, in deterministic qualified-name order."""
    kernels = [kernel] if kernel is not None else registry.kernels()
    out = [v for k in kernels for v in registry.variants_of(k)]
    return sorted(out, key=lambda v: v.qualified_name)
