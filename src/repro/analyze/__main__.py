"""CLI for the static-analysis passes: ``python -m repro.analyze``.

Subcommands
-----------
``lint``        performance anti-pattern linter only
``workcount``   work-count verifier only
``dataflow``    abstract-interpretation dataflow tier (L007–L010, D000/D002)
``crosscheck``  static-vs-dynamic divergence check (D001)
``hazards``     shared-memory hazard detector only
``all``         every pass (the CI analysis gate)

Exit status is 1 when any **error**-severity finding is present —
warnings, info, and declared-expected findings never fail the gate.
With ``--check``, unsuppressed **warnings** also fail (the strict CI
``dataflow-gate`` mode: a new temp chain or silent upcast must either be
fixed or declared via ``lint_expect``).
"""

from __future__ import annotations

import argparse
import sys

from . import (analyze_all, crosscheck_registry, dataflow_registry,
               hazards_registry, lint_registry, verify_workcounts)

_PASSES = {
    "lint": lambda kernel: lint_registry(kernel=kernel),
    "workcount": lambda kernel: verify_workcounts(kernel=kernel),
    "dataflow": lambda kernel: dataflow_registry(kernel=kernel),
    "crosscheck": lambda kernel: crosscheck_registry(kernel=kernel),
    "hazards": lambda kernel: hazards_registry(kernel=kernel),
    "all": lambda kernel: analyze_all(kernel=kernel),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="static performance analysis over the kernel registry")
    parser.add_argument("pass_name", choices=sorted(_PASSES),
                        metavar="pass", help="analysis pass to run "
                        f"({', '.join(sorted(_PASSES))})")
    parser.add_argument("--kernel", default=None,
                        help="restrict to one kernel family (e.g. matmul)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--show-expected", action="store_true",
                        help="also list findings declared via lint_expect")
    parser.add_argument("--check", action="store_true",
                        help="strict mode: unsuppressed warnings also fail")
    args = parser.parse_args(argv)

    try:
        report = _PASSES[args.pass_name](args.kernel)
    except KeyError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error raises SystemExit

    if args.json:
        print(report.to_json())
    else:
        print(report.render_text(show_expected=args.show_expected))
    ok = report.ok and not (args.check and report.by_severity("warning"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
