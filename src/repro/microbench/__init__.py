"""Microbenchmarking: harness, memory/compute probes, machine characterization."""

from .compute import (
    dot_benchmark,
    fma_benchmark,
    measure_peak_flops,
    mul_benchmark,
    simulated_op_throughput,
    simulated_peak_flops,
)
from .gpu import (
    bank_conflict_factor,
    coalesced_transactions,
    divergence_factor,
    shared_memory_sweep,
    warps_to_hide_latency,
)
from .harness import (
    Microbenchmark,
    MicrobenchResult,
    MicrobenchSuite,
    run_microbenchmark,
)
from .memory import (
    detect_cache_cliffs,
    make_pointer_chain,
    pointer_chase_latency,
    run_stream,
    simulated_latency_sweep,
    stream_benchmark,
    working_set_sweep,
)
from .suite import (
    MachineCharacterization,
    characterize_empirical,
    characterize_simulated,
)

__all__ = [
    "Microbenchmark",
    "MicrobenchResult",
    "MicrobenchSuite",
    "run_microbenchmark",
    "stream_benchmark",
    "run_stream",
    "working_set_sweep",
    "detect_cache_cliffs",
    "make_pointer_chain",
    "pointer_chase_latency",
    "simulated_latency_sweep",
    "fma_benchmark",
    "mul_benchmark",
    "dot_benchmark",
    "measure_peak_flops",
    "simulated_peak_flops",
    "simulated_op_throughput",
    "MachineCharacterization",
    "characterize_empirical",
    "characterize_simulated",
    "coalesced_transactions",
    "bank_conflict_factor",
    "divergence_factor",
    "warps_to_hide_latency",
    "shared_memory_sweep",
]
