"""Microbenchmark harness.

Assignment 2 introduces "microbenchmarking as a model calibration tool";
this harness runs small, targeted kernels with the measurement discipline
from :mod:`repro.timing` (warmup, repetition, outlier handling) and converts
times into the rates models need (FLOP/s, bytes/s, seconds/op).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..observe import Tracer, get_tracer
from ..timing.metrics import WorkCount
from ..timing.stats import Summary
from ..timing.timers import MeasurementResult, measure

__all__ = ["Microbenchmark", "MicrobenchResult", "run_microbenchmark", "MicrobenchSuite"]


@dataclass(frozen=True)
class Microbenchmark:
    """A small kernel plus its work accounting.

    Attributes
    ----------
    name:
        Identifier in suite reports.
    setup:
        Zero-argument callable returning the kernel's operand tuple; run
        once, outside timing (mirrors STREAM's untimed initialization).
    fn:
        Callable taking the operands; the timed region.
    work:
        Work per invocation given the operands (for rate conversion).
    """

    name: str
    setup: Callable[[], tuple]
    fn: Callable[..., object]
    work: Callable[..., WorkCount]


@dataclass(frozen=True)
class MicrobenchResult:
    """Outcome of one microbenchmark: times plus derived rates."""

    name: str
    work: WorkCount
    measurement: MeasurementResult

    @property
    def summary(self) -> Summary:
        return self.measurement.summary

    @property
    def seconds(self) -> float:
        """Representative time: the median repetition (robust to jitter)."""
        return self.measurement.summary.median

    @property
    def flops_per_s(self) -> float:
        if self.work.flops <= 0:
            raise ValueError(f"{self.name}: no FLOP work defined")
        return self.work.flops / self.seconds

    @property
    def bytes_per_s(self) -> float:
        if self.work.bytes_total <= 0:
            raise ValueError(f"{self.name}: no traffic defined")
        return self.work.bytes_total / self.seconds

    @property
    def best_bytes_per_s(self) -> float:
        """Bandwidth from the fastest repetition (STREAM's convention)."""
        return self.work.bytes_total / self.measurement.best


def run_microbenchmark(bench: Microbenchmark, repetitions: int = 7,
                       warmup: int = 2,
                       tracer: Tracer | None = None) -> MicrobenchResult:
    """Set up and measure one microbenchmark.

    With tracing enabled the run emits a ``microbench.run`` span tagged
    with the kernel's work accounting — FLOPs, bytes, and operational
    intensity — so a trace viewer (or a roofline overlay) can relate each
    timed region to its position on the roofline.
    """
    operands = bench.setup()
    if not isinstance(operands, tuple):
        raise TypeError(f"{bench.name}: setup must return a tuple of operands")
    work = bench.work(*operands)
    tracer = get_tracer() if tracer is None else tracer
    intensity = work.intensity if work.bytes_total > 0 else None
    with tracer.span("microbench.run", category="microbench",
                     benchmark=bench.name, flops=work.flops,
                     bytes=work.bytes_total, intensity=intensity) as span:
        result = measure(lambda: bench.fn(*operands), repetitions=repetitions,
                         warmup=warmup, tracer=tracer)
        span.set("median_seconds", result.summary.median)
    return MicrobenchResult(bench.name, work, result)


class MicrobenchSuite:
    """A named collection of microbenchmarks run together.

    Mirrors how the course has students assemble a calibration suite: one
    benchmark per model parameter (bandwidths, peak rates, latencies).
    """

    def __init__(self, name: str):
        self.name = name
        self._benches: list[Microbenchmark] = []

    def add(self, bench: Microbenchmark) -> "MicrobenchSuite":
        if any(b.name == bench.name for b in self._benches):
            raise ValueError(f"duplicate benchmark name {bench.name!r}")
        self._benches.append(bench)
        return self

    def __len__(self) -> int:
        return len(self._benches)

    def run(self, repetitions: int = 7, warmup: int = 2) -> dict[str, MicrobenchResult]:
        return {b.name: run_microbenchmark(b, repetitions, warmup)
                for b in self._benches}

    @staticmethod
    def report(results: dict[str, MicrobenchResult]) -> str:
        lines = [f"{'benchmark':28s} {'median':>12s} {'GB/s':>9s} {'GFLOP/s':>9s} {'cv':>7s}"]
        for name, r in results.items():
            gb = f"{r.bytes_per_s / 1e9:9.2f}" if r.work.bytes_total else "      n/a"
            gf = f"{r.flops_per_s / 1e9:9.2f}" if r.work.flops else "      n/a"
            lines.append(f"{name:28s} {r.seconds:12.3e} {gb:>9s} {gf:>9s} "
                         f"{r.summary.cv:7.2%}")
        return "\n".join(lines)
