"""Microbenchmark harness.

Assignment 2 introduces "microbenchmarking as a model calibration tool";
this harness runs small, targeted kernels with the measurement discipline
from :mod:`repro.timing` (warmup, repetition, outlier handling) and converts
times into the rates models need (FLOP/s, bytes/s, seconds/op).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..observe import Tracer, get_tracer
from ..timing.adaptive import MeasurementBudget, measure_adaptive
from ..timing.metrics import WorkCount
from ..timing.stats import Summary
from ..timing.timers import MeasurementResult, measure

__all__ = ["Microbenchmark", "MicrobenchResult", "run_microbenchmark", "MicrobenchSuite"]


@dataclass(frozen=True)
class Microbenchmark:
    """A small kernel plus its work accounting.

    Attributes
    ----------
    name:
        Identifier in suite reports.
    setup:
        Zero-argument callable returning the kernel's operand tuple; run
        once, outside timing (mirrors STREAM's untimed initialization).
    fn:
        Callable taking the operands; the timed region.
    work:
        Work per invocation given the operands (for rate conversion).
    """

    name: str
    setup: Callable[[], tuple]
    fn: Callable[..., object]
    work: Callable[..., WorkCount]


@dataclass(frozen=True)
class MicrobenchResult:
    """Outcome of one microbenchmark: times plus derived rates."""

    name: str
    work: WorkCount
    measurement: MeasurementResult

    @property
    def summary(self) -> Summary:
        return self.measurement.summary

    @property
    def seconds(self) -> float:
        """Representative time: the median repetition (robust to jitter)."""
        return self.measurement.summary.median

    @property
    def flops_per_s(self) -> float:
        if self.work.flops <= 0:
            raise ValueError(f"{self.name}: no FLOP work defined")
        return self.work.flops / self.seconds

    @property
    def bytes_per_s(self) -> float:
        if self.work.bytes_total <= 0:
            raise ValueError(f"{self.name}: no traffic defined")
        return self.work.bytes_total / self.seconds

    @property
    def best_bytes_per_s(self) -> float:
        """Bandwidth from the fastest repetition (STREAM's convention)."""
        return self.work.bytes_total / self.measurement.best


def run_microbenchmark(bench: Microbenchmark, repetitions: int = 7,
                       warmup: int = 2,
                       tracer: Tracer | None = None,
                       adaptive: bool = False,
                       rel_ci: float = 0.05) -> MicrobenchResult:
    """Set up and measure one microbenchmark.

    With ``adaptive`` set, sampling goes through the sequential stopping
    rule (:func:`~repro.timing.adaptive.measure_adaptive`): ``repetitions``
    becomes the per-benchmark *cap* and a stable kernel stops as soon as
    its median is pinned to within ``rel_ci``.

    With tracing enabled the run emits a ``microbench.run`` span tagged
    with the kernel's work accounting — FLOPs, bytes, and operational
    intensity — so a trace viewer (or a roofline overlay) can relate each
    timed region to its position on the roofline.
    """
    operands = bench.setup()
    if not isinstance(operands, tuple):
        raise TypeError(f"{bench.name}: setup must return a tuple of operands")
    work = bench.work(*operands)
    tracer = get_tracer() if tracer is None else tracer
    intensity = work.intensity if work.bytes_total > 0 else None
    with tracer.span("microbench.run", category="microbench",
                     benchmark=bench.name, flops=work.flops,
                     bytes=work.bytes_total, intensity=intensity) as span:
        if adaptive:
            lo = min(3, repetitions)
            result = measure_adaptive(
                lambda: bench.fn(*operands), rel_ci=rel_ci,
                min_repetitions=lo, batch=lo, max_repetitions=repetitions,
                warmup=warmup, tracer=tracer)
        else:
            result = measure(lambda: bench.fn(*operands),
                             repetitions=repetitions,
                             warmup=warmup, tracer=tracer)
        span.set("median_seconds", result.summary.median)
    return MicrobenchResult(bench.name, work, result)


class MicrobenchSuite:
    """A named collection of microbenchmarks run together.

    Mirrors how the course has students assemble a calibration suite: one
    benchmark per model parameter (bandwidths, peak rates, latencies).
    """

    def __init__(self, name: str):
        self.name = name
        self._benches: list[Microbenchmark] = []

    def add(self, bench: Microbenchmark) -> "MicrobenchSuite":
        if any(b.name == bench.name for b in self._benches):
            raise ValueError(f"duplicate benchmark name {bench.name!r}")
        self._benches.append(bench)
        return self

    def __len__(self) -> int:
        return len(self._benches)

    def run(self, repetitions: int = 7, warmup: int = 2,
            adaptive: bool = False,
            rel_ci: float = 0.05) -> dict[str, MicrobenchResult]:
        return {b.name: run_microbenchmark(b, repetitions, warmup,
                                           adaptive=adaptive, rel_ci=rel_ci)
                for b in self._benches}

    def run_budgeted(self, max_seconds: float, *, rel_ci: float = 0.05,
                     min_repetitions: int = 5, max_repetitions: int = 200,
                     warmup: int = 1) -> dict[str, MicrobenchResult]:
        """Run the whole suite under one shared wall-clock budget.

        Uses :class:`~repro.timing.adaptive.MeasurementBudget`: after a
        seeding pass, the remaining budget flows batch by batch to
        whichever benchmark's median currently has the widest confidence
        interval, so noisy kernels get the samples and stable ones stop
        at ``min_repetitions``.  Each result's ``stop_reason`` tells
        whether it converged, capped out, or ran out of shared budget.
        """
        if not self._benches:
            raise ValueError(f"suite {self.name!r} is empty")
        fns: dict[str, Callable[[], object]] = {}
        works: dict[str, WorkCount] = {}
        for b in self._benches:
            operands = b.setup()
            if not isinstance(operands, tuple):
                raise TypeError(
                    f"{b.name}: setup must return a tuple of operands")
            works[b.name] = b.work(*operands)
            fns[b.name] = (lambda fn=b.fn, ops=operands: fn(*ops))
        budget = MeasurementBudget(
            max_seconds, rel_ci=rel_ci, min_repetitions=min_repetitions,
            max_repetitions=max_repetitions)
        measured = budget.run(fns, warmup=warmup)
        return {name: MicrobenchResult(name, works[name], measured[name])
                for name in fns}

    @staticmethod
    def report(results: dict[str, MicrobenchResult]) -> str:
        lines = [f"{'benchmark':28s} {'median':>12s} {'GB/s':>9s} "
                 f"{'GFLOP/s':>9s} {'cv':>7s} {'n':>4s}  shape"]
        for name, r in results.items():
            gb = f"{r.bytes_per_s / 1e9:9.2f}" if r.work.bytes_total else "      n/a"
            gf = f"{r.flops_per_s / 1e9:9.2f}" if r.work.flops else "      n/a"
            sample = r.measurement.sample
            shape = ("-" if sample is None
                     else f"{sample.n_modes}-modal" if sample.multimodal
                     else "unimodal")
            lines.append(f"{name:28s} {r.seconds:12.3e} {gb:>9s} {gf:>9s} "
                         f"{r.summary.cv:7.2%} {len(r.measurement.times):4d}"
                         f"  {shape}")
        return "\n".join(lines)
