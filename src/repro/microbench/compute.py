"""Compute-peak microbenchmarks.

Assignment 2 calibrates the compute terms of analytical models: the
achievable FLOP rate of the arithmetic the kernel actually uses, which is
far below datasheet peak for non-FMA or non-SIMD code.  We measure NumPy's
achievable rates (the empirical plane) and derive per-opcode rates from the
instruction tables (the simulated plane used for deterministic tests).
"""

from __future__ import annotations

import numpy as np

from ..machine.instruction_tables import InstructionTable
from ..machine.specs import CPUSpec
from ..timing.metrics import WorkCount
from .harness import Microbenchmark, MicrobenchResult, run_microbenchmark

__all__ = [
    "fma_benchmark",
    "mul_benchmark",
    "dot_benchmark",
    "measure_peak_flops",
    "simulated_peak_flops",
    "simulated_op_throughput",
]


def fma_benchmark(n: int = 1_000_000, seed: int = 0) -> Microbenchmark:
    """``y += a*x`` — one multiply-add (2 FLOP) per element, streaming."""

    def setup() -> tuple:
        rng = np.random.default_rng(seed)
        return (rng.random(n), rng.random(n))

    def fn(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y += 1.000001 * x
        return y

    return Microbenchmark(f"fma-{n}", setup, fn,
                          lambda x, y: WorkCount(flops=2.0 * n,
                                                 loads_bytes=16.0 * n,
                                                 stores_bytes=8.0 * n))


def mul_benchmark(n: int = 1_000_000, seed: int = 0) -> Microbenchmark:
    """In-place multiply — 1 FLOP per element."""

    def setup() -> tuple:
        rng = np.random.default_rng(seed)
        return (rng.random(n) + 1.0,)

    def fn(x: np.ndarray) -> np.ndarray:
        x *= 1.0000001
        return x

    return Microbenchmark(f"mul-{n}", setup, fn,
                          lambda x: WorkCount(flops=float(n), loads_bytes=8.0 * n,
                                              stores_bytes=8.0 * n))


def dot_benchmark(n: int = 512, seed: int = 0) -> Microbenchmark:
    """n×n matmul through BLAS — the *compute-bound* peak probe.

    Large dot products have intensity ~n/12 FLOP/byte, so for n ≥ 256 the
    measurement reads the machine's achievable compute roof, not its
    memory system.
    """

    def setup() -> tuple:
        rng = np.random.default_rng(seed)
        return (rng.standard_normal((n, n)), rng.standard_normal((n, n)))

    def fn(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    return Microbenchmark(f"dot-{n}", setup, fn,
                          lambda a, b: WorkCount(flops=2.0 * n**3,
                                                 loads_bytes=16.0 * n * n,
                                                 stores_bytes=8.0 * n * n))


def measure_peak_flops(n: int = 512, repetitions: int = 5,
                       seed: int = 0) -> MicrobenchResult:
    """Empirical compute peak via the BLAS dot probe."""
    return run_microbenchmark(dot_benchmark(n, seed), repetitions=repetitions)


def simulated_peak_flops(cpu: CPUSpec, table: InstructionTable,
                         opcode: str = "vfmadd", dtype_bytes: int = 8,
                         cores: int | None = None) -> float:
    """Peak FLOP/s implied by the instruction table for one opcode.

    FLOP/cycle = lanes · flop-per-op / reciprocal-throughput; multiplied by
    frequency and cores.  This is the "tabulated data" calibration path
    (Fog's tables) as opposed to running a measurement.
    """
    flop_per_op = {"fmadd": 2, "vfmadd": 2, "add": 1, "mul": 1,
                   "vadd": 1, "vmul": 1}.get(opcode)
    if flop_per_op is None:
        raise ValueError(f"opcode {opcode!r} is not a FLOP instruction")
    lanes = cpu.vector.lanes(dtype_bytes) if opcode.startswith("v") else 1
    rate_per_cycle = lanes * flop_per_op / table.reciprocal_throughput(opcode)
    n = cpu.cores if cores is None else cores
    return rate_per_cycle * cpu.frequency_hz * n


def simulated_op_throughput(table: InstructionTable) -> dict[str, float]:
    """Ops/cycle for every opcode in a table (single core).

    The direct digital analogue of reading Fog's instruction tables.
    """
    return {op: 1.0 / table.reciprocal_throughput(op) for op in table.opcodes()}
