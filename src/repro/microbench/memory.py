"""Memory-system microbenchmarks: bandwidth (STREAM) and latency.

Two classic instruments the course teaches:

* the **STREAM benchmark** (McCalpin) — sustainable bandwidth from four
  streaming kernels; run empirically (NumPy arrays) and, with a working-set
  sweep, exposes the cache-size "cliffs" of the hierarchy;
* the **pointer-chase** — a dependent load chain that measures *latency*
  (nothing overlaps), here both empirically and on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.stream import STREAM_KERNELS, stream_arrays
from ..machine.specs import CPUSpec
from ..simulator.cache import MultiLevelCache
from ..timing.timers import measure
from .harness import Microbenchmark, MicrobenchResult, run_microbenchmark

__all__ = [
    "stream_benchmark",
    "run_stream",
    "working_set_sweep",
    "detect_cache_cliffs",
    "make_pointer_chain",
    "pointer_chase_latency",
    "simulated_latency_sweep",
]


def stream_benchmark(kernel: str, n: int, seed: int = 0) -> Microbenchmark:
    """Build one STREAM microbenchmark of ``n`` float64 elements."""
    if kernel not in STREAM_KERNELS:
        raise ValueError(f"unknown STREAM kernel {kernel!r}")
    fn, work = STREAM_KERNELS[kernel]

    def setup() -> tuple:
        a, b, c = stream_arrays(n, seed)
        if kernel == "copy":
            return (a, c)
        if kernel == "scale":
            return (c, b)
        return (a, b, c)

    return Microbenchmark(name=f"stream-{kernel}-{n}", setup=setup, fn=fn,
                          work=lambda *ops: work(n))


def run_stream(n: int = 2_000_000, repetitions: int = 7,
               kernels: tuple[str, ...] = ("copy", "scale", "add", "triad"),
               seed: int = 0) -> dict[str, MicrobenchResult]:
    """Run the STREAM suite; returns per-kernel results.

    The headline number is triad's ``best_bytes_per_s`` — STREAM reports
    best-of-N by design.
    """
    out = {}
    for kernel in kernels:
        out[kernel] = run_microbenchmark(stream_benchmark(kernel, n, seed),
                                         repetitions=repetitions)
    return out


def working_set_sweep(sizes_bytes: list[int], kernel: str = "triad",
                      repetitions: int = 5, seed: int = 0) -> dict[int, float]:
    """Triad bandwidth (bytes/s) vs total working-set size.

    On real hardware the curve steps down at each cache capacity; students
    use this to *discover* the hierarchy empirically.  (Under NumPy the
    cliffs are muted but present for sizes past the LLC.)
    """
    if not sizes_bytes:
        raise ValueError("need at least one size")
    out: dict[int, float] = {}
    for size in sizes_bytes:
        n = max(64, size // (3 * 8))  # 3 arrays of float64
        res = run_microbenchmark(stream_benchmark(kernel, n, seed),
                                 repetitions=repetitions)
        out[size] = res.best_bytes_per_s
    return out


def detect_cache_cliffs(sweep: dict[int, float], drop_threshold: float = 0.25) -> list[int]:
    """Working-set sizes where bandwidth drops by ≥ ``drop_threshold``.

    Returns the sizes *at* which the drop is observed — estimates of cache
    capacities (the drop occurs when the working set stops fitting).
    """
    if not 0 < drop_threshold < 1:
        raise ValueError("drop threshold must be in (0, 1)")
    sizes = sorted(sweep)
    cliffs = []
    for prev, cur in zip(sizes, sizes[1:]):
        if sweep[prev] <= 0:
            continue
        drop = (sweep[prev] - sweep[cur]) / sweep[prev]
        if drop >= drop_threshold:
            cliffs.append(prev)
    return cliffs


# ---------------------------------------------------------------------------
# latency
# ---------------------------------------------------------------------------

def make_pointer_chain(n_elements: int, stride_elements: int = 0,
                       seed: int = 0) -> np.ndarray:
    """A single-cycle permutation for pointer chasing.

    ``chain[i]`` holds the index of the next element.  With
    ``stride_elements`` 0 the cycle is a random permutation (defeats
    prefetching); otherwise a fixed-stride ring (exposes prefetchers).
    """
    if n_elements < 2:
        raise ValueError("chain needs at least two elements")
    if stride_elements:
        order = (np.arange(n_elements, dtype=np.int64) * stride_elements) % n_elements
        if np.unique(order).size != n_elements:
            raise ValueError("stride must be coprime with the chain length")
    else:
        rng = np.random.default_rng(seed)
        order = rng.permutation(n_elements).astype(np.int64)
    chain = np.empty(n_elements, dtype=np.int64)
    chain[order] = np.roll(order, -1)
    return chain


def pointer_chase_latency(chain: np.ndarray, hops: int = 100_000,
                          repetitions: int = 5) -> float:
    """Empirical seconds/hop over a pointer chain.

    Pure-Python chasing measures interpreter + memory latency; absolute
    values are Python-scale, but the *relative* growth with footprint still
    exposes the hierarchy, which is the point of the exercise.
    """
    if hops < 1:
        raise ValueError("need at least one hop")
    chain_list = chain.tolist()

    def chase() -> int:
        p = 0
        for _ in range(hops):
            p = chain_list[p]
        return p

    result = measure(chase, repetitions=repetitions, warmup=1)
    return result.summary.median / hops


@dataclass(frozen=True)
class _LatencyPoint:
    footprint_bytes: int
    cycles_per_hop: float


def simulated_latency_sweep(cpu: CPUSpec, footprints_bytes: list[int],
                            hops_per_point: int = 20_000,
                            seed: int = 0) -> dict[int, float]:
    """Simulated average access latency (cycles) vs chain footprint.

    Replays random pointer chains through the cache hierarchy and computes
    AMAT per footprint — the deterministic version of the latency plot,
    showing each level's latency plateau.
    """
    out: dict[int, float] = {}
    mem_latency_cycles = cpu.memory.latency_s * cpu.frequency_hz
    for fp in footprints_bytes:
        n_elements = max(2, fp // 8)
        chain = make_pointer_chain(n_elements, seed=seed)
        hierarchy = MultiLevelCache(cpu.caches)
        p = 0
        addrs = np.empty(min(hops_per_point, 4 * n_elements), dtype=np.int64)
        for i in range(addrs.size):
            addrs[i] = p * 8
            p = int(chain[p])
        hierarchy.access_trace(addrs)
        cycles = 0.0
        for cache in hierarchy.caches:
            cycles += cache.stats.hits * cache.level.latency_cycles
        cycles += hierarchy.memory_accesses * mem_latency_cycles
        out[fp] = cycles / addrs.size
    return out
