"""Machine characterization: assemble microbenchmarks into a calibration.

Stage 2 of the performance-engineering process ("understand current
performance") starts by characterizing the machine.  This module bundles the
bandwidth/compute/latency microbenchmarks into one characterization object
that downstream models (Roofline, analytical, ECM) consume, on either plane:

* :func:`characterize_empirical` — wall-clock measurements of NumPy kernels
  on the actual interpreter/machine;
* :func:`characterize_simulated` — deterministic numbers derived from a
  :class:`~repro.machine.specs.CPUSpec` and an instruction table, used by
  tests and reproducible benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.instruction_tables import InstructionTable
from ..machine.specs import CPUSpec
from .compute import measure_peak_flops, simulated_peak_flops
from .memory import run_stream, simulated_latency_sweep

__all__ = ["MachineCharacterization", "characterize_empirical", "characterize_simulated"]


@dataclass(frozen=True)
class MachineCharacterization:
    """Calibrated machine parameters for model building.

    Attributes
    ----------
    name:
        Machine label.
    peak_flops:
        Achievable compute rate (FLOP/s).
    stream_bandwidth:
        Sustainable memory bandwidth (bytes/s), triad convention.
    latency_by_footprint:
        Average access latency (cycles or seconds — see ``latency_unit``)
        keyed by working-set bytes.
    source:
        ``"empirical"`` or ``"simulated"``.
    """

    name: str
    peak_flops: float
    stream_bandwidth: float
    latency_by_footprint: dict[int, float] = field(default_factory=dict)
    latency_unit: str = "cycles"
    source: str = "simulated"

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.stream_bandwidth <= 0:
            raise ValueError("peaks must be positive")

    @property
    def ridge_point(self) -> float:
        return self.peak_flops / self.stream_bandwidth

    @property
    def machine_balance(self) -> float:
        return self.stream_bandwidth / self.peak_flops

    def report(self) -> str:
        lines = [
            f"Machine characterization: {self.name} [{self.source}]",
            f"  peak compute    : {self.peak_flops / 1e9:10.2f} GFLOP/s",
            f"  stream bandwidth: {self.stream_bandwidth / 1e9:10.2f} GB/s",
            f"  ridge point     : {self.ridge_point:10.3f} FLOP/byte",
            f"  machine balance : {self.machine_balance:10.4f} byte/FLOP",
        ]
        if self.latency_by_footprint:
            lines.append(f"  latency vs footprint ({self.latency_unit}):")
            for fp, lat in sorted(self.latency_by_footprint.items()):
                lines.append(f"    {fp / 1024:10.0f} KiB : {lat:8.2f}")
        return "\n".join(lines)


def characterize_empirical(name: str = "this-machine", stream_n: int = 2_000_000,
                           dot_n: int = 384, repetitions: int = 5,
                           seed: int = 0) -> MachineCharacterization:
    """Measure the running machine through NumPy microbenchmarks."""
    stream = run_stream(n=stream_n, repetitions=repetitions, seed=seed)
    bandwidth = stream["triad"].best_bytes_per_s
    peak = measure_peak_flops(n=dot_n, repetitions=repetitions, seed=seed).flops_per_s
    return MachineCharacterization(
        name=name,
        peak_flops=peak,
        stream_bandwidth=bandwidth,
        latency_by_footprint={},
        latency_unit="seconds",
        source="empirical",
    )


def characterize_simulated(cpu: CPUSpec, table: InstructionTable,
                           latency_footprints: tuple[int, ...] = (
                               16 * 1024, 128 * 1024, 4 * 1024 * 1024,
                               64 * 1024 * 1024),
                           seed: int = 0) -> MachineCharacterization:
    """Deterministic characterization from spec + instruction table.

    Peak compute comes from the table's vector-FMA throughput; bandwidth
    from the spec's sustainable DRAM number; the latency sweep replays
    pointer chains through the cache simulator.
    """
    peak = simulated_peak_flops(cpu, table, "vfmadd" if cpu.vector.fma else "vmul")
    latency = simulated_latency_sweep(cpu, list(latency_footprints), seed=seed)
    return MachineCharacterization(
        name=cpu.name,
        peak_flops=peak,
        stream_bandwidth=cpu.stream_bandwidth,
        latency_by_footprint=latency,
        latency_unit="cycles",
        source="simulated",
    )
