"""GPU microarchitecture models — the Wong et al. microbenchmark results.

The course's reading list includes "Demystifying GPU microarchitecture
through microbenchmarking" (Wong et al., ISPASS 2010 — reference [18] of
the paper): the behaviours that paper measured on real silicon are modelled
here analytically, so the same exercises run without a GPU:

* **global-memory coalescing** — how many 32-byte transactions one warp's
  access pattern generates;
* **shared-memory bank conflicts** — serialization factor of strided
  shared-memory access across 32 banks;
* **warp divergence** — execution-time inflation of data-dependent
  branching within a warp;
* **latency hiding** — how many resident warps cover a given memory
  latency at a given arithmetic intensity (the occupancy rule of thumb).
"""

from __future__ import annotations

import math

__all__ = [
    "coalesced_transactions",
    "bank_conflict_factor",
    "divergence_factor",
    "warps_to_hide_latency",
    "shared_memory_sweep",
]


def coalesced_transactions(stride_elements: int, element_bytes: int = 4,
                           warp_size: int = 32,
                           transaction_bytes: int = 32) -> int:
    """Memory transactions issued for one warp's strided global access.

    Thread t accesses ``base + t * stride * element_bytes``; the memory
    system coalesces the warp's 32 addresses into aligned
    ``transaction_bytes`` segments.  Unit stride with 4-byte elements
    needs 4 transactions (128 B); stride >= 8 elements degenerates to one
    transaction per thread — the 32x traffic blow-up Wong et al. measured.
    """
    if stride_elements < 0:
        raise ValueError("stride cannot be negative")
    if element_bytes <= 0 or warp_size <= 0 or transaction_bytes <= 0:
        raise ValueError("sizes must be positive")
    if stride_elements == 0:
        return 1  # broadcast: one transaction serves the warp
    segments = set()
    for t in range(warp_size):
        address = t * stride_elements * element_bytes
        segments.add(address // transaction_bytes)
    return len(segments)


def bank_conflict_factor(stride_elements: int, banks: int = 32) -> int:
    """Serialization factor of strided shared-memory access.

    With 32 banks of 4-byte words, a warp accessing ``word[t * stride]``
    conflicts ``gcd(stride, banks)``-fold... precisely: the replay factor
    is the maximum number of threads hitting one bank =
    ``warp_size / (banks / gcd(stride, banks))`` for power-of-two banks.
    Stride 1 → 1 (conflict-free); stride 2 → 2; stride 32 → 32 (fully
    serialized) — the staircase Wong et al. plot.
    """
    if stride_elements <= 0:
        raise ValueError("stride must be positive")
    if banks <= 0 or banks & (banks - 1):
        raise ValueError("banks must be a positive power of two")
    g = math.gcd(stride_elements, banks)
    distinct_banks = banks // g
    return max(1, banks // distinct_banks)


def divergence_factor(taken_fraction: float) -> float:
    """Execution-time inflation of an if/else diverging within a warp.

    SIMT executes both paths when any thread takes each: with a fraction
    ``f`` of threads taking the if-branch (per warp), expected factor is
    1 when f in {0, 1} (uniform warps) and 2 when both paths are present.
    For threads i.i.d. with probability f, the probability both paths are
    live in a 32-thread warp is ``1 - f^32 - (1-f)^32``.
    """
    if not 0.0 <= taken_fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    f = taken_fraction
    both_live = 1.0 - f ** 32 - (1.0 - f) ** 32
    return 1.0 + both_live


def warps_to_hide_latency(latency_cycles: float, cycles_between_loads: float
                          ) -> int:
    """Resident warps needed to hide memory latency (Little's law on warps).

    Each warp issues a load every ``cycles_between_loads`` of compute; to
    keep the pipeline busy across ``latency_cycles``, the SM needs
    ``ceil(latency / cycles_between_loads)`` warps — the occupancy rule of
    thumb behind the 50%-occupancy saturation in
    :mod:`repro.parallel.gpu`.
    """
    if latency_cycles < 0 or cycles_between_loads <= 0:
        raise ValueError("invalid cycle counts")
    return max(1, math.ceil(latency_cycles / cycles_between_loads))


def shared_memory_sweep(max_stride: int = 33, banks: int = 32
                        ) -> dict[int, int]:
    """Conflict factor vs stride: the classic microbenchmark plot."""
    if max_stride < 1:
        raise ValueError("need at least stride 1")
    return {s: bank_conflict_factor(s, banks) for s in range(1, max_stride + 1)}
