"""Iteration domains and affine accesses — the polyhedral model's data.

The course teaches the polyhedral model (Table 1, via the HiPEAC tutorial)
as the formal framework behind the loop transformations of assignment 1:
an iteration *domain* (integer points of a polyhedron — here rectangular
nests, which cover all course kernels), affine *access functions* mapping
iterations to array cells, and a *schedule* (loop order) whose legality is
decided by dependence analysis (:mod:`repro.polyhedral.dependence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Domain", "AffineAccess", "LoopNest"]


@dataclass(frozen=True)
class Domain:
    """A rectangular iteration domain: the integer points of ∏ [lo_d, hi_d).

    ``bounds`` is one (lo, hi) half-open interval per loop dimension,
    outermost first.
    """

    bounds: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("domain needs at least one dimension")
        for d, (lo, hi) in enumerate(self.bounds):
            if hi <= lo:
                raise ValueError(f"dimension {d}: empty interval [{lo}, {hi})")

    @property
    def ndim(self) -> int:
        return len(self.bounds)

    @property
    def size(self) -> int:
        n = 1
        for lo, hi in self.bounds:
            n *= hi - lo
        return n

    def extents(self) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.bounds)

    def points(self, order: Sequence[int] | None = None) -> np.ndarray:
        """All points in lexicographic order of the (permuted) loops.

        Returns an array of shape (size, ndim) whose columns are in
        *original* dimension order; ``order`` permutes which loop runs
        outermost (``order[0]``) to innermost (``order[-1]``).
        """
        perm = self._check_order(order)
        axes = [np.arange(self.bounds[d][0], self.bounds[d][1]) for d in perm]
        mesh = np.meshgrid(*axes, indexing="ij")
        stacked = np.stack([m.ravel() for m in mesh], axis=1)
        # stacked columns are in perm order; scatter back to original order
        out = np.empty_like(stacked)
        for pos, d in enumerate(perm):
            out[:, d] = stacked[:, pos]
        return out

    def tiled_points(self, tile_sizes: Sequence[int],
                     order: Sequence[int] | None = None) -> np.ndarray:
        """Points in tiled traversal order: tile loops outside, point loops in."""
        perm = self._check_order(order)
        if len(tile_sizes) != self.ndim:
            raise ValueError("need one tile size per dimension")
        for t in tile_sizes:
            if t < 1:
                raise ValueError("tile sizes must be positive")
        blocks: list[np.ndarray] = []
        tile_axes = []
        for d in perm:
            lo, hi = self.bounds[d]
            tile_axes.append(range(lo, hi, tile_sizes[d]))
        import itertools

        for tile_origin in itertools.product(*tile_axes):
            axes = []
            for pos, d in enumerate(perm):
                lo = tile_origin[pos]
                hi = min(lo + tile_sizes[d], self.bounds[d][1])
                axes.append(np.arange(lo, hi))
            mesh = np.meshgrid(*axes, indexing="ij")
            stacked = np.stack([m.ravel() for m in mesh], axis=1)
            out = np.empty_like(stacked)
            for pos, d in enumerate(perm):
                out[:, d] = stacked[:, pos]
            blocks.append(out)
        return np.concatenate(blocks, axis=0)

    def skewed_points(self, outer: int, inner: int, factor: int,
                      tile_sizes: Sequence[int] | None = None) -> np.ndarray:
        """Points in skewed execution order: inner' = inner + factor·outer.

        The schedule transform matching
        :func:`repro.polyhedral.transform.skewed_vectors`: iterations are
        visited ordered by the *skewed* coordinates (optionally tiled in
        skewed space), while the returned points remain original
        coordinates, ready for access-function evaluation.
        """
        if factor < 0:
            raise ValueError("skew factor must be non-negative")
        if not 0 <= outer < self.ndim or not 0 <= inner < self.ndim or outer == inner:
            raise ValueError("invalid skew dimensions")
        pts = self.points()
        skew_coord = pts.copy()
        skew_coord[:, inner] = pts[:, inner] + factor * pts[:, outer]
        if tile_sizes is not None:
            if len(tile_sizes) != self.ndim:
                raise ValueError("need one tile size per dimension")
            for t in tile_sizes:
                if t < 1:
                    raise ValueError("tile sizes must be positive")
            tiles = skew_coord // np.asarray(tile_sizes, dtype=np.int64)
            keys = [skew_coord[:, d] for d in reversed(range(self.ndim))]
            keys += [tiles[:, d] for d in reversed(range(self.ndim))]
            order = np.lexsort(keys)
        else:
            order = np.lexsort([skew_coord[:, d]
                                for d in reversed(range(self.ndim))])
        return pts[order]

    def contains(self, point: Sequence[int]) -> bool:
        if len(point) != self.ndim:
            raise ValueError("point dimensionality mismatch")
        return all(lo <= x < hi for x, (lo, hi) in zip(point, self.bounds))

    def _check_order(self, order: Sequence[int] | None) -> tuple[int, ...]:
        if order is None:
            return tuple(range(self.ndim))
        perm = tuple(order)
        if sorted(perm) != list(range(self.ndim)):
            raise ValueError(f"order must be a permutation of 0..{self.ndim - 1}")
        return perm


@dataclass(frozen=True)
class AffineAccess:
    """An affine array access ``array[M·i + c]``.

    ``matrix`` has one row per array subscript, one column per loop
    dimension; ``offset`` is the constant vector c.
    """

    array: str
    matrix: tuple[tuple[int, ...], ...]
    offset: tuple[int, ...]
    is_write: bool = False

    def __post_init__(self) -> None:
        if not self.matrix:
            raise ValueError("access needs at least one subscript")
        width = len(self.matrix[0])
        if any(len(row) != width for row in self.matrix):
            raise ValueError("ragged access matrix")
        if len(self.offset) != len(self.matrix):
            raise ValueError("offset length must equal the number of subscripts")

    @property
    def ndim_domain(self) -> int:
        return len(self.matrix[0])

    @property
    def ndim_array(self) -> int:
        return len(self.matrix)

    def index(self, point: Sequence[int]) -> tuple[int, ...]:
        """Array cell accessed at one iteration point."""
        if len(point) != self.ndim_domain:
            raise ValueError("point dimensionality mismatch")
        return tuple(
            sum(m * x for m, x in zip(row, point)) + c
            for row, c in zip(self.matrix, self.offset)
        )

    def indices(self, points: np.ndarray) -> np.ndarray:
        """Vectorized cell computation for an (n, d) point array."""
        mat = np.asarray(self.matrix, dtype=np.int64)
        off = np.asarray(self.offset, dtype=np.int64)
        return points @ mat.T + off


@dataclass(frozen=True)
class LoopNest:
    """A loop nest: a domain plus its array accesses."""

    name: str
    domain: Domain
    accesses: tuple[AffineAccess, ...]

    def __post_init__(self) -> None:
        if not self.accesses:
            raise ValueError("nest needs at least one access")
        for acc in self.accesses:
            if acc.ndim_domain != self.domain.ndim:
                raise ValueError(
                    f"access to {acc.array} has {acc.ndim_domain} dims, "
                    f"domain has {self.domain.ndim}")

    def writes(self) -> tuple[AffineAccess, ...]:
        return tuple(a for a in self.accesses if a.is_write)

    def arrays(self) -> dict[str, tuple[int, ...]]:
        """Array name -> required extents (max index + 1 per subscript)."""
        corners = _domain_corners(self.domain)
        out: dict[str, list[int]] = {}
        for acc in self.accesses:
            idx = acc.indices(corners)
            lo = idx.min(axis=0)
            hi = idx.max(axis=0)
            if np.any(lo < 0):
                raise ValueError(f"access to {acc.array} goes negative")
            cur = out.setdefault(acc.array, [0] * acc.ndim_array)
            for k in range(acc.ndim_array):
                cur[k] = max(cur[k], int(hi[k]) + 1)
        return {name: tuple(ext) for name, ext in out.items()}


def _domain_corners(domain: Domain) -> np.ndarray:
    """All 2^d corners of a rectangular domain (affine extremes)."""
    import itertools

    corners = []
    for combo in itertools.product(*[(lo, hi - 1) for lo, hi in domain.bounds]):
        corners.append(combo)
    return np.asarray(corners, dtype=np.int64)
