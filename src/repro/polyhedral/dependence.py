"""Dependence analysis over loop nests.

Two classical layers:

* :func:`gcd_test` — the fast *may-depend* filter: an integer solution to
  ``M1·i - M2·j = c2 - c1`` can only exist if each row's gcd divides the
  constant; no solution ⇒ provably independent.
* :func:`exact_dependences` — exact dependence *distance vectors* by cell
  indexing over the (bounded) domain: group all accesses by the array cell
  they touch, order each cell's accessors by schedule time, and emit a
  dependence for every write→later-access and access→later-write pair.

Distance vectors drive the legality checks in
:mod:`repro.polyhedral.transform`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .domain import AffineAccess, Domain, LoopNest

__all__ = ["Dependence", "gcd_test", "exact_dependences", "distance_vectors"]


@dataclass(frozen=True)
class Dependence:
    """One dependence class between two accesses of a nest.

    ``kind`` is ``flow`` (write→read), ``anti`` (read→write), or
    ``output`` (write→write).  ``distance`` is the iteration-space vector
    (sink − source); ``None`` when the dependence is not uniform (distance
    varies across the domain).
    """

    array: str
    kind: str
    source_access: int
    sink_access: int
    distance: tuple[int, ...] | None

    def __post_init__(self) -> None:
        if self.kind not in ("flow", "anti", "output"):
            raise ValueError(f"unknown dependence kind {self.kind!r}")

    @property
    def is_loop_carried(self) -> bool:
        """Carried by some loop (nonzero distance) vs loop-independent."""
        return self.distance is None or any(d != 0 for d in self.distance)


def gcd_test(a1: AffineAccess, a2: AffineAccess) -> bool:
    """May the two accesses touch a common cell?  (False = provably not.)

    Per-subscript GCD test: ``M1·i = M2·j + (c2 - c1)`` has integer
    solutions only if gcd of all coefficients divides the constant
    difference.  Ignores domain bounds — conservative by design.
    """
    if a1.array != a2.array:
        return False
    if a1.ndim_array != a2.ndim_array:
        raise ValueError("accesses to the same array disagree on rank")
    for row1, row2, c1, c2 in zip(a1.matrix, a2.matrix, a1.offset, a2.offset):
        coeffs = [*row1, *(-c for c in row2)]
        g = 0
        for c in coeffs:
            g = math.gcd(g, abs(c))
        diff = c2 - c1
        if g == 0:
            if diff != 0:
                return False
            continue
        if diff % g != 0:
            return False
    return True


def exact_dependences(nest: LoopNest, max_points: int = 2_000_000
                      ) -> list[Dependence]:
    """All dependences of a nest, with uniform distance vectors when they exist.

    Exact for the given (bounded) domain; ``max_points`` guards against
    accidental blow-ups.  Schedule time is the original lexicographic
    order — transforms re-check legality against these distances.
    """
    if nest.domain.size > max_points:
        raise ValueError(
            f"domain has {nest.domain.size} points; raise max_points to force")
    points = nest.domain.points()
    n = points.shape[0]

    # For every (array, cell): ordered list of (time, access_id, is_write).
    touch: dict[tuple, list[tuple[int, int]]] = defaultdict(list)
    for acc_id, acc in enumerate(nest.accesses):
        cells = acc.indices(points)
        for t in range(n):
            touch[(acc.array, *map(int, cells[t]))].append((t, acc_id))

    # collect per (source_access, sink_access, kind): set of distances
    dist_sets: dict[tuple[int, int, str], set[tuple[int, ...]] | None] = {}
    for key, users in touch.items():
        users.sort()
        writers = [(t, a) for t, a in users if nest.accesses[a].is_write]
        if not writers:
            continue
        for t_src, a_src in users:
            src_is_write = nest.accesses[a_src].is_write
            for t_snk, a_snk in users:
                if t_snk <= t_src:
                    continue
                snk_is_write = nest.accesses[a_snk].is_write
                if not src_is_write and not snk_is_write:
                    continue
                if src_is_write and snk_is_write:
                    kind = "output"
                elif src_is_write:
                    kind = "flow"
                else:
                    kind = "anti"
                delta = tuple(int(x) for x in points[t_snk] - points[t_src])
                k = (a_src, a_snk, kind)
                if k in dist_sets:
                    existing = dist_sets[k]
                    if existing is not None:
                        existing.add(delta)
                else:
                    dist_sets[k] = {delta}
                break  # only the *next* conflicting access: direct dependence

    out: list[Dependence] = []
    for (a_src, a_snk, kind), deltas in sorted(dist_sets.items()):
        array = nest.accesses[a_src].array
        if deltas is not None and len(deltas) == 1:
            distance: tuple[int, ...] | None = next(iter(deltas))
        else:
            distance = None
        out.append(Dependence(array, kind, a_src, a_snk, distance))
    return out


def distance_vectors(nest: LoopNest, include_loop_independent: bool = False
                     ) -> list[tuple[int, ...]]:
    """Unique uniform distance vectors of a nest's dependences.

    Raises if any dependence is non-uniform (no single vector) — those
    need direction-vector reasoning, which the transforms here refuse
    rather than approximate.
    """
    vectors = set()
    for dep in exact_dependences(nest):
        if dep.distance is None:
            raise ValueError(
                f"{dep.array}: non-uniform dependence between accesses "
                f"{dep.source_access} and {dep.sink_access}")
        if not dep.is_loop_carried and not include_loop_independent:
            continue
        vectors.add(dep.distance)
    return sorted(vectors)
