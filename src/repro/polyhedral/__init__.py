"""Polyhedral model: domains, dependences, legality-checked transforms."""

from .dependence import Dependence, distance_vectors, exact_dependences, gcd_test
from .domain import AffineAccess, Domain, LoopNest
from .nests import jacobi_nest, matmul_nest, seidel_nest, transpose_nest
from .transform import (
    interchange_legal,
    legal_orders,
    lex_positive,
    nest_trace,
    simulated_misses,
    skewed_vectors,
    tiling_legal,
)

__all__ = [
    "Domain",
    "AffineAccess",
    "LoopNest",
    "Dependence",
    "gcd_test",
    "exact_dependences",
    "distance_vectors",
    "lex_positive",
    "interchange_legal",
    "tiling_legal",
    "skewed_vectors",
    "legal_orders",
    "nest_trace",
    "simulated_misses",
    "matmul_nest",
    "jacobi_nest",
    "seidel_nest",
    "transpose_nest",
]
