"""Canonical loop nests of the course kernels, in polyhedral form."""

from __future__ import annotations

from .domain import AffineAccess, Domain, LoopNest

__all__ = ["matmul_nest", "jacobi_nest", "seidel_nest", "transpose_nest"]


def matmul_nest(n: int) -> LoopNest:
    """C[i,j] += A[i,k]·B[k,j] over the (i, j, k) cube.

    Carries only the C-reduction along k — every interchange is legal and
    the full nest is tilable, which is why assignment 1 can suggest both.
    """
    if n < 1:
        raise ValueError("n must be positive")
    dom = Domain(((0, n), (0, n), (0, n)))  # i, j, k
    return LoopNest("matmul", dom, (
        AffineAccess("C", ((1, 0, 0), (0, 1, 0)), (0, 0), is_write=False),
        AffineAccess("A", ((1, 0, 0), (0, 0, 1)), (0, 0)),
        AffineAccess("B", ((0, 0, 1), (0, 1, 0)), (0, 0)),
        AffineAccess("C", ((1, 0, 0), (0, 1, 0)), (0, 0), is_write=True),
    ))


def jacobi_nest(n: int) -> LoopNest:
    """Out-of-place 5-point Jacobi sweep: dst[i,j] = f(src neighbours).

    No loop-carried dependences (separate arrays), so every order and any
    tiling is legal — the polyhedral explanation of why Jacobi is the
    friendly stencil.
    """
    if n < 3:
        raise ValueError("grid must be at least 3x3")
    dom = Domain(((1, n - 1), (1, n - 1)))  # interior points
    eye = ((1, 0), (0, 1))
    return LoopNest("jacobi", dom, (
        AffineAccess("src", eye, (-1, 0)),
        AffineAccess("src", eye, (1, 0)),
        AffineAccess("src", eye, (0, -1)),
        AffineAccess("src", eye, (0, 1)),
        AffineAccess("dst", eye, (0, 0), is_write=True),
    ))


def seidel_nest(n: int) -> LoopNest:
    """In-place 9-point Gauss-Seidel sweep (PolyBench's seidel-2d).

    Reading u[i+1, j-1] at iteration (i, j) — written later, at iteration
    (i+1, j-1) — produces the anti dependence with distance (1, -1):
    loop interchange becomes illegal ((-1, 1) is lexicographically
    negative) and the nest is not fully permutable, so rectangular tiling
    is illegal *until* the inner loop is skewed by the outer — the classic
    polyhedral teaching example.
    """
    if n < 3:
        raise ValueError("grid must be at least 3x3")
    dom = Domain(((1, n - 1), (1, n - 1)))
    eye = ((1, 0), (0, 1))
    return LoopNest("seidel", dom, (
        AffineAccess("u", eye, (-1, -1)),  # updated this sweep (flow)
        AffineAccess("u", eye, (-1, 0)),
        AffineAccess("u", eye, (-1, 1)),   # flow with distance (1, -1)
        AffineAccess("u", eye, (0, -1)),
        AffineAccess("u", eye, (0, 1)),    # anti with distance (0, 1)
        AffineAccess("u", eye, (1, -1)),   # anti with distance (1, -1)
        AffineAccess("u", eye, (1, 0)),
        AffineAccess("u", eye, (1, 1)),
        AffineAccess("u", eye, (0, 0), is_write=True),
    ))


def transpose_nest(n: int) -> LoopNest:
    """B[j,i] = A[i,j] — pure layout conflict: one array is always strided.

    No dependences at all, yet no loop order is good for both arrays;
    only tiling helps.  The standard motivation for blocking as distinct
    from reordering.
    """
    if n < 1:
        raise ValueError("n must be positive")
    dom = Domain(((0, n), (0, n)))
    return LoopNest("transpose", dom, (
        AffineAccess("A", ((1, 0), (0, 1)), (0, 0)),
        AffineAccess("B", ((0, 1), (1, 0)), (0, 0), is_write=True),
    ))
