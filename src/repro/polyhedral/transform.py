"""Legality-checked loop transformations and locality evaluation.

The transformations assignment 1 applies by hand (interchange, tiling) are
justified here formally: a transformation is *legal* iff every dependence
distance vector stays lexicographically positive under the new schedule.
The module also closes the loop with the cache simulator: a nest + schedule
compiles to a memory trace whose simulated misses *measure* the locality
the transformation was supposed to buy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..machine.specs import CPUSpec
from ..simulator.cache import MultiLevelCache
from ..simulator.trace import ArrayLayout, Trace
from .dependence import distance_vectors
from .domain import LoopNest

__all__ = [
    "lex_positive",
    "interchange_legal",
    "tiling_legal",
    "skewed_vectors",
    "legal_orders",
    "nest_trace",
    "simulated_misses",
]

_ELEM = 8  # float64 array elements


def lex_positive(vector: Sequence[int]) -> bool:
    """Is the vector lexicographically positive (first nonzero > 0)?"""
    for x in vector:
        if x != 0:
            return x > 0
    return False  # the zero vector is not positive


def interchange_legal(vectors: Sequence[Sequence[int]],
                      order: Sequence[int]) -> bool:
    """Is the loop permutation ``order`` legal for these distance vectors?

    Legal iff every permuted distance vector remains lexicographically
    positive (loop-independent zero vectors are ignored).
    """
    perm = list(order)
    for v in vectors:
        if len(v) != len(perm):
            raise ValueError("vector/permutation dimensionality mismatch")
        if all(x == 0 for x in v):
            continue
        permuted = [v[d] for d in perm]
        if not lex_positive(permuted):
            return False
    return True


def tiling_legal(vectors: Sequence[Sequence[int]],
                 dims: Sequence[int] | None = None) -> bool:
    """Is rectangular tiling of ``dims`` legal?

    A loop band is tilable iff it is *fully permutable*: every dependence
    distance component within the band is non-negative.  (Tiling reorders
    iterations within and across tiles in ways only full permutability
    licenses.)
    """
    for v in vectors:
        band = v if dims is None else [v[d] for d in dims]
        if any(x < 0 for x in band):
            return False
    return True


def skewed_vectors(vectors: Sequence[Sequence[int]], outer: int, inner: int,
                   factor: int = 1) -> list[tuple[int, ...]]:
    """Distance vectors after skewing: inner' = inner + factor·outer.

    Skewing never changes legality of the original order (it is a
    unimodular schedule change that preserves lexicographic order) but can
    make a band fully permutable — the classic fix that makes Gauss-Seidel
    style stencils tilable.
    """
    if factor < 0:
        raise ValueError("skew factor must be non-negative")
    out = []
    for v in vectors:
        if not 0 <= outer < len(v) or not 0 <= inner < len(v) or outer == inner:
            raise ValueError("invalid skew dimensions")
        nv = list(v)
        nv[inner] = nv[inner] + factor * nv[outer]
        out.append(tuple(nv))
    return out


def legal_orders(nest: LoopNest) -> list[tuple[int, ...]]:
    """All legal loop permutations of a nest."""
    import itertools

    vectors = distance_vectors(nest)
    orders = []
    for perm in itertools.permutations(range(nest.domain.ndim)):
        if interchange_legal(vectors, perm):
            orders.append(perm)
    return orders


def nest_trace(nest: LoopNest, order: Sequence[int] | None = None,
               tile_sizes: Sequence[int] | None = None,
               skew: tuple[int, int, int] | None = None,
               layout: ArrayLayout | None = None) -> Trace:
    """Compile a nest under a schedule into a memory trace.

    Arrays are laid out row-major at page-aligned bases; accesses are
    issued in program order per iteration.  ``skew`` = (outer, inner,
    factor) applies the skewing schedule (optionally tiled in skewed
    space) — the transform that makes seidel-style nests tilable.  This
    is what lets the polyhedral layer *measure* locality with the cache
    simulator instead of arguing about it.
    """
    if skew is not None:
        if order is not None:
            raise ValueError("skew and order schedules are mutually exclusive")
        outer, inner, factor = skew
        points = nest.domain.skewed_points(outer, inner, factor, tile_sizes)
    elif tile_sizes is not None:
        points = nest.domain.tiled_points(tile_sizes, order)
    else:
        points = nest.domain.points(order)
    layout = layout or ArrayLayout()
    extents = nest.arrays()
    bases: dict[str, int] = {}
    strides: dict[str, np.ndarray] = {}
    for name, ext in extents.items():
        total = int(np.prod(ext))
        bases[name] = layout.alloc(name, total * _ELEM)
        # row-major strides
        s = np.ones(len(ext), dtype=np.int64)
        for k in range(len(ext) - 2, -1, -1):
            s[k] = s[k + 1] * ext[k + 1]
        strides[name] = s

    n = points.shape[0]
    k = len(nest.accesses)
    addr = np.empty(n * k, dtype=np.int64)
    writes = np.empty(n * k, dtype=bool)
    for j, acc in enumerate(nest.accesses):
        cells = acc.indices(points)
        flat = cells @ strides[acc.array]
        addr[j::k] = bases[acc.array] + flat * _ELEM
        writes[j::k] = acc.is_write
    label = f"{nest.name}-order{tuple(order) if order else 'id'}"
    if tile_sizes:
        label += f"-tile{tuple(tile_sizes)}"
    if skew:
        label += f"-skew{skew}"
    return Trace(addr, writes, label=label)


def simulated_misses(nest: LoopNest, cpu: CPUSpec,
                     order: Sequence[int] | None = None,
                     tile_sizes: Sequence[int] | None = None,
                     prefetch: bool = False) -> dict[str, int]:
    """Cache misses of a nest under a schedule (the locality measurement)."""
    trace = nest_trace(nest, order, tile_sizes)
    hierarchy = MultiLevelCache(cpu.caches, prefetch=prefetch)
    hierarchy.access_trace(trace.addresses, trace.writes)
    return hierarchy.miss_counts()
