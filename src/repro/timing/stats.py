"""Robust statistics for performance measurements.

Lecture topic "Basics of performance" (Table 1) teaches how to *correctly
measure and communicate* performance data: which average to use for which
metric, confidence intervals, and outlier handling.  This module implements
that methodology:

* arithmetic mean for times, **harmonic** mean for rates derived from a
  fixed amount of work, geometric mean for normalized ratios (speedups over
  a benchmark suite) — using the wrong mean is the classic benchmarking
  crime (Fleming & Wallace, 1986);
* confidence intervals via Student's t (small samples) and the
  nonparametric percentile bootstrap;
* outlier rejection with the median-absolute-deviation (MAD) rule, which
  tolerates the heavy right tail of timing distributions.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _sps

__all__ = [
    "Summary",
    "summarize",
    "significantly_faster",
    "arithmetic_mean",
    "harmonic_mean",
    "geometric_mean",
    "confidence_interval",
    "bootstrap_ci",
    "mad_outlier_mask",
    "reject_outliers",
    "coefficient_of_variation",
    "speedup",
    "relative_error",
    "percent_of_peak",
    "median_ratio_ci",
    "change_points",
]


def _as_array(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty 1-D sequence of samples")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples contain NaN or infinity")
    return arr


def arithmetic_mean(samples: Sequence[float]) -> float:
    """Arithmetic mean — correct for *times* (additive quantities)."""
    return float(np.mean(_as_array(samples)))


def harmonic_mean(samples: Sequence[float]) -> float:
    """Harmonic mean — correct for *rates* over equal amounts of work.

    E.g. the mean FLOP/s over repetitions of the same kernel equals
    total work / total time, which is the harmonic mean of per-run rates.
    """
    arr = _as_array(samples)
    if np.any(arr <= 0):
        raise ValueError("harmonic mean requires strictly positive rates")
    return float(arr.size / np.sum(1.0 / arr))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean — correct for normalized ratios (speedups)."""
    arr = _as_array(samples)
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive ratios")
    return float(np.exp(np.mean(np.log(arr))))


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Two-sided Student-t confidence interval for the mean.

    With a single sample the interval degenerates to (x, x).
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    arr = _as_array(samples)
    mean = float(np.mean(arr))
    if arr.size == 1:
        return (mean, mean)
    sem = float(np.std(arr, ddof=1) / math.sqrt(arr.size))
    if sem == 0.0:
        return (mean, mean)
    half = float(_sps.t.ppf(0.5 + confidence / 2, df=arr.size - 1)) * sem
    return (mean - half, mean + half)


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    statistic=np.median,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for an arbitrary statistic.

    Timing distributions are rarely normal (long right tails from OS jitter),
    so the course teaches the bootstrap as the assumption-free alternative.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("need at least one resample")
    arr = _as_array(samples)
    if arr.size == 1 or np.ptp(arr) == 0:
        # degenerate sample: every resample is identical, so the interval
        # is exactly the statistic — skip the resampling work entirely
        val = float(statistic(arr))
        return (val, val)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    reps = np.apply_along_axis(statistic, 1, arr[idx])
    lo, hi = np.percentile(reps, [100 * (0.5 - confidence / 2), 100 * (0.5 + confidence / 2)])
    return (float(lo), float(hi))


def mad_outlier_mask(samples: Sequence[float], threshold: float = 3.5) -> np.ndarray:
    """Boolean mask, ``True`` where a sample is a MAD outlier.

    Uses the modified z-score of Iglewicz & Hoaglin: a point is an outlier
    when ``0.6745 * |x - median| / MAD > threshold``.  When MAD is zero
    (more than half the samples identical) no point is flagged.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    arr = _as_array(samples)
    med = np.median(arr)
    mad = np.median(np.abs(arr - med))
    if mad == 0:
        return np.zeros(arr.shape, dtype=bool)
    return np.asarray(0.6745 * np.abs(arr - med) / mad > threshold)


def reject_outliers(samples: Sequence[float], threshold: float = 3.5) -> np.ndarray:
    """Samples with MAD outliers removed (never removes everything)."""
    arr = _as_array(samples)
    keep = ~mad_outlier_mask(arr, threshold)
    return arr[keep] if keep.any() else arr


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """Std/mean; the course's rule of thumb for "is this run stable?".

    Degenerate inputs get well-defined answers instead of exceptions — the
    sequential stopping rule evaluates this after every batch and must not
    blow up on a constant or single-sample window: a zero-variance sample
    has CV 0 even at zero mean (perfectly stable), while a zero-mean
    sample *with* spread has infinite CV (no relative statement can be
    made about a zero center).
    """
    arr = _as_array(samples)
    mean = float(np.mean(arr))
    ddof = 1 if arr.size > 1 else 0
    std = float(np.std(arr, ddof=ddof))
    if mean == 0:
        return 0.0 if std == 0.0 else math.inf
    return float(std / abs(mean))


def speedup(baseline_time: float, optimized_time: float) -> float:
    """Classic speedup T_base / T_opt (>1 means the optimization helped)."""
    if baseline_time <= 0 or optimized_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / optimized_time


def relative_error(predicted: float, measured: float) -> float:
    """Signed relative model error (prediction - measurement) / measurement."""
    if measured == 0:
        raise ValueError("relative error undefined for zero measurement")
    return (predicted - measured) / measured


def percent_of_peak(achieved: float, peak: float) -> float:
    """Achieved fraction of a peak rate, in percent."""
    if peak <= 0:
        raise ValueError("peak must be positive")
    if achieved < 0:
        raise ValueError("achieved rate must be non-negative")
    return 100.0 * achieved / peak


def significantly_faster(candidate_times: Sequence[float],
                         baseline_times: Sequence[float],
                         alpha: float = 0.05) -> bool:
    """Is the candidate *statistically* faster than the baseline?

    One-sided Mann-Whitney U test (nonparametric — timing samples are not
    normal) at significance level ``alpha``.  The course's empirical-
    analysis rule: never claim a speedup from overlapping noise; with
    fewer than 4 samples per side, this conservatively returns False.
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    a = _as_array(candidate_times)
    b = _as_array(baseline_times)
    if a.size < 4 or b.size < 4:
        return False
    result = _sps.mannwhitneyu(a, b, alternative="less")
    return bool(result.pvalue < alpha)


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of a measurement sample.

    Produced by :func:`summarize`; this is the record the reporting stage
    (stage 7) serializes into tables.
    """

    n: int
    mean: float
    median: float
    std: float
    min: float
    max: float
    ci_low: float
    ci_high: float
    cv: float
    n_outliers: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3e} median={self.median:.3e} "
            f"ci95=[{self.ci_low:.3e}, {self.ci_high:.3e}] cv={self.cv:.2%}"
        )


def median_ratio_ci(
    candidate_times: Sequence[float],
    baseline_times: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI for the ratio median(candidate) / median(baseline).

    The effect size the regression gate reports: a ratio above 1 means the
    candidate is slower.  Both samples are resampled independently, so the
    interval reflects noise on either side of the comparison.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("need at least one resample")
    a = _as_array(candidate_times)
    b = _as_array(baseline_times)
    if np.any(a <= 0) or np.any(b <= 0):
        raise ValueError("times must be strictly positive")
    if (a.size == 1 or np.ptp(a) == 0) and (b.size == 1 or np.ptp(b) == 0):
        # both samples constant: the ratio is exact, no resampling needed
        ratio = float(np.median(a) / np.median(b))
        return (ratio, ratio)
    rng = np.random.default_rng(seed)
    med_a = np.median(a[rng.integers(0, a.size, size=(n_resamples, a.size))], axis=1)
    med_b = np.median(b[rng.integers(0, b.size, size=(n_resamples, b.size))], axis=1)
    ratios = med_a / med_b
    lo, hi = np.percentile(ratios, [100 * (0.5 - confidence / 2),
                                    100 * (0.5 + confidence / 2)])
    return (float(lo), float(hi))


def _step_pvalue(left: np.ndarray, right: np.ndarray) -> float:
    """Welch-t p-value for a mean shift, tolerant of zero-variance segments."""
    var_l = float(np.var(left, ddof=1)) if left.size > 1 else 0.0
    var_r = float(np.var(right, ddof=1)) if right.size > 1 else 0.0
    if var_l == 0.0 and var_r == 0.0:
        # two flat segments: a step is either exact or absent
        return 0.0 if not np.isclose(np.mean(left), np.mean(right)) else 1.0
    with warnings.catch_warnings():
        # near-identical segments make scipy warn about precision loss in
        # the moment calculation; for this scan that just means "no step"
        warnings.simplefilter("ignore", RuntimeWarning)
        stat = _sps.ttest_ind(left, right, equal_var=False)
    p = float(stat.pvalue)
    return 1.0 if math.isnan(p) else p


def change_points(values: Sequence[float], min_segment: int = 3,
                  alpha: float = 0.01, min_rel_change: float = 0.05) -> list[int]:
    """Indices where a series of per-run statistics shifts level.

    Binary segmentation with a Welch-t test at every admissible split: the
    strongest significant split (``p < alpha`` *and* relative mean change of
    at least ``min_rel_change``) is accepted, then each side is scanned
    recursively.  Returned indices are the first position of the *new*
    regime, sorted ascending.  Designed for a benchmark's history of per-run
    medians, where a slow drift or a step introduced many runs ago would
    never show up in a pairwise latest-vs-baseline comparison.
    """
    if min_segment < 2:
        raise ValueError("min_segment must be at least 2")
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    if min_rel_change < 0:
        raise ValueError("min_rel_change cannot be negative")
    arr = _as_array(values)
    found: list[int] = []

    def _scan(lo: int, hi: int) -> None:
        best_split, best_p = -1, 1.0
        for split in range(lo + min_segment, hi - min_segment + 1):
            left, right = arr[lo:split], arr[split:hi]
            mean_l = float(np.mean(left))
            rel = (abs(float(np.mean(right)) - mean_l) / abs(mean_l)
                   if mean_l != 0 else math.inf)
            if rel < min_rel_change:
                continue
            p = _step_pvalue(left, right)
            if p < alpha and p < best_p:
                best_split, best_p = split, p
        if best_split >= 0:
            found.append(best_split)
            _scan(lo, best_split)
            _scan(best_split, hi)

    _scan(0, arr.size)
    return sorted(found)


def summarize(samples: Sequence[float], confidence: float = 0.95,
              drop_outliers: bool = True) -> Summary:
    """Summarize a sample of measurements the way the course teaches.

    Outliers are flagged with the MAD rule and (by default) removed before
    the mean/CI are computed; min/max/n always refer to the raw sample so
    the reader can see what was dropped.
    """
    raw = _as_array(samples)
    kept = reject_outliers(raw) if drop_outliers else raw
    lo, hi = confidence_interval(kept, confidence)
    mean = float(np.mean(kept))
    return Summary(
        n=int(raw.size),
        mean=mean,
        median=float(np.median(kept)),
        std=float(np.std(kept, ddof=1)) if kept.size > 1 else 0.0,
        min=float(np.min(raw)),
        max=float(np.max(raw)),
        ci_low=lo,
        ci_high=hi,
        cv=coefficient_of_variation(kept) if mean != 0 else 0.0,
        n_outliers=int(raw.size - kept.size),
    )
