"""Timers and repetition control.

Implements the measurement discipline from the "Basics of performance"
lecture: monotonic clocks, explicit warmup to reach steady state, enough
repetitions to bound the confidence interval, and detection of unstable
runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..observe import Tracer, get_tracer
from .stats import Summary, coefficient_of_variation, summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .adaptive import SampleSummary

__all__ = [
    "Timer",
    "MeasurementResult",
    "measure",
    "measure_until_stable",
    "steady_state_index",
]


class Timer:
    """A context-manager stopwatch over the monotonic high-resolution clock.

    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = float("nan")

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer exited without entering")
        self.elapsed = end - self._start


@dataclass(frozen=True)
class MeasurementResult:
    """Raw repetitions plus their statistical summary.

    ``stop_reason`` explains why sampling ended (see the ``STOP_*``
    constants in :mod:`repro.timing.adaptive`): ``"fixed"`` for plain
    fixed-repetition :func:`measure`, ``"converged"`` when a stopping
    rule reached its target, ``"max_repetitions"`` / ``"max_seconds"`` /
    ``"budget"`` when a cap fired first.  ``achieved_rel_ci`` and
    ``achieved_cv`` report how tight the estimate actually got, and
    ``sample`` (when present) carries the distribution-aware
    :class:`~repro.timing.adaptive.SampleSummary` with per-mode medians
    and the multimodality flag.
    """

    times: tuple[float, ...]
    warmup_times: tuple[float, ...]
    summary: Summary
    stable: bool
    stop_reason: str = "fixed"
    achieved_rel_ci: float | None = None
    achieved_cv: float | None = None
    sample: "SampleSummary | None" = None

    @property
    def best(self) -> float:
        """Fastest repetition — closest to noise-free hardware time."""
        return min(self.times)

    @property
    def stopped_early(self) -> bool:
        """True when a sequential stopping rule converged before its caps."""
        return self.stop_reason == "converged"

    def rate(self, work: float) -> float:
        """Turn a fixed amount of ``work`` into a rate using *total* time.

        Equivalent to the harmonic mean of per-repetition rates, which is
        the correct average for rates over equal work.
        """
        if work <= 0:
            raise ValueError("work must be positive")
        return work * len(self.times) / sum(self.times)


def measure(
    fn: Callable[[], object],
    repetitions: int = 7,
    warmup: int = 2,
    cv_threshold: float = 0.05,
    tracer: Tracer | None = None,
) -> MeasurementResult:
    """Measure ``fn`` with warmup and repetition.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is ignored (but returning
        something prevents the work being optimized away in compiled
        languages — we keep the convention for portability of the method).
    repetitions:
        Timed repetitions after warmup.
    warmup:
        Untimed (but recorded) warmup runs that populate caches, trigger
        lazy allocation, and JIT-compile where applicable.
    cv_threshold:
        The run is flagged unstable when the coefficient of variation of
        the timed repetitions exceeds this threshold.
    tracer:
        Observability hook: one ``timing.measure`` span wrapping a span per
        warmup/timed repetition.  ``None`` uses the active tracer (a no-op
        unless tracing was enabled; see :mod:`repro.observe`).  Spans wrap
        the :class:`Timer` region from outside, so enabling tracing never
        pollutes the measured times.
    """
    if repetitions < 1:
        raise ValueError("need at least one timed repetition")
    if warmup < 0:
        raise ValueError("warmup cannot be negative")
    tracer = get_tracer() if tracer is None else tracer
    with tracer.span("timing.measure", category="timing",
                     repetitions=repetitions, warmup=warmup) as mspan:
        warm: list[float] = []
        for _ in range(warmup):
            with tracer.span("timing.warmup", category="timing") as span:
                with Timer() as t:
                    fn()
                span.set("seconds", t.elapsed)
            warm.append(t.elapsed)
        times: list[float] = []
        for _ in range(repetitions):
            with tracer.span("timing.repetition", category="timing") as span:
                with Timer() as t:
                    fn()
                span.set("seconds", t.elapsed)
            times.append(t.elapsed)
        summary = summarize(times)
        achieved_cv = (coefficient_of_variation(times)
                       if len(times) > 1 else 0.0)
        stable = achieved_cv <= cv_threshold
        mspan.set("stable", stable)
        mspan.set("best_seconds", min(times))
    return MeasurementResult(tuple(times), tuple(warm), summary, stable,
                             achieved_cv=achieved_cv)


def measure_until_stable(
    fn: Callable[[], object],
    cv_threshold: float = 0.05,
    batch: int = 5,
    max_repetitions: int = 60,
    warmup: int = 2,
    tracer: Tracer | None = None,
) -> MeasurementResult:
    """Keep adding repetitions until the CV falls below ``cv_threshold``.

    Mirrors what mature harnesses (Google Benchmark, pytest-benchmark) do:
    the sample grows until the estimate is tight or a budget is exhausted.
    ``max_repetitions`` is a hard cap: the final batch is clamped so no
    more than ``max_repetitions`` timed repetitions ever run.

    This is now a thin wrapper over
    :func:`repro.timing.adaptive.measure_adaptive` with the legacy
    CV criterion — same signature and batching behaviour, but the result
    additionally reports ``stop_reason`` (``"converged"`` vs
    ``"max_repetitions"``), ``achieved_cv``, and a distribution-aware
    ``sample`` summary, and the emitted span carries the same attributes.
    """
    if batch < 2:
        raise ValueError("batch must be at least 2 to estimate variance")
    if max_repetitions < batch:
        raise ValueError("max_repetitions must cover at least one batch")
    if warmup < 0:
        raise ValueError("warmup cannot be negative")
    from .adaptive import measure_adaptive  # deferred: adaptive imports us

    return measure_adaptive(
        fn, rel_ci=cv_threshold, criterion="cv", min_repetitions=batch,
        batch=batch, max_repetitions=max_repetitions, warmup=warmup,
        tracer=tracer, span_name="timing.measure_until_stable")


def steady_state_index(times: Sequence[float], window: int = 3,
                       tolerance: float = 0.10) -> int:
    """Index at which a series of repetition times reaches steady state.

    A position ``i`` is steady when every time in ``times[i:i+window]`` is
    within ``tolerance`` (relative) of the median of the tail from ``i``.
    Returns ``len(times)`` when no steady window exists — the caller should
    then increase warmup.  Used to decide how many warmup runs a new kernel
    needs before trusting measurements.
    """
    arr = np.asarray(times, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty 1-D series")
    if window < 1:
        raise ValueError("window must be >= 1")
    if window > arr.size:
        return int(arr.size)
    for i in range(arr.size - window + 1):
        tail_median = float(np.median(arr[i:]))
        if tail_median == 0:
            return i
        win = arr[i : i + window]
        if np.all(np.abs(win - tail_median) <= tolerance * tail_median):
            return i
    return int(arr.size)
