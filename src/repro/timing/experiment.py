"""Experimental design for empirical performance analysis (Objective 4).

Lesson 3 of the paper: "Do not underestimate empirical analysis efforts …
this is often the case when experimental design is missing, and/or
automation is not properly defined."  This module is that automation: it
expresses full-factorial and one-factor-at-a-time designs over named
factors, runs them with replication, and collects results in a tidy table
ready for statistical modeling (assignment 3 consumes these tables as
training data).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from .stats import Summary, summarize

__all__ = [
    "Factor",
    "Design",
    "full_factorial",
    "one_factor_at_a_time",
    "Observation",
    "ResultTable",
    "run_design",
]


@dataclass(frozen=True)
class Factor:
    """A named experimental factor with its candidate levels."""

    name: str
    levels: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("factor needs a name")
        if len(self.levels) == 0:
            raise ValueError(f"factor {self.name!r} needs at least one level")
        if len(set(self.levels)) != len(self.levels):
            raise ValueError(f"factor {self.name!r} has duplicate levels")


@dataclass(frozen=True)
class Design:
    """An ordered collection of experimental configurations."""

    factors: tuple[Factor, ...]
    points: tuple[Mapping[str, object], ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Mapping[str, object]]:
        return iter(self.points)


def full_factorial(factors: Sequence[Factor]) -> Design:
    """Cross product of all factor levels — the assignments' default design."""
    if not factors:
        raise ValueError("need at least one factor")
    names = [f.name for f in factors]
    if len(set(names)) != len(names):
        raise ValueError("duplicate factor names")
    points = tuple(
        dict(zip(names, combo))
        for combo in itertools.product(*(f.levels for f in factors))
    )
    return Design(tuple(factors), points)


def one_factor_at_a_time(
    baseline: Mapping[str, object], factors: Sequence[Factor]
) -> Design:
    """Vary one factor at a time around a baseline configuration.

    Cheaper than full factorial; the course teaches it as the screening
    design to find which factors matter before committing to a sweep.
    """
    if not factors:
        raise ValueError("need at least one factor")
    for f in factors:
        if f.name not in baseline:
            raise ValueError(f"baseline missing factor {f.name!r}")
    points: list[dict[str, object]] = [dict(baseline)]
    seen = {tuple(sorted(baseline.items(), key=lambda kv: kv[0]))}
    for f in factors:
        for level in f.levels:
            pt = dict(baseline)
            pt[f.name] = level
            key = tuple(sorted(pt.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                points.append(pt)
    return Design(tuple(factors), tuple(points))


@dataclass(frozen=True)
class Observation:
    """One configuration's replicated measurements."""

    config: Mapping[str, object]
    values: tuple[float, ...]
    summary: Summary


@dataclass
class ResultTable:
    """Tidy result collection: one row per (configuration, replicate).

    ``to_arrays`` exports a numeric feature matrix + response vector for
    :mod:`repro.statmodel`; non-numeric factors are label-encoded with a
    stable, documented mapping.
    """

    observations: list[Observation] = field(default_factory=list)

    def append(self, obs: Observation) -> None:
        self.observations.append(obs)

    def __len__(self) -> int:
        return len(self.observations)

    def configs(self) -> list[Mapping[str, object]]:
        return [o.config for o in self.observations]

    def means(self) -> np.ndarray:
        return np.array([o.summary.mean for o in self.observations])

    def factor_names(self) -> list[str]:
        if not self.observations:
            return []
        return sorted(self.observations[0].config)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, dict[str, dict[object, int]]]:
        """(X, y, encodings): features, mean response, label encodings."""
        if not self.observations:
            raise ValueError("empty result table")
        names = self.factor_names()
        encodings: dict[str, dict[object, int]] = {}
        columns: list[list[float]] = []
        for obs in self.observations:
            if sorted(obs.config) != names:
                raise ValueError("inconsistent factor names across observations")
            row: list[float] = []
            for name in names:
                value = obs.config[name]
                if isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
                    value, bool
                ):
                    row.append(float(value))
                else:
                    enc = encodings.setdefault(name, {})
                    if value not in enc:
                        enc[value] = len(enc)
                    row.append(float(enc[value]))
            columns.append(row)
        X = np.asarray(columns, dtype=float)
        y = self.means()
        return X, y, encodings

    def rows(self) -> list[dict[str, object]]:
        """One flat dict per observation — convenient for CSV export."""
        out = []
        for obs in self.observations:
            row: dict[str, object] = dict(obs.config)
            row["mean"] = obs.summary.mean
            row["median"] = obs.summary.median
            row["ci_low"] = obs.summary.ci_low
            row["ci_high"] = obs.summary.ci_high
            row["n_samples"] = obs.summary.n
            out.append(row)
        return out


def run_design(
    design: Design,
    run: Callable[..., float],
    replicates: int = 3,
    seed: int | None = None,
) -> ResultTable:
    """Execute ``run(**config)`` for every design point with replication.

    ``run`` must return the measured value (e.g. seconds).  When ``seed`` is
    given, a per-replicate ``seed`` keyword is injected so stochastic
    workloads are reproducible yet varied across replicates.
    """
    if replicates < 1:
        raise ValueError("need at least one replicate")
    table = ResultTable()
    for i, config in enumerate(design):
        values = []
        for r in range(replicates):
            kwargs = dict(config)
            if seed is not None:
                kwargs["seed"] = seed + i * replicates + r
            values.append(float(run(**kwargs)))
        table.append(Observation(dict(config), tuple(values), summarize(values)))
    return table
