"""Performance metric definitions (Objective 1).

A metric couples an amount of *work* with a *time* to form a rate, and the
course insists students pick the metric appropriate for the question:
FLOP/s for compute, bytes/s for data movement, arithmetic intensity to
relate the two, plus parallel efficiency metrics for scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "WorkCount",
    "flops_rate",
    "bandwidth",
    "arithmetic_intensity",
    "parallel_efficiency",
    "scaled_efficiency",
    "karp_flatt",
    "cpi",
    "ipc",
    "time_from_rate",
]


@dataclass(frozen=True)
class WorkCount:
    """Exact operation/traffic counts of one kernel execution.

    Every kernel in :mod:`repro.kernels` reports its work through this
    record, which then feeds the Roofline characterization and analytical
    models.

    Attributes
    ----------
    flops:
        Floating point operations (an FMA counts as 2).
    loads_bytes / stores_bytes:
        Minimum *algorithmic* traffic: bytes that must cross the
        processor-memory boundary assuming a perfect (compulsory-only)
        cache.  Actual traffic, measured by the cache simulator, is at
        least this.
    int_ops:
        Integer/address operations, used by fine-grained models.
    """

    flops: float = 0.0
    loads_bytes: float = 0.0
    stores_bytes: float = 0.0
    int_ops: float = 0.0

    def __post_init__(self) -> None:
        for name in ("flops", "loads_bytes", "stores_bytes", "int_ops"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @property
    def bytes_total(self) -> float:
        return self.loads_bytes + self.stores_bytes

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in FLOP/byte (inf for traffic-free work)."""
        return arithmetic_intensity(self.flops, self.bytes_total)

    def __add__(self, other: "WorkCount") -> "WorkCount":
        if not isinstance(other, WorkCount):
            return NotImplemented
        return WorkCount(
            self.flops + other.flops,
            self.loads_bytes + other.loads_bytes,
            self.stores_bytes + other.stores_bytes,
            self.int_ops + other.int_ops,
        )

    def scale(self, factor: float) -> "WorkCount":
        """Work multiplied by ``factor`` (e.g. per-iteration -> total)."""
        if factor < 0:
            raise ValueError("factor cannot be negative")
        return WorkCount(self.flops * factor, self.loads_bytes * factor,
                         self.stores_bytes * factor, self.int_ops * factor)


def flops_rate(flops: float, seconds: float) -> float:
    """FLOP/s achieved for ``flops`` operations in ``seconds``."""
    if seconds <= 0:
        raise ValueError("time must be positive")
    if flops < 0:
        raise ValueError("flops cannot be negative")
    return flops / seconds


def bandwidth(bytes_moved: float, seconds: float) -> float:
    """Bytes/s achieved for ``bytes_moved`` in ``seconds``."""
    if seconds <= 0:
        raise ValueError("time must be positive")
    if bytes_moved < 0:
        raise ValueError("bytes cannot be negative")
    return bytes_moved / seconds


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOP per byte; infinity when no data is moved."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("work terms cannot be negative")
    if bytes_moved == 0:
        return float("inf")
    return flops / bytes_moved


def parallel_efficiency(speedup_value: float, workers: int) -> float:
    """Strong-scaling efficiency S(p)/p in [0, ...]."""
    if workers < 1:
        raise ValueError("need at least one worker")
    if speedup_value < 0:
        raise ValueError("speedup cannot be negative")
    return speedup_value / workers


def scaled_efficiency(t1: float, tp: float) -> float:
    """Weak-scaling efficiency T(1)/T(p) with problem size grown with p."""
    if t1 <= 0 or tp <= 0:
        raise ValueError("times must be positive")
    return t1 / tp


def karp_flatt(speedup_value: float, workers: int) -> float:
    """Experimentally determined serial fraction (Karp & Flatt, 1990).

    ``e = (1/S - 1/p) / (1 - 1/p)``.  A rising e with p reveals overhead
    growth that Amdahl's fixed serial fraction cannot explain.
    """
    if workers < 2:
        raise ValueError("Karp-Flatt is defined for p >= 2")
    if speedup_value <= 0:
        raise ValueError("speedup must be positive")
    return (1.0 / speedup_value - 1.0 / workers) / (1.0 - 1.0 / workers)


def cpi(cycles: float, instructions: float) -> float:
    """Cycles per instruction."""
    if instructions <= 0:
        raise ValueError("instruction count must be positive")
    if cycles < 0:
        raise ValueError("cycles cannot be negative")
    return cycles / instructions


def ipc(cycles: float, instructions: float) -> float:
    """Instructions per cycle (reciprocal of CPI)."""
    if cycles <= 0:
        raise ValueError("cycle count must be positive")
    if instructions < 0:
        raise ValueError("instructions cannot be negative")
    return instructions / cycles


def time_from_rate(work: float, rate: float) -> float:
    """Invert a rate: seconds to do ``work`` at ``rate`` work/s."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if work < 0:
        raise ValueError("work cannot be negative")
    return work / rate
