"""Variant comparison: the "which version wins, and is it real?" harness.

Every assignment ends with a table comparing code versions.  This module
produces that table with the statistical discipline the course grades:
repeated measurements, medians with confidence intervals, speedups against
a named baseline, and a significance verdict (no speedup claims from
overlapping noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..observe import Tracer, get_tracer
from .stats import Summary, significantly_faster, summarize
from .timers import measure

__all__ = ["VariantResult", "ComparisonTable", "compare_variants"]


@dataclass(frozen=True)
class VariantResult:
    """One variant's measurements relative to the baseline."""

    name: str
    summary: Summary
    times: tuple[float, ...]
    speedup_vs_baseline: float
    significant: bool

    @property
    def is_baseline(self) -> bool:
        return self.speedup_vs_baseline == 1.0 and self.significant is False


@dataclass(frozen=True)
class ComparisonTable:
    """Ranked variant comparison with a named baseline."""

    baseline: str
    results: tuple[VariantResult, ...]

    def best(self) -> VariantResult:
        return min(self.results, key=lambda r: r.summary.median)

    def winners(self) -> list[VariantResult]:
        """Variants significantly faster than the baseline."""
        return [r for r in self.results
                if r.name != self.baseline and r.significant]

    def report(self) -> str:
        lines = [f"  {'variant':24s} {'median':>12s} {'ci95':>26s} "
                 f"{'speedup':>8s} {'significant':>12s}"]
        for r in sorted(self.results, key=lambda r: r.summary.median):
            ci = f"[{r.summary.ci_low:.3e}, {r.summary.ci_high:.3e}]"
            base = " (baseline)" if r.name == self.baseline else ""
            sig = "-" if r.name == self.baseline else ("yes" if r.significant else "no")
            lines.append(f"  {r.name:24s} {r.summary.median:12.4e} {ci:>26s} "
                         f"{r.speedup_vs_baseline:8.2f} {sig:>12s}{base}")
        return "\n".join(lines)


def compare_variants(variants: Mapping[str, Callable[[], object]],
                     baseline: str, repetitions: int = 7, warmup: int = 2,
                     alpha: float = 0.05,
                     tracer: Tracer | None = None) -> ComparisonTable:
    """Measure every variant and compare against the named baseline.

    ``variants`` maps name -> zero-argument callable (close over the
    operands; regenerate state inside if the kernel mutates it).

    Observability: one ``timing.compare_variants`` span wraps the whole
    table, with one ``timing.variant`` span per variant (its ``measure``
    repetitions nest inside), and the significance verdicts feed the
    ``timing.variants_significant`` / ``timing.variants_not_significant``
    counters.  ``tracer=None`` uses the active tracer — a no-op unless
    tracing is enabled (see :mod:`repro.observe`).
    """
    if baseline not in variants:
        raise ValueError(f"baseline {baseline!r} not among the variants")
    if len(variants) < 2:
        raise ValueError("need at least two variants to compare")
    tracer = get_tracer() if tracer is None else tracer
    with tracer.span("timing.compare_variants", category="timing",
                     baseline=baseline, variants=len(variants)) as cspan:
        measured: dict[str, tuple[float, ...]] = {}
        for name, fn in variants.items():
            with tracer.span("timing.variant", category="timing",
                             variant=name) as vspan:
                result = measure(fn, repetitions=repetitions, warmup=warmup,
                                 tracer=tracer)
                vspan.set("median_seconds", result.summary.median)
            measured[name] = result.times
        base_times = measured[baseline]
        base_median = summarize(base_times).median
        results = []
        for name, times in measured.items():
            summary = summarize(times)
            if name == baseline:
                speedup, significant = 1.0, False
            else:
                speedup = base_median / summary.median
                significant = significantly_faster(times, base_times, alpha)
                tracer.count("timing.variants_significant" if significant
                             else "timing.variants_not_significant")
            results.append(VariantResult(name, summary, times, speedup,
                                         significant))
        table = ComparisonTable(baseline=baseline, results=tuple(results))
        cspan.set("best", table.best().name)
    return table
