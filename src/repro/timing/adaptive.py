"""Adaptive measurement: sequential stopping, distribution-aware summaries.

Every timed path in the toolbox used to burn a fixed repetition count
regardless of how noisy the benchmark actually was.  This module replaces
that with the methodology of the two SHARP companion papers — "Adaptive
stopping rule for performance measurements" (Mittal et al., SC-W'23) and
"Revisiting Performance Evaluation in the Age of Uncertainty" (Bruel et
al., EduHiPC'23):

* :func:`measure_adaptive` batches repetitions and stops as soon as the
  bootstrap confidence interval on the median is tight enough
  (``rel_ci``), instead of running a fixed count.  Stable benchmarks stop
  at ``min_repetitions``; noisy ones keep sampling up to hard
  ``max_repetitions`` / ``max_seconds`` caps.  The classic CV-only rule
  (:func:`~repro.timing.timers.measure_until_stable`) is a thin wrapper
  over the same loop.
* :func:`sample_summary` / :func:`detect_modes` produce a
  :class:`SampleSummary` with Silverman-style kernel-density multimodality
  detection and per-mode medians, so a bimodal benchmark (page placement,
  frequency steps, contended lock) is *reported* as bimodal instead of
  being averaged into a time nobody ever observed.
* :class:`MeasurementBudget` spreads a wall-clock budget across many
  benchmarks, always spending the next batch where the confidence
  interval is widest — the largest expected information gain — instead of
  uniformly.

Every stop decision is explained: results carry ``stop_reason`` and
``achieved_rel_ci``, and the emitted spans carry ``stopped_early`` /
``achieved_rel_ci`` attributes so a trace shows why sampling ended.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..observe import Tracer, get_tracer
from .stats import coefficient_of_variation, summarize
from .timers import MeasurementResult

__all__ = [
    "STOP_CONVERGED",
    "STOP_MAX_REPETITIONS",
    "STOP_MAX_SECONDS",
    "STOP_BUDGET",
    "STOP_FIXED",
    "Mode",
    "SampleSummary",
    "median_ci",
    "rel_ci_half_width",
    "detect_modes",
    "sample_summary",
    "measure_adaptive",
    "MeasurementBudget",
]

#: The stopping rule reached its confidence target.
STOP_CONVERGED = "converged"
#: The hard repetition cap was reached before convergence.
STOP_MAX_REPETITIONS = "max_repetitions"
#: The wall-clock cap was reached before convergence.
STOP_MAX_SECONDS = "max_seconds"
#: A cross-benchmark :class:`MeasurementBudget` ran out of wall-clock.
STOP_BUDGET = "budget"
#: A fixed-repetition measurement (no stopping rule ran).
STOP_FIXED = "fixed"


def _as_array(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty 1-D sequence of samples")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples contain NaN or infinity")
    return arr


def median_ci(samples: Sequence[float], confidence: float = 0.95,
              n_resamples: int = 400, seed: int = 0) -> tuple[float, float]:
    """Percentile-bootstrap CI for the median, vectorized for the hot loop.

    Functionally :func:`repro.timing.stats.bootstrap_ci` with
    ``statistic=np.median``, but the resampled medians are computed with
    one vectorized ``np.median(..., axis=1)`` instead of
    ``apply_along_axis`` — the stopping rule re-evaluates this after every
    batch, so it must cost microseconds, not milliseconds.  Degenerate
    samples (n=1, zero variance) return the exact interval ``(x, x)``.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValueError("need at least one resample")
    arr = _as_array(samples)
    if arr.size == 1 or np.ptp(arr) == 0:
        x = float(arr[0])
        return (x, x)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    meds = np.median(arr[idx], axis=1)
    lo, hi = np.percentile(meds, [100 * (0.5 - confidence / 2),
                                  100 * (0.5 + confidence / 2)])
    return (float(lo), float(hi))


def rel_ci_half_width(samples: Sequence[float], confidence: float = 0.95,
                      n_resamples: int = 400, seed: int = 0) -> float:
    """CI half-width on the median, relative to the median — the stop metric.

    Zero for degenerate (constant or single-sample) inputs; infinity when
    the median is zero but the interval is not (no relative statement can
    be made about a zero center).
    """
    lo, hi = median_ci(samples, confidence=confidence,
                       n_resamples=n_resamples, seed=seed)
    med = float(np.median(_as_array(samples)))
    half = (hi - lo) / 2.0
    if half == 0.0:
        return 0.0
    if med == 0.0:
        return math.inf
    return half / abs(med)


# ---------------------------------------------------------------------------
# distribution-aware summaries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Mode:
    """One mode of a (possibly multimodal) timing distribution."""

    center: float   #: median of the samples assigned to this mode
    n: int          #: samples assigned
    weight: float   #: fraction of all samples
    low: float      #: smallest assigned sample
    high: float     #: largest assigned sample


@dataclass(frozen=True)
class SampleSummary:
    """Distribution-aware verdict on one measurement sample.

    ``stable`` is the honest headline: the median's bootstrap CI is tight
    (``rel_ci <= target``) *and* the sample is unimodal.  A bimodal
    benchmark never reads "stable" no matter how tight the pooled CI is —
    its per-mode medians (``modes``) are the numbers to report, not a
    blend nobody measured.
    """

    n: int
    median: float
    ci_low: float
    ci_high: float
    rel_ci: float
    cv: float
    modes: tuple[Mode, ...]
    multimodal: bool
    stable: bool

    @property
    def n_modes(self) -> int:
        return len(self.modes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        shape = (f"{self.n_modes} modes at "
                 + "/".join(f"{m.center:.3e}" for m in self.modes)
                 if self.multimodal else "unimodal")
        return (f"n={self.n} median={self.median:.3e} "
                f"ci95=[{self.ci_low:.3e}, {self.ci_high:.3e}] "
                f"rel_ci={self.rel_ci:.2%} {shape} "
                f"{'stable' if self.stable else 'UNSTABLE'}")


def detect_modes(samples: Sequence[float], *, min_weight: float = 0.08,
                 valley_ratio: float = 0.8, min_separation: float = 0.05,
                 grid_points: int = 256) -> tuple[Mode, ...]:
    """Silverman-style kernel-density mode detection over a timing sample.

    A Gaussian KDE at Silverman's rule-of-thumb bandwidth is evaluated on
    a fixed grid; local density maxima become candidate modes, then three
    pruning rules keep the verdict honest:

    * two peaks whose valley is shallower than ``valley_ratio`` of the
      lower peak are one mode (a dip-test-style depth requirement);
    * peaks closer than ``min_separation`` (relative to the overall
      median) are one mode — micro-ripples of a spiky KDE never count;
    * a mode holding less than ``min_weight`` of the samples (or fewer
      than two) is an outlier cluster and is merged into its nearest
      neighbour.

    Fewer than 8 samples, or a constant sample, is always one mode: no
    sample that small can support a multimodality claim.  Deterministic
    for a given input — no randomness is involved.
    """
    if not 0 < valley_ratio <= 1:
        raise ValueError("valley_ratio must be in (0, 1]")
    if not 0 <= min_weight < 0.5:
        raise ValueError("min_weight must be in [0, 0.5)")
    arr = np.sort(_as_array(samples))
    n = arr.size

    def _single() -> tuple[Mode, ...]:
        return (Mode(center=float(np.median(arr)), n=n, weight=1.0,
                     low=float(arr[0]), high=float(arr[-1])),)

    if n < 8 or np.ptp(arr) == 0:
        return _single()
    std = float(np.std(arr, ddof=1))
    iqr = float(np.subtract(*np.percentile(arr, [75, 25])))
    sigma = min(std, iqr / 1.34) if iqr > 0 else std
    h = 0.9 * sigma * n ** (-0.2)
    if h <= 0:  # pragma: no cover - ptp > 0 implies std > 0
        return _single()
    grid = np.linspace(arr[0] - 3 * h, arr[-1] + 3 * h, grid_points)
    z = (grid[:, None] - arr[None, :]) / h
    dens = np.exp(-0.5 * z * z).sum(axis=1)
    floor = 0.05 * float(dens.max())
    peaks = [i for i in range(1, grid_points - 1)
             if dens[i] >= dens[i - 1] and dens[i] > dens[i + 1]
             and dens[i] >= floor]
    if not peaks:  # pragma: no cover - a max always exists on the grid
        return _single()
    med = float(np.median(arr))
    scale = abs(med) if med != 0 else float(np.ptp(arr))
    kept = [peaks[0]]
    for p in peaks[1:]:
        q = kept[-1]
        valley = float(dens[q:p + 1].min())
        too_shallow = valley > valley_ratio * min(dens[p], dens[q])
        too_close = (grid[p] - grid[q]) < min_separation * scale
        if too_shallow or too_close:
            kept[-1] = p if dens[p] > dens[q] else q
        else:
            kept.append(p)
    # segment boundaries at the deepest valley between adjacent kept peaks
    bounds = [-math.inf]
    for q, p in zip(kept, kept[1:]):
        bounds.append(float(grid[q + int(np.argmin(dens[q:p + 1]))]))
    bounds.append(math.inf)
    counts = [int(((arr > lo) & (arr <= hi)).sum()) if math.isfinite(hi)
              or math.isfinite(lo) else n
              for lo, hi in zip(bounds, bounds[1:])]
    # merge outlier clusters into their nearest neighbour until every
    # surviving mode carries real weight
    min_n = max(2, int(math.ceil(min_weight * n)))
    while len(counts) > 1 and min(counts) < min_n:
        i = int(np.argmin(counts))
        j = i - 1 if i > 0 else i + 1
        lo_i, hi_j = min(i, j), max(i, j)
        counts[lo_i] = counts[i] + counts[j]
        del counts[hi_j], bounds[hi_j], kept[hi_j]
    modes: list[Mode] = []
    start = 0
    for c in counts:
        seg = arr[start:start + c]
        modes.append(Mode(center=float(np.median(seg)), n=int(c),
                          weight=c / n, low=float(seg[0]),
                          high=float(seg[-1])))
        start += c
    return tuple(modes)


def sample_summary(samples: Sequence[float], rel_ci: float = 0.05,
                   confidence: float = 0.95, n_resamples: int = 400,
                   seed: int = 0) -> SampleSummary:
    """The distribution-aware summary the adaptive engine attaches to results."""
    if rel_ci <= 0:
        raise ValueError("rel_ci must be positive")
    arr = _as_array(samples)
    lo, hi = median_ci(arr, confidence=confidence,
                       n_resamples=n_resamples, seed=seed)
    med = float(np.median(arr))
    half = (hi - lo) / 2.0
    achieved = (0.0 if half == 0.0
                else math.inf if med == 0.0 else half / abs(med))
    modes = detect_modes(arr)
    multimodal = len(modes) >= 2
    return SampleSummary(
        n=int(arr.size), median=med, ci_low=lo, ci_high=hi,
        rel_ci=achieved, cv=coefficient_of_variation(arr),
        modes=modes, multimodal=multimodal,
        stable=achieved <= rel_ci and not multimodal)


# ---------------------------------------------------------------------------
# the sequential stopping engine
# ---------------------------------------------------------------------------

def measure_adaptive(
    fn: Callable[[], object],
    *,
    rel_ci: float = 0.05,
    confidence: float = 0.95,
    min_repetitions: int = 5,
    max_repetitions: int = 100,
    max_seconds: float | None = None,
    batch: int = 5,
    warmup: int = 2,
    criterion: str = "median_ci",
    n_resamples: int = 400,
    seed: int = 0,
    tracer: Tracer | None = None,
    clock: Callable[[], float] = time.perf_counter,
    span_name: str = "timing.measure_adaptive",
) -> MeasurementResult:
    """Measure ``fn`` until the estimate is tight, then stop.

    The sequential stopping rule: after ``min_repetitions`` (and then
    after every further ``batch``), the bootstrap CI half-width on the
    median — relative to the median — is compared against ``rel_ci``;
    sampling stops at the first batch boundary where it fits.  A stable
    benchmark therefore costs ``min_repetitions`` timed calls, while a
    noisy one keeps sampling until it converges or hits a hard cap:

    * ``max_repetitions`` is never exceeded (the final batch is clamped);
    * once ``clock() - start >= max_seconds`` no new repetition *starts*
      (one timed repetition is always taken, so a result always exists).

    ``criterion`` selects the stop metric: ``"median_ci"`` (the default,
    the SHARP rule) or ``"cv"`` (coefficient of variation against the
    same ``rel_ci`` threshold — the legacy
    :func:`~repro.timing.timers.measure_until_stable` rule, which is now
    a wrapper over this loop).

    The result's ``stop_reason`` is one of :data:`STOP_CONVERGED`,
    :data:`STOP_MAX_REPETITIONS`, :data:`STOP_MAX_SECONDS`;
    ``achieved_rel_ci`` / ``achieved_cv`` report the final tightness, and
    ``sample`` carries the :class:`SampleSummary` (per-mode medians,
    multimodality flag).  ``stable`` means *converged and unimodal* under
    the median-CI criterion, and CV-below-threshold under ``"cv"``.  The
    emitted span mirrors all of it (``stopped_early``,
    ``achieved_rel_ci``, ``stop_reason``, ``multimodal``), so traces
    explain every stop decision.

    ``clock`` is injectable (tests drive the engine with a deterministic
    virtual clock); it must be monotonic and is used both to time
    repetitions and to enforce ``max_seconds``.
    """
    if rel_ci <= 0:
        raise ValueError("rel_ci must be positive")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if min_repetitions < 1:
        raise ValueError("need at least one timed repetition")
    if max_repetitions < min_repetitions:
        raise ValueError("max_repetitions must cover min_repetitions")
    if max_seconds is not None and max_seconds <= 0:
        raise ValueError("max_seconds must be positive")
    if batch < 1:
        raise ValueError("batch must be at least 1")
    if warmup < 0:
        raise ValueError("warmup cannot be negative")
    if criterion not in ("median_ci", "cv"):
        raise ValueError(f"unknown criterion {criterion!r}")
    tracer = get_tracer() if tracer is None else tracer
    start = clock()

    def _achieved(times: list[float]) -> float:
        if criterion == "cv":
            return coefficient_of_variation(times)
        return rel_ci_half_width(times, confidence=confidence,
                                 n_resamples=n_resamples, seed=seed)

    with tracer.span(span_name, category="timing", rel_ci=rel_ci,
                     criterion=criterion, min_repetitions=min_repetitions,
                     max_repetitions=max_repetitions,
                     max_seconds=max_seconds, batch=batch) as mspan:
        warm: list[float] = []
        for _ in range(warmup):
            with tracer.span("timing.warmup", category="timing") as span:
                t0 = clock()
                fn()
                elapsed = clock() - t0
                span.set("seconds", elapsed)
            warm.append(elapsed)
        times: list[float] = []
        stop_reason: str | None = None
        while stop_reason is None:
            chunk = (min_repetitions if not times
                     else min(batch, max_repetitions - len(times)))
            for _ in range(chunk):
                if (times and max_seconds is not None
                        and clock() - start >= max_seconds):
                    stop_reason = STOP_MAX_SECONDS
                    break
                with tracer.span("timing.repetition",
                                 category="timing") as span:
                    t0 = clock()
                    fn()
                    elapsed = clock() - t0
                    span.set("seconds", elapsed)
                times.append(elapsed)
            if stop_reason is not None:
                break
            # a convergence claim needs at least two samples: one sample's
            # bootstrap CI is degenerately zero-width, not actually tight
            if (len(times) >= max(2, min_repetitions)
                    and _achieved(times) <= rel_ci):
                stop_reason = STOP_CONVERGED
            elif len(times) >= max_repetitions:
                stop_reason = STOP_MAX_REPETITIONS
            elif (max_seconds is not None
                    and clock() - start >= max_seconds):
                stop_reason = STOP_MAX_SECONDS
        achieved_rel = rel_ci_half_width(times, confidence=confidence,
                                         n_resamples=n_resamples, seed=seed)
        achieved_cv = coefficient_of_variation(times)
        sample = sample_summary(times, rel_ci=rel_ci, confidence=confidence,
                                n_resamples=n_resamples, seed=seed)
        if criterion == "cv":
            stable = achieved_cv <= rel_ci
        else:
            stable = stop_reason == STOP_CONVERGED and not sample.multimodal
        stopped_early = (stop_reason == STOP_CONVERGED
                         and len(times) < max_repetitions)
        mspan.set("repetitions", len(times))
        mspan.set("stop_reason", stop_reason)
        mspan.set("stopped_early", stopped_early)
        mspan.set("achieved_rel_ci", achieved_rel)
        mspan.set("achieved_cv", achieved_cv)
        mspan.set("stable", stable)
        mspan.set("multimodal", sample.multimodal)
        mspan.set("n_modes", sample.n_modes)
        tracer.count("timing.adaptive.measurements")
        tracer.count("timing.adaptive.repetitions", len(times))
        if stopped_early:
            tracer.count("timing.adaptive.stopped_early")
    return MeasurementResult(
        times=tuple(times), warmup_times=tuple(warm),
        summary=summarize(times), stable=stable, stop_reason=stop_reason,
        achieved_rel_ci=achieved_rel, achieved_cv=achieved_cv, sample=sample)


# ---------------------------------------------------------------------------
# cross-benchmark budget reallocation
# ---------------------------------------------------------------------------

class MeasurementBudget:
    """Spend one wall-clock budget across many benchmarks, greedily.

    Uniform allocation wastes samples on benchmarks that converged long
    ago.  This allocator seeds every benchmark with ``min_repetitions``,
    then repeatedly gives the next ``batch`` to whichever unconverged
    benchmark currently has the *widest* relative CI on its median — the
    largest expected information gain per second spent — until every
    benchmark converges, hits ``max_repetitions``, or the budget runs
    out.

    >>> mb = MeasurementBudget(max_seconds=1.0, rel_ci=0.05)
    >>> results = mb.run({"a": fn_a, "b": fn_b})   # doctest: +SKIP

    Results are plain :class:`~repro.timing.timers.MeasurementResult`
    objects whose ``stop_reason`` explains each benchmark's fate
    (:data:`STOP_CONVERGED`, :data:`STOP_MAX_REPETITIONS`, or
    :data:`STOP_BUDGET` when the shared clock ran dry first).  Every
    benchmark always receives at least one timed repetition, even under
    an already-exhausted budget, so a result always exists.
    """

    def __init__(self, max_seconds: float, *, rel_ci: float = 0.05,
                 confidence: float = 0.95, min_repetitions: int = 5,
                 max_repetitions: int = 200, batch: int = 5,
                 n_resamples: int = 400, seed: int = 0,
                 clock: Callable[[], float] = time.perf_counter,
                 tracer: Tracer | None = None):
        if max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if rel_ci <= 0:
            raise ValueError("rel_ci must be positive")
        if min_repetitions < 1:
            raise ValueError("need at least one repetition per benchmark")
        if max_repetitions < min_repetitions:
            raise ValueError("max_repetitions must cover min_repetitions")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.max_seconds = float(max_seconds)
        self.rel_ci = rel_ci
        self.confidence = confidence
        self.min_repetitions = min_repetitions
        self.max_repetitions = max_repetitions
        self.batch = batch
        self.n_resamples = n_resamples
        self.seed = seed
        self._clock = clock
        self._tracer = tracer

    def run(self, benchmarks: Mapping[str, Callable[[], object]],
            warmup: int = 1) -> dict[str, MeasurementResult]:
        """Measure every benchmark under the shared budget; see class docs."""
        if not benchmarks:
            raise ValueError("need at least one benchmark")
        if warmup < 0:
            raise ValueError("warmup cannot be negative")
        tracer = get_tracer() if self._tracer is None else self._tracer
        clock = self._clock
        start = clock()

        def _spent() -> float:
            return clock() - start

        names = list(benchmarks)
        times: dict[str, list[float]] = {name: [] for name in names}
        warms: dict[str, list[float]] = {name: [] for name in names}
        achieved: dict[str, float] = {name: math.inf for name in names}
        budget_hit: set[str] = set()

        def _rep(name: str) -> None:
            with tracer.span("timing.repetition", category="timing") as span:
                t0 = clock()
                benchmarks[name]()
                elapsed = clock() - t0
                span.set("seconds", elapsed)
            times[name].append(elapsed)

        def _update(name: str) -> None:
            achieved[name] = rel_ci_half_width(
                times[name], confidence=self.confidence,
                n_resamples=self.n_resamples, seed=self.seed)

        with tracer.span("timing.budget", category="timing",
                         benchmarks=len(names),
                         max_seconds=self.max_seconds,
                         rel_ci=self.rel_ci) as bspan:
            # seeding pass: min_repetitions each, one guaranteed even when
            # the budget is already gone (a result must exist)
            for name in names:
                for _ in range(warmup):
                    if _spent() >= self.max_seconds:
                        break
                    t0 = clock()
                    benchmarks[name]()
                    warms[name].append(clock() - t0)
                _rep(name)
                for _ in range(self.min_repetitions - 1):
                    if _spent() >= self.max_seconds:
                        budget_hit.add(name)
                        break
                    _rep(name)
                _update(name)
            # greedy refinement: widest CI first
            while _spent() < self.max_seconds:
                open_names = [n for n in names
                              if achieved[n] > self.rel_ci
                              and len(times[n]) < self.max_repetitions]
                if not open_names:
                    break
                name = max(open_names, key=lambda n: achieved[n])
                chunk = min(self.batch,
                            self.max_repetitions - len(times[name]))
                with tracer.span("timing.budget.batch", category="timing",
                                 benchmark=name, batch=chunk,
                                 rel_ci_before=achieved[name]) as span:
                    ran = 0
                    for _ in range(chunk):
                        if _spent() >= self.max_seconds:
                            budget_hit.add(name)
                            break
                        _rep(name)
                        ran += 1
                    _update(name)
                    span.set("repetitions", ran)
                    span.set("rel_ci_after", achieved[name])
            bspan.set("spent_seconds", _spent())
            bspan.set("converged",
                      sum(1 for n in names if achieved[n] <= self.rel_ci))

        out: dict[str, MeasurementResult] = {}
        for name in names:
            sample = sample_summary(
                times[name], rel_ci=self.rel_ci, confidence=self.confidence,
                n_resamples=self.n_resamples, seed=self.seed)
            if achieved[name] <= self.rel_ci:
                reason = STOP_CONVERGED
            elif len(times[name]) >= self.max_repetitions:
                reason = STOP_MAX_REPETITIONS
            else:
                reason = STOP_BUDGET
            out[name] = MeasurementResult(
                times=tuple(times[name]), warmup_times=tuple(warms[name]),
                summary=summarize(times[name]),
                stable=reason == STOP_CONVERGED and not sample.multimodal,
                stop_reason=reason, achieved_rel_ci=achieved[name],
                achieved_cv=coefficient_of_variation(times[name]),
                sample=sample)
        return out
