"""Tiny stdlib-only HTML/SVG building blocks for run reports.

The report artifact must satisfy three constraints the rest of the design
falls out of:

* **self-contained** — one file, no external assets, so a grader (or a CI
  artifact store) can open it anywhere; every chart is inline SVG and the
  stylesheet is embedded;
* **dependency-free** — built from string concatenation over escaped
  fragments, no template engine, because the service layer renders these
  inside job workers where an import must never cost anything;
* **deterministic** — identical inputs produce byte-identical output
  (timestamps only ever enter through an explicit ``now``), so reports
  can be diffed, cached, and regression-tested byte-for-byte.

Escaping discipline: every piece of dynamic text passes through
:func:`escape` (or :func:`attr` for attribute values) exactly once, at the
point it is interpolated.  Benchmark ids, tenant names, and kernel/variant
names are arbitrary strings — a tenant called ``<script>`` must render as
text, never execute.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Mapping, Sequence

__all__ = [
    "escape",
    "attr",
    "tag",
    "table",
    "svg_sparkline",
    "svg_gantt",
    "svg_roofline",
    "svg_trajectory",
    "render_page",
    "PALETTE",
]

_ESCAPES = (("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"),
            ('"', "&quot;"), ("'", "&#x27;"))


def escape(text: object) -> str:
    """HTML-escape arbitrary text for element content and attributes."""
    out = str(text)
    for raw, safe in _ESCAPES:
        out = out.replace(raw, safe)
    return out


def attr(mapping: Mapping[str, object]) -> str:
    """Render an attribute dict as ``key="value"`` pairs, escaped, sorted."""
    return "".join(f' {k}="{escape(v)}"' for k, v in sorted(mapping.items()))


def tag(name: str, content: str = "", **attrs) -> str:
    """One element; ``content`` is trusted (already-escaped) markup.

    Attribute names with underscores map to dashes (``stroke_width`` ->
    ``stroke-width``); ``cls`` maps to ``class``.
    """
    fixed = {}
    for k, v in attrs.items():
        k = "class" if k == "cls" else k.replace("_", "-")
        fixed[k] = v
    if not content:
        return f"<{name}{attr(fixed)}/>"
    return f"<{name}{attr(fixed)}>{content}</{name}>"


def table(headers: Sequence[str], rows: Iterable[Sequence[str]],
          cls: str = "data") -> str:
    """A table whose cells are trusted markup (escape before calling)."""
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join("<tr>" + "".join(f"<td>{c}</td>" for c in row) + "</tr>"
                   for row in rows)
    return (f'<table class="{escape(cls)}"><thead><tr>{head}</tr></thead>'
            f"<tbody>{body}</tbody></table>")


#: Deterministic category palette (assigned to kinds in sorted order, so
#: the same input data always colors the same way).
PALETTE = ("#4878cf", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
           "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2")


def color_for(index: int) -> str:
    return PALETTE[index % len(PALETTE)]


def _fmt(x: float, places: int = 2) -> str:
    """Fixed-notation float for SVG coordinates — locale/repr independent."""
    return f"{x:.{places}f}"


# ---------------------------------------------------------------------------
# sparkline
# ---------------------------------------------------------------------------

def svg_sparkline(values: Sequence[float], width: int = 160, height: int = 28,
                  change_points: Sequence[int] = (),
                  title: str | None = None) -> str:
    """Inline-SVG sparkline of a series, low at the bottom.

    ``change_points`` are indices into ``values`` marking the first run of
    a new regime (the perfdb drift scan's convention); each is drawn as a
    vertical marker.  A flat or single-point series renders as a midline.
    """
    vals = [float(v) for v in values]
    if not vals:
        return '<svg class="spark" width="%d" height="%d"></svg>' % (
            width, height)
    lo, hi = min(vals), max(vals)
    pad = 3.0
    span = hi - lo
    n = len(vals)

    def x(i: int) -> float:
        return pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)

    def y(v: float) -> float:
        if span <= 0:
            return height / 2.0
        return height - pad - (height - 2 * pad) * ((v - lo) / span)

    points = " ".join(f"{_fmt(x(i))},{_fmt(y(v))}"
                      for i, v in enumerate(vals))
    parts = []
    if n > 1:
        parts.append(tag("polyline", points=points, fill="none",
                         stroke=PALETTE[0], stroke_width="1.5"))
    for cp in change_points:
        if 0 <= cp < n:
            cx = _fmt(x(cp))
            parts.append(tag("line", x1=cx, y1="1", x2=cx,
                             y2=str(height - 1), stroke=PALETTE[3],
                             stroke_width="1", stroke_dasharray="2,2"))
    parts.append(tag("circle", cx=_fmt(x(n - 1)), cy=_fmt(y(vals[-1])),
                     r="2", fill=PALETTE[0]))
    body = "".join(parts)
    if title is not None:
        body = tag("title", escape(title)) + body
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{body}</svg>')


# ---------------------------------------------------------------------------
# span gantt
# ---------------------------------------------------------------------------

def svg_gantt(tracks: Sequence[tuple[str, Sequence[tuple[float, float, str]]]],
              kinds: Sequence[str], t0: float, t1: float,
              width: int = 900, row_height: int = 18) -> str:
    """Inline-SVG gantt: one row per track, one rect per span.

    ``tracks`` is ``[(label, [(start, end, kind), ...]), ...]`` with times
    in seconds on a shared axis; ``kinds`` fixes the kind->color order
    (pass them sorted for determinism).  Zero-length spans render as thin
    ticks so instant events stay visible, mirroring
    :func:`repro.observe.export.gantt_text`.
    """
    extent = t1 - t0
    if extent <= 0 or not tracks:
        return "<p>(empty trace)</p>"
    label_w = 110.0
    plot_w = width - label_w - 10
    color = {k: color_for(i) for i, k in enumerate(kinds)}
    height = row_height * len(tracks) + 24
    parts = []

    def px(t: float) -> float:
        return label_w + plot_w * (t - t0) / extent

    for row, (label, spans) in enumerate(tracks):
        ry = row * row_height + 4
        parts.append(tag("text", escape(label), x=_fmt(label_w - 6),
                         y=_fmt(ry + row_height - 8), text_anchor="end",
                         cls="lbl"))
        for start, end, kind in spans:
            x0 = px(start)
            w = max(plot_w * (end - start) / extent, 0.75)
            title = tag("title", escape(
                f"{kind}: {(end - start) * 1e3:.3f} ms "
                f"@ +{(start - t0) * 1e3:.3f} ms"))
            parts.append(tag(
                "rect", title, x=_fmt(x0), y=_fmt(ry),
                width=_fmt(w), height=str(row_height - 6),
                fill=color.get(kind, "#999999")))
    axis_y = row_height * len(tracks) + 8
    parts.append(tag("line", x1=_fmt(label_w), y1=_fmt(axis_y),
                     x2=_fmt(label_w + plot_w), y2=_fmt(axis_y),
                     stroke="#888888", stroke_width="1"))
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        tx = label_w + plot_w * frac
        parts.append(tag("text", escape(f"{extent * frac * 1e3:.1f} ms"),
                         x=_fmt(tx), y=_fmt(axis_y + 12),
                         text_anchor="middle", cls="lbl"))
    legend = " ".join(
        tag("span", f'{tag("span", "&#9632;", style=f"color:{color[k]}")}'
            f" {escape(k)}", cls="leg") for k in kinds)
    return (f'<svg class="gantt" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{"".join(parts)}</svg>'
            f'<p class="legend">{legend}</p>')


# ---------------------------------------------------------------------------
# roofline (log-log)
# ---------------------------------------------------------------------------

def svg_roofline(series: Mapping[str, Sequence[tuple[float, float]]],
                 points: Sequence[tuple[str, float, float | None]],
                 width: int = 560, height: int = 360) -> str:
    """Log-log roofline: ceiling polylines plus application points.

    ``series`` maps a ceiling label to ``[(intensity, flops_per_s), ...]``;
    ``points`` is ``[(name, intensity, achieved_or_None)]`` — unmeasured
    (static) points are drawn on their attainable roof as hollow markers.
    """
    xs = [x for pts in series.values() for x, _ in pts] + \
         [p[1] for p in points]
    ys = [y for pts in series.values() for _, y in pts if y > 0] + \
         [p[2] for p in points if p[2]]
    if not xs or not ys:
        return "<p>(no roofline data)</p>"
    lx0, lx1 = math.log10(min(xs)), math.log10(max(xs))
    ly0, ly1 = math.log10(min(ys)), math.log10(max(ys))
    if lx1 <= lx0:
        lx1 = lx0 + 1
    if ly1 <= ly0:
        ly1 = ly0 + 1
    pad_l, pad_r, pad_t, pad_b = 64.0, 12.0, 10.0, 34.0

    def px(v: float) -> float:
        return pad_l + (width - pad_l - pad_r) * \
            (math.log10(v) - lx0) / (lx1 - lx0)

    def py(v: float) -> float:
        return height - pad_b - (height - pad_t - pad_b) * \
            (math.log10(v) - ly0) / (ly1 - ly0)

    parts = []
    # decade gridlines + labels
    for e in range(math.ceil(lx0), math.floor(lx1) + 1):
        gx = _fmt(px(10.0 ** e))
        parts.append(tag("line", x1=gx, y1=_fmt(pad_t), x2=gx,
                         y2=_fmt(height - pad_b), stroke="#eeeeee"))
        parts.append(tag("text", escape(f"1e{e}"), x=gx,
                         y=_fmt(height - pad_b + 14), text_anchor="middle",
                         cls="lbl"))
    for e in range(math.ceil(ly0), math.floor(ly1) + 1):
        gy = _fmt(py(10.0 ** e))
        parts.append(tag("line", x1=_fmt(pad_l), y1=gy,
                         x2=_fmt(width - pad_r), y2=gy, stroke="#eeeeee"))
        parts.append(tag("text", escape(f"1e{e}"), x=_fmt(pad_l - 6), y=gy,
                         text_anchor="end", cls="lbl"))
    for i, (label, pts) in enumerate(sorted(series.items())):
        poly = " ".join(f"{_fmt(px(x))},{_fmt(py(y))}" for x, y in pts
                        if y > 0)
        parts.append(tag("polyline", tag("title", escape(label)),
                         points=poly, fill="none", stroke=color_for(i),
                         stroke_width="1.5"))
    for name, intensity, achieved in points:
        x = _fmt(px(intensity))
        if achieved:
            parts.append(tag("circle", tag("title", escape(
                f"{name}: {achieved / 1e9:.2f} GFLOP/s @ "
                f"{intensity:.3f} F/B")), cx=x, cy=_fmt(py(achieved)), r="4",
                fill=PALETTE[3]))
        else:
            # static (never-executed) point: hollow marker pinned under the
            # lowest roof at its intensity
            roof = min((min(y for px_, y in pts if px_ > 0)
                        for pts in series.values() if pts), default=None)
            y_at = min(
                (_interp_loglog(pts, intensity) for pts in series.values()
                 if pts), default=roof)
            if y_at is None or y_at <= 0:
                continue
            parts.append(tag("circle", tag("title", escape(
                f"{name}: static estimate @ {intensity:.3f} F/B")), cx=x,
                cy=_fmt(py(y_at)), r="3.5", fill="none", stroke=PALETTE[4],
                stroke_width="1.5"))
    parts.append(tag("text", "arithmetic intensity (FLOP/byte)",
                     x=_fmt((pad_l + width - pad_r) / 2),
                     y=_fmt(height - 4), text_anchor="middle", cls="lbl"))
    return (f'<svg class="roofline" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{"".join(parts)}</svg>')


def _interp_loglog(pts: Sequence[tuple[float, float]],
                   x: float) -> float | None:
    """P(I) read off one ceiling polyline at intensity ``x`` (log-log)."""
    usable = [(a, b) for a, b in pts if a > 0 and b > 0]
    if len(usable) < 2:
        return None
    usable.sort()
    if x <= usable[0][0]:
        return usable[0][1]
    if x >= usable[-1][0]:
        return usable[-1][1]
    for (x0, y0), (x1, y1) in zip(usable, usable[1:]):
        if x0 <= x <= x1:
            f = (math.log10(x) - math.log10(x0)) / \
                (math.log10(x1) - math.log10(x0))
            return 10.0 ** (math.log10(y0) + f * (math.log10(y1)
                                                  - math.log10(y0)))
    return None


# ---------------------------------------------------------------------------
# tuning trajectory
# ---------------------------------------------------------------------------

def svg_trajectory(evals: Sequence[tuple[int, float, bool]],
                   width: int = 420, height: int = 180) -> str:
    """Search trajectory: per-evaluation seconds plus the best-so-far step.

    ``evals`` is ``[(index, seconds, cached)]``; cached evaluations are
    hollow.  The y-axis is log-scaled — tuning wins are multiplicative.
    """
    if not evals:
        return "<p>(empty search)</p>"
    secs = [s for _, s, _ in evals if s > 0]
    if not secs:
        return "<p>(no positive timings)</p>"
    ly0, ly1 = math.log10(min(secs)), math.log10(max(secs))
    if ly1 <= ly0:
        ly1 = ly0 + 0.1
    pad_l, pad_r, pad_t, pad_b = 58.0, 10.0, 8.0, 22.0
    n = max(e[0] for e in evals) + 1

    def px(i: int) -> float:
        return pad_l + (width - pad_l - pad_r) * \
            (i / (n - 1) if n > 1 else 0.5)

    def py(v: float) -> float:
        return height - pad_b - (height - pad_t - pad_b) * \
            (math.log10(v) - ly0) / (ly1 - ly0)

    parts = []
    best = math.inf
    step: list[str] = []
    for i, s, _ in evals:
        if s <= 0:
            continue
        if s < best:
            if step:
                step.append(f"{_fmt(px(i))},{_fmt(py(best))}")
            best = s
        step.append(f"{_fmt(px(i))},{_fmt(py(best))}")
    parts.append(tag("polyline", points=" ".join(step), fill="none",
                     stroke=PALETTE[2], stroke_width="1.5"))
    for i, s, cached in evals:
        if s <= 0:
            continue
        title = tag("title", escape(
            f"eval {i}: {s:.4e}s" + (" (cache hit)" if cached else "")))
        if cached:
            parts.append(tag("circle", title, cx=_fmt(px(i)), cy=_fmt(py(s)),
                             r="2.5", fill="none", stroke=PALETTE[0],
                             stroke_width="1"))
        else:
            parts.append(tag("circle", title, cx=_fmt(px(i)), cy=_fmt(py(s)),
                             r="2.5", fill=PALETTE[0]))
    parts.append(tag("text", escape(f"best {min(secs):.3e}s"),
                     x=_fmt(pad_l), y=_fmt(pad_t + 10), cls="lbl"))
    parts.append(tag("text", "evaluation", x=_fmt((pad_l + width) / 2),
                     y=_fmt(height - 4), text_anchor="middle", cls="lbl"))
    return (f'<svg class="traj" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{"".join(parts)}</svg>')


# ---------------------------------------------------------------------------
# page shell
# ---------------------------------------------------------------------------

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 24px auto;
       max-width: 1020px; color: #1a1a2e; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px;
     border-bottom: 1px solid #ddd; padding-bottom: 4px; }
table.data { border-collapse: collapse; width: 100%; font-size: 13px; }
table.data th { text-align: left; border-bottom: 2px solid #ccc;
                padding: 3px 8px; white-space: nowrap; }
table.data td { border-bottom: 1px solid #eee; padding: 3px 8px;
                font-variant-numeric: tabular-nums; vertical-align: top; }
table.data tr:hover td { background: #f6f8fb; }
code, .mono { font-family: ui-monospace, monospace; font-size: 12px; }
.lbl { font: 10px system-ui, sans-serif; fill: #555; }
.legend { font-size: 12px; color: #444; } .leg { margin-right: 12px; }
.ok { color: #1a7f37; } .bad { color: #b42318; font-weight: 600; }
.warn { color: #9a6700; } .muted { color: #777; }
.badge { display: inline-block; padding: 1px 7px; border-radius: 9px;
         font-size: 12px; background: #eef1f5; }
.badge.bad { background: #fde8e8; } .badge.ok { background: #e6f4ea; }
.section-note { color: #666; font-size: 13px; }
svg { background: #fff; }
"""


def render_page(title: str, sections: Sequence[tuple[str, str]],
                now: float | None = None,
                subtitle: str = "") -> str:
    """The full self-contained document.

    ``sections`` is ``[(heading, trusted_html)]``.  ``now`` is the *only*
    timestamp source: pass an epoch for a deterministic artifact, ``None``
    stamps wall-clock time (formatted in UTC either way).
    """
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC",
                          time.gmtime(time.time() if now is None else now))
    toc = " &middot; ".join(
        f'<a href="#s{i}">{escape(h)}</a>'
        for i, (h, _) in enumerate(sections))
    body = "".join(
        f'<h2 id="s{i}">{escape(heading)}</h2>\n{content}\n'
        for i, (heading, content) in enumerate(sections))
    sub = f'<p class="muted">{escape(subtitle)}</p>' if subtitle else ""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8"/>\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body><h1>{escape(title)}</h1>{sub}\n"
        f'<p class="muted">generated {escape(stamp)} &middot; '
        f"repro.report &middot; self-contained (no external assets)</p>\n"
        f'<p class="legend">{toc}</p>\n'
        f"{body}</body></html>\n")
