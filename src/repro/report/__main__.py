"""``python -m repro.report`` — build and compare run reports.

The grading workflow, start to finish::

    python -m repro.perfdb record benchmarks/test_bench_perfdb.py
    python -m repro.report build -o report.html          # one artifact
    ... hack on a kernel, record again ...
    python -m repro.report compare -o diff.html          # exit 1 on regression

``build`` always exits 0 with a complete document (missing sources render
as "no data" notes); ``compare`` is gate-shaped like ``perfdb compare``:
exit 0 when no benchmark significantly regressed, 1 on a regression, 2 on
operational errors.  ``--now EPOCH`` pins the generated-at stamp, making
the output byte-identical across invocations on identical inputs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..perfdb.store import PerfStore
from . import build_report, compare_report, load_trace, load_tuning_result

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="unified run reports: one self-contained HTML file")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="perfdb store directory (default: $REPRO_PERFDB "
                             "or .perfdb)")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="render the full run report")
    build.add_argument("-o", "--out", default="report.html", metavar="FILE",
                       help="output path (default report.html; '-' for "
                            "stdout)")
    build.add_argument("--tenant", default=None,
                       help="restrict the perfdb section to one tenant's "
                            "shard")
    build.add_argument("--trace", action="append", default=[],
                       metavar="TRACE_JSON",
                       help="Chrome-trace file to render as a gantt "
                            "(repeatable)")
    build.add_argument("--tuning", action="append", default=[],
                       metavar="RESULT_JSON",
                       help="persisted TuningResult JSON to render as a "
                            "trajectory (repeatable)")
    build.add_argument("--no-roofline", action="store_true",
                       help="skip the roofline section")
    build.add_argument("--no-analyze", action="store_true",
                       help="skip the static-analysis section")
    build.add_argument("--kernel", default=None,
                       help="restrict the analysis section to one kernel")
    build.add_argument("--title", default="repro run report")
    build.add_argument("--width", type=int, default=24,
                       help="sparkline length in runs (default 24)")
    build.add_argument("--now", type=float, default=None, metavar="EPOCH",
                       help="pin the generated-at timestamp (for "
                            "deterministic output)")

    cmp_ = sub.add_parser("compare", help="render a two-run diff report")
    cmp_.add_argument("-o", "--out", default="compare.html", metavar="FILE",
                      help="output path (default compare.html; '-' for "
                           "stdout)")
    cmp_.add_argument("--candidate", default=None, metavar="RUN",
                      help="run id/prefix or 'latest' (default: latest)")
    cmp_.add_argument("--baseline", default=None, metavar="RUN",
                      help="run id/prefix (default: pinned baseline, else "
                           "the run before the candidate)")
    cmp_.add_argument("--alpha", type=float, default=0.05,
                      help="Mann-Whitney significance level (default 0.05)")
    cmp_.add_argument("--min-change", type=float, default=0.10,
                      help="practical-significance floor on the median "
                           "ratio (default 0.10 = 10%%)")
    cmp_.add_argument("--title", default="repro compare report")
    cmp_.add_argument("--now", type=float, default=None, metavar="EPOCH",
                      help="pin the generated-at timestamp")
    return parser


def _emit(html: str, out: str) -> None:
    if out == "-":
        sys.stdout.write(html)
    else:
        Path(out).write_text(html, encoding="utf-8")
        print(f"report: wrote {len(html)} bytes -> {out}")


def _cmd_build(store: PerfStore, args) -> int:
    try:
        traces = [load_trace(p) for p in args.trace]
        tuning = [load_tuning_result(p) for p in args.tuning]
    except (OSError, ValueError, KeyError) as exc:
        print(f"report build: {exc}", file=sys.stderr)
        return 2
    html = build_report(
        store, tenant=args.tenant, traces=traces, tuning=tuning,
        include_roofline=not args.no_roofline,
        include_analyze=not args.no_analyze, analyze_kernel=args.kernel,
        title=args.title, width=args.width, now=args.now)
    _emit(html, args.out)
    return 0


def _cmd_compare(store: PerfStore, args) -> int:
    runs = store.runs()
    if len(runs) < 2:
        print(f"report compare: need at least two runs in {store.root}, "
              f"have {len(runs)}", file=sys.stderr)
        return 2
    try:
        candidate = store.get(args.candidate) if args.candidate else runs[-1]
        if args.baseline:
            baseline = store.get(args.baseline)
        else:
            baseline = store.baseline()
            if baseline is None or baseline.run_id == candidate.run_id:
                earlier = [r for r in runs if r.created < candidate.created
                           or (r.created == candidate.created
                               and r.run_id != candidate.run_id)]
                if not earlier:
                    print("report compare: no earlier run to compare "
                          "against", file=sys.stderr)
                    return 2
                baseline = earlier[-1]
        html, regressed = compare_report(
            candidate, baseline, alpha=args.alpha,
            min_rel_change=args.min_change, title=args.title, now=args.now)
    except (LookupError, ValueError) as exc:
        print(f"report compare: {exc}", file=sys.stderr)
        return 2
    _emit(html, args.out)
    if regressed:
        print("report compare: REGRESSED (see verdicts section)",
              file=sys.stderr)
    return 1 if regressed else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    store = PerfStore(args.store)
    handler = {"build": _cmd_build, "compare": _cmd_compare}[args.command]
    return handler(store, args)


if __name__ == "__main__":
    sys.exit(main())
