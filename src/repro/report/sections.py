"""One renderer per data source, each returning trusted HTML.

Every renderer degrades gracefully: a missing store, an empty trace, or
an absent registry yields a visible "no data" note rather than an error,
so ``python -m repro.report build`` always produces a complete document
from whatever subset of artifacts a run actually left behind.

The sections mirror the text surfaces they fuse — the perfdb table is
:func:`repro.perfdb.report.report_text` with SVG sparklines, the gantt is
:func:`repro.observe.export.gantt_text` over reconciled Chrome-trace
tracks, the roofline is :meth:`RooflineModel.report` as a log-log plot —
so a number visible in a terminal is the same number in the artifact.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from ..timing.adaptive import detect_modes
from .html import (escape, svg_gantt, svg_roofline, svg_sparkline,
                   svg_trajectory, table, tag)

__all__ = [
    "perfdb_section",
    "spans_from_chrome_trace",
    "trace_section",
    "roofline_section",
    "tuning_section",
    "analyze_section",
    "metrics_section",
]


def _note(text: str) -> str:
    return f'<p class="section-note">{escape(text)}</p>'


# ---------------------------------------------------------------------------
# perfdb history
# ---------------------------------------------------------------------------

def perfdb_section(store, tenant: str | None = None, width: int = 24,
                   drift_alpha: float = 0.01) -> str:
    """Benchmark history: sparklines, change points, mode splits.

    Same ordering contract as ``repro.perfdb report``: worst
    latest-vs-baseline ratio first, ties by benchmark id; the per-mode
    medians come from the same :func:`repro.perfdb.report.mode_split`
    the text dashboard prints.
    """
    from ..perfdb.compare import history_drift
    from ..perfdb.report import mode_split

    if store is None:
        return _note("no perfdb store supplied; run "
                     "`python -m repro.perfdb record` first.")
    runs = store.runs(tenant=tenant) if tenant is not None else store.runs()
    if not runs:
        return _note(f"no runs recorded in {store.root}")
    baseline = store.baseline() or runs[0]
    latest = runs[-1]

    run_rows = []
    for run in runs[-width:]:
        pin = ('<span class="badge ok">baseline</span>'
               if run.run_id == baseline.run_id else "")
        run_rows.append((f"<code>{escape(run.run_id[:12])}</code>",
                         escape(run.label or "-"),
                         str(len(run.benchmarks)), pin))
    runs_tbl = table(("run", "label", "benchmarks", ""), run_rows)

    bids = sorted({bid for r in runs for bid in r.benchmarks})
    entries = []
    for bid in bids:
        history = [r for r in runs if bid in r.benchmarks]
        series = [r.benchmarks[bid].summary.median for r in history]
        ratio = None
        modes = ()
        n_latest = None
        if bid in latest.benchmarks:
            latest_times = latest.benchmarks[bid].times
            n_latest = len(latest_times)
            modes = detect_modes(latest_times)
            if bid in baseline.benchmarks \
                    and latest.run_id != baseline.run_id:
                ratio = (latest.benchmarks[bid].summary.median
                         / baseline.benchmarks[bid].summary.median)
        drifts = history_drift(history, bid, alpha=drift_alpha)
        entries.append((bid, ratio, series, drifts, n_latest, modes))
    entries.sort(key=lambda e: (-(e[1] if e[1] is not None
                                  else float("-inf")), e[0]))

    rows = []
    for bid, ratio, series, drifts, n_latest, modes in entries:
        tail = series[-width:]
        offset = len(series) - len(tail)
        cps = [d.index - offset for d in drifts
               if 0 <= d.index - offset < len(tail)]
        spark = svg_sparkline(
            tail, change_points=cps,
            title=f"{bid}: {len(series)} runs, latest {series[-1]:.3e}s")
        if ratio is None:
            vs = '<span class="muted">-</span>'
        else:
            cls = ("bad" if ratio > 1.05
                   else "ok" if ratio < 0.95 else "muted")
            vs = f'<span class="{cls}">{ratio - 1.0:+.1%}</span>'
        notes = []
        if drifts:
            worst = max(drifts, key=lambda d: abs(d.rel_change))
            notes.append(f'<span class="warn">! shift '
                         f"{worst.rel_change:+.0%} at run "
                         f"<code>{escape(worst.run_id[:12])}</code></span>")
        if len(modes) >= 2:
            notes.append(f'<span class="warn">~ multimodal: '
                         f"{escape(mode_split(modes))}</span>")
        rows.append((
            f"<code>{escape(bid)}</code>",
            str(len(series)),
            str(n_latest) if n_latest is not None else "-",
            f"{series[-1]:.3e}",
            vs, spark, "<br/>".join(notes)))
    bench_tbl = table(
        ("benchmark", "runs", "n", "latest (s)", "vs base", "trend", "notes"),
        rows)
    where = f"{store.root}" + (f" (tenant {tenant})" if tenant else "")
    return (_note(f"{len(runs)} run(s) in {where}; sparkline = per-run "
                  f"median over the last {width} runs; dashed markers are "
                  "drift-scan change points; '~' flags a multimodal "
                  "latest-run sample with its per-mode medians.")
            + runs_tbl + "<br/>" + bench_tbl)


# ---------------------------------------------------------------------------
# observe traces
# ---------------------------------------------------------------------------

def spans_from_chrome_trace(doc: Mapping) -> tuple[
        list[tuple[str, list[tuple[float, float, str]]]], list[str],
        float, float]:
    """Reconcile a Chrome trace-event document back into gantt tracks.

    Returns ``(tracks, kinds, t0, t1)`` with times in seconds.  Honors the
    ``thread_name`` metadata events that
    :func:`repro.observe.export.chrome_trace` emits for reconciled worker
    ranks, so tracks read ``rank 0..n-1`` instead of raw pid/tid pairs.
    """
    events = doc.get("traceEvents", [])
    names: dict[tuple[int, int], str] = {}
    spans: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
    for ev in events:
        key = (int(ev.get("pid", 0)), int(ev.get("tid", 0)))
        if ev.get("ph") == "M":
            if ev.get("name") == "thread_name":
                names[key] = str(ev.get("args", {}).get("name", ""))
            continue
        if ev.get("ph") != "X":
            continue
        start = float(ev.get("ts", 0.0)) / 1e6
        dur = float(ev.get("dur", 0.0)) / 1e6
        kind = str(ev.get("cat", "") or ev.get("name", ""))
        spans.setdefault(key, []).append((start, start + dur, kind))
    if not spans:
        return [], [], 0.0, 0.0
    t0 = min(s for track in spans.values() for s, _, _ in track)
    t1 = max(e for track in spans.values() for _, e, _ in track)
    kinds = sorted({k for track in spans.values() for _, _, k in track})
    tracks = []
    for key in sorted(spans):
        label = names.get(key, f"pid {key[0]} tid {key[1]}")
        tracks.append((label, sorted(spans[key])))
    return tracks, kinds, t0, t1


def trace_section(docs: Sequence[tuple[str, Mapping]]) -> str:
    """Span gantts, one per trace document: ``docs = [(label, doc)]``."""
    if not docs:
        return _note("no traces supplied; export one with "
                     "`repro.observe.export.write_chrome_trace` and pass "
                     "--trace.")
    parts = []
    for label, doc in docs:
        tracks, kinds, t0, t1 = spans_from_chrome_trace(doc)
        n_spans = sum(len(s) for _, s in tracks)
        parts.append(f"<h3>{escape(label)}</h3>")
        if not tracks:
            parts.append(_note("(no complete spans in this trace)"))
            continue
        parts.append(_note(
            f"{n_spans} span(s) on {len(tracks)} track(s), "
            f"{(t1 - t0) * 1e3:.3f} ms total"))
        parts.append(svg_gantt(tracks, kinds, t0, t1))
    return "".join(parts)


# ---------------------------------------------------------------------------
# roofline
# ---------------------------------------------------------------------------

def roofline_section(points=None, model=None,
                     n_samples: int = 96) -> str:
    """Ceilings + application points on a log-log roofline.

    Defaults to the generic server CPU preset and the ``static_app_points``
    estimates (dataflow-derived moved traffic, with the shadow-interpreter
    footprint as fallback), so the section renders even for a store that
    never measured achieved FLOP/s.
    """
    from ..machine.presets import generic_server_cpu
    from ..roofline.model import cpu_roofline

    if model is None:
        model = cpu_roofline(generic_server_cpu())
    if points is None:
        from ..analyze import static_app_points
        points = static_app_points()
    lo, hi = 2.0 ** -6, 2.0 ** 8
    n = max(int(n_samples), 2)
    intensities = [lo * (hi / lo) ** (i / (n - 1)) for i in range(n)]
    series = {label: list(zip(intensities, vals))
              for label, vals in model.series(intensities).items()}
    pts = sorted((p.name, p.intensity, p.achieved_flops_per_s)
                 for p in points)
    svg = svg_roofline(series, pts)
    rows = []
    for name, intensity, achieved in pts:
        att = model.attainable(intensity)
        eff = (f"{achieved / att:.1%}" if achieved and att > 0
               else '<span class="muted">static</span>')
        rows.append((escape(name), f"{intensity:.3f}",
                     escape(model.classify(intensity)),
                     f"{att / 1e9:.2f}",
                     f"{achieved / 1e9:.2f}" if achieved else "-", eff))
    tbl = table(("application point", "intensity (F/B)", "bound",
                 "attainable (GFLOP/s)", "achieved (GFLOP/s)",
                 "efficiency"), rows)
    head = _note(f"model: {model.name} — peak "
                 f"{model.peak_flops / 1e9:.1f} GFLOP/s, "
                 f"{model.peak_bandwidth / 1e9:.1f} GB/s, ridge at "
                 f"{model.ridge_point():.2f} FLOP/byte. Hollow markers are "
                 "static (dataflow moved-traffic) estimates pinned to their "
                 "attainable roof.")
    return head + svg + tbl


# ---------------------------------------------------------------------------
# tuning trajectories
# ---------------------------------------------------------------------------

def tuning_section(results: Sequence) -> str:
    """Search trajectories from persisted :class:`TuningResult` JSON."""
    if not results:
        return _note("no tuning results supplied; persist one with "
                     "TuningResult.to_json() and pass --tuning.")
    parts = []
    for res in results:
        title = f"{res.kernel} / {res.problem} — {res.strategy}"
        parts.append(f"<h3>{escape(title)}</h3>")
        if not res.history:
            parts.append(_note("(empty search history)"))
            continue
        evals = [(e.index, e.seconds, e.cached) for e in res.history]
        best = res.best
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(best.config.items()))
        parts.append(_note(
            f"{res.measurements} measurement(s), {res.cache_hits} cache "
            f"hit(s); best {res.best_seconds:.4e}s at eval {best.index} "
            f"({cfg})"))
        parts.append(svg_trajectory(evals))
    return "".join(parts)


# ---------------------------------------------------------------------------
# analyze findings
# ---------------------------------------------------------------------------

_SEV_CLS = {"error": "bad", "warning": "warn", "info": "muted",
            "expected": "muted"}


def analyze_section(report=None, kernel: str | None = None) -> str:
    """Static-analysis findings with their source spans."""
    if report is None:
        from ..analyze import analyze_all
        try:
            report = analyze_all(kernel=kernel)
        except Exception as exc:  # registry import failures shouldn't kill
            return _note(f"analysis unavailable: {exc}")
    counts = report.counts()
    badge_cls = "ok" if report.ok else "bad"
    summary = ", ".join(f"{n} {sev}" for sev, n in sorted(counts.items())
                        if n) or "no findings"
    head = (f'<p><span class="badge {badge_cls}">'
            f'{"clean" if report.ok else "errors"}</span> '
            f'<span class="section-note">{escape(summary)}</span></p>')
    if not report.findings:
        return head
    rows = []
    for f in report.findings:
        span = (f"{f.lineno}:{f.col}-{f.end_lineno}"
                if f.lineno else '<span class="muted">-</span>')
        cls = _SEV_CLS.get(f.severity, "muted")
        rows.append((
            f"<code>{escape(f.rule)}</code> {escape(f.slug)}",
            f'<span class="{cls}">{escape(f.severity)}</span>',
            f"<code>{escape(f.variant)}</code>",
            escape(f.source), span, escape(f.message)))
    return head + table(("rule", "severity", "variant", "pass",
                         "span", "message"), rows)


# ---------------------------------------------------------------------------
# metrics snapshot (service /metrics, or a trace's embedded snapshot)
# ---------------------------------------------------------------------------

def metrics_section(snapshot: Mapping | None) -> str:
    """A MetricsRegistry snapshot as counter/gauge/histogram tables."""
    if not snapshot:
        return _note("no metrics snapshot supplied.")
    parts = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    if counters or gauges:
        rows = [(f"<code>{escape(k)}</code>", "counter", str(v))
                for k, v in sorted(counters.items())]
        rows += [(f"<code>{escape(k)}</code>", "gauge",
                  "-" if v is None else f"{v:g}")
                 for k, v in sorted(gauges.items())]
        parts.append(table(("metric", "type", "value"), rows))
    hists = snapshot.get("histograms") or {}
    if hists:
        rows = []
        for name, h in sorted(hists.items()):
            mean = (h["total"] / h["count"]) if h.get("count") else None
            rows.append((f"<code>{escape(name)}</code>",
                         str(h.get("count", 0)),
                         "-" if mean is None else f"{mean:.4g}",
                         "-" if h.get("min") is None else f"{h['min']:.4g}",
                         "-" if h.get("max") is None else f"{h['max']:.4g}"))
        parts.append(table(("histogram", "count", "mean", "min", "max"),
                           rows))
    return "".join(parts) or _note("empty metrics snapshot.")


def _pretty_json(doc) -> str:
    return tag("pre", escape(json.dumps(doc, indent=2, sort_keys=True)),
               cls="mono")
