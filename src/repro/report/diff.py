"""Two-run and two-machine comparison reports.

The HTML diff is a rendering of the exact same verdicts the CI gate
enforces: :func:`repro.perfdb.compare.compare_runs` (Mann-Whitney +
bootstrap median-ratio CI + practical floor, via ``timing.stats``) decides
REGRESSED/IMPROVED/UNCHANGED, and this module only draws it.  A report
that disagreed with the gate would be worse than no report.

Machine-vs-machine diffing is a fingerprint side-by-side: the keys two
:func:`repro.perfdb.record.machine_fingerprint` dicts disagree on are the
first suspects when the same code times differently on two hosts, and the
calibration probe ratio quantifies how much of the gap is just "slower
machine".
"""

from __future__ import annotations

from typing import Mapping

from ..perfdb.compare import compare_runs
from .html import escape, render_page, table

__all__ = ["diff_sections", "compare_report", "machine_diff_rows"]

_VERDICT_CLS = {"regressed": "bad", "improved": "ok", "unchanged": "muted",
                "new": "warn", "missing": "warn"}


def _flatten(prefix: str, doc, out: dict[str, object]) -> None:
    if isinstance(doc, Mapping):
        for k, v in sorted(doc.items()):
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    else:
        out[prefix] = doc


def machine_diff_rows(a: Mapping, b: Mapping) -> list[tuple[str, str, bool]]:
    """Flattened fingerprint keys as ``(key, a=..., b=..., differs)`` rows."""
    fa: dict[str, object] = {}
    fb: dict[str, object] = {}
    _flatten("", dict(a or {}), fa)
    _flatten("", dict(b or {}), fb)
    rows = []
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key, "-"), fb.get(key, "-")
        rows.append((key, str(va), str(vb), va != vb))
    return rows


def _machine_section(candidate, baseline, machine_scale: float) -> str:
    rows = []
    differs = 0
    for key, va, vb, diff in machine_diff_rows(candidate.machine,
                                               baseline.machine):
        cls = "bad" if diff else "muted"
        differs += diff
        rows.append((f"<code>{escape(key)}</code>",
                     f'<span class="{cls}">{escape(vb)}</span>',
                     f'<span class="{cls}">{escape(va)}</span>'))
    head = (f'<p class="section-note">{differs} fingerprint key(s) differ '
            "between the two machines." if differs else
            '<p class="section-note">identical machine fingerprints.')
    if machine_scale != 1.0:
        head += (f" Calibration probes put the candidate machine at "
                 f"{machine_scale:.2f}x the baseline's probe speed; "
                 f"candidate times were normalised by /{machine_scale:.3f} "
                 "before the verdicts below.")
    head += "</p>"
    return head + table(("fingerprint key", "baseline", "candidate"), rows)


def _verdict_section(cmp) -> str:
    rows = []
    order = {"regressed": 0, "new": 1, "missing": 1, "improved": 2,
             "unchanged": 3}
    for r in sorted(cmp.results,
                    key=lambda r: (order.get(r.verdict, 4),
                                   -(r.ratio or 0.0), r.benchmark_id)):
        cls = _VERDICT_CLS.get(r.verdict, "muted")
        ratio = f"{r.ratio:.3f}" if r.ratio is not None else "-"
        best = f"{r.best_ratio:.3f}" if r.best_ratio is not None else "-"
        ci = (f"[{r.ratio_ci[0]:.3f}, {r.ratio_ci[1]:.3f}]"
              if r.ratio_ci else "-")
        cand = (f"{r.candidate_median:.3e}"
                if r.candidate_median is not None else "-")
        base = (f"{r.baseline_median:.3e}"
                if r.baseline_median is not None else "-")
        rows.append((f"<code>{escape(r.benchmark_id)}</code>", base, cand,
                     ratio, best, ci,
                     f'<span class="badge {cls}">'
                     f"{escape(r.verdict.upper())}</span>"))
    n_reg, n_imp = len(cmp.regressions), len(cmp.improvements)
    badge = ("ok" if cmp.ok else "bad")
    head = (f'<p><span class="badge {badge}">'
            f'{"PASS" if cmp.ok else "FAIL"}</span> '
            f'<span class="section-note">{len(cmp.results)} benchmark(s): '
            f"{n_reg} regressed, {n_imp} improved. Verdicts combine "
            "Mann-Whitney significance, a bootstrap CI on the median "
            "ratio, a practical floor, and a best-time sanity check "
            "(repro.perfdb.compare).</span></p>")
    return head + table(
        ("benchmark", "baseline median (s)", "candidate median (s)",
         "ratio", "best", "ci95(ratio)", "verdict"), rows)


def diff_sections(candidate, baseline, *, alpha: float = 0.05,
                  min_rel_change: float = 0.10,
                  normalize: bool = True) -> tuple[list[tuple[str, str]],
                                                   bool]:
    """``(sections, regressed)`` for a candidate/baseline run pair."""
    cmp = compare_runs(candidate, baseline, alpha=alpha,
                       min_rel_change=min_rel_change, normalize=normalize)
    overview = table(
        ("", "baseline", "candidate"),
        [("run", f"<code>{escape(baseline.run_id)}</code>",
          f"<code>{escape(candidate.run_id)}</code>"),
         ("label", escape(baseline.label or "-"),
          escape(candidate.label or "-")),
         ("git", f"<code>{escape(baseline.git_sha or '-')}</code>",
          f"<code>{escape(candidate.git_sha or '-')}</code>"),
         ("benchmarks", str(len(baseline.benchmarks)),
          str(len(candidate.benchmarks)))])
    sections = [
        ("Runs under comparison", overview),
        ("Benchmark verdicts", _verdict_section(cmp)),
        ("Machine fingerprints",
         _machine_section(candidate, baseline, cmp.machine_scale)),
    ]
    return sections, not cmp.ok


def compare_report(candidate, baseline, *, alpha: float = 0.05,
                   min_rel_change: float = 0.10, normalize: bool = True,
                   title: str = "repro compare report",
                   now: float | None = None) -> tuple[str, bool]:
    """Self-contained diff document; returns ``(html, regressed)``."""
    sections, regressed = diff_sections(
        candidate, baseline, alpha=alpha, min_rel_change=min_rel_change,
        normalize=normalize)
    subtitle = (f"candidate {candidate.run_id[:12]} vs baseline "
                f"{baseline.run_id[:12]}")
    return render_page(title, sections, now=now, subtitle=subtitle), regressed
