"""Unified run reports: every analysis surface fused into one HTML file.

SHARP renders every run into a PDF/CSV report and ships a GUI for
comparing runs; VAMPIR and VTune give graduate students a zoomable
timeline.  ``repro.report`` substitutes one deterministic, dependency-free
artifact for all of them: :func:`build_report` fuses perfdb history
(sparklines + change points), observe span gantts, roofline placements,
tuning search trajectories, and analyze findings into a single
self-contained HTML document — the thing a course staff actually grades
from, and the payload the service's ``report`` job kind returns to a
tenant.

Design rules (enforced by tests):

* **deterministic** — identical inputs yield byte-identical bytes;
  timestamps only enter via the explicit ``now`` argument;
* **self-contained** — inline SVG + embedded CSS, zero JavaScript, no
  external assets, stdlib-only rendering;
* **escaped** — benchmark/tenant/kernel names are arbitrary strings and
  are escaped at every interpolation point.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from .diff import compare_report, diff_sections
from .html import escape, render_page
from .sections import (analyze_section, metrics_section, perfdb_section,
                       roofline_section, spans_from_chrome_trace,
                       trace_section, tuning_section)

__all__ = [
    "build_report",
    "compare_report",
    "diff_sections",
    "load_trace",
    "load_tuning_result",
    "render_page",
    "escape",
]


def load_trace(path) -> tuple[str, Mapping]:
    """A Chrome-trace JSON file as a labelled document for the trace section."""
    p = Path(path)
    return p.name, json.loads(p.read_text(encoding="utf-8"))


def load_tuning_result(path):
    """A persisted ``TuningResult.to_json()`` file."""
    from ..tuning.harness import TuningResult
    return TuningResult.from_json(Path(path).read_text(encoding="utf-8"))


def build_report(store=None, *, tenant: str | None = None,
                 traces: Sequence[tuple[str, Mapping]] = (),
                 tuning: Sequence = (),
                 include_roofline: bool = True,
                 include_analyze: bool = True,
                 analyze_kernel: str | None = None,
                 metrics: Mapping | None = None,
                 title: str = "repro run report",
                 subtitle: str = "",
                 width: int = 24,
                 now: float | None = None) -> str:
    """One self-contained HTML document over every available surface.

    Every section tolerates missing input (a "no data" note), so this is
    safe to call with any subset of artifacts — the CLI, the example
    script, and the service ``report`` executor all funnel through here.
    ``now`` is the only timestamp source; pass an epoch for byte-stable
    output.
    """
    sections: list[tuple[str, str]] = [
        ("Benchmark history (perfdb)",
         perfdb_section(store, tenant=tenant, width=width)),
        ("Execution traces (observe)", trace_section(list(traces))),
    ]
    if include_roofline:
        sections.append(("Roofline placements", roofline_section()))
    sections.append(("Tuning search trajectories",
                     tuning_section(list(tuning))))
    if include_analyze:
        sections.append(("Static analysis findings",
                         analyze_section(kernel=analyze_kernel)))
    if metrics is not None:
        sections.append(("Service metrics", metrics_section(metrics)))
    return render_page(title, sections, now=now, subtitle=subtitle)
