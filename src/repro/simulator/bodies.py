"""Canonical loop bodies of the course kernels for the port scheduler.

These express the inner loops of the assignment kernels over the virtual
ISA, with realistic dependency structure (e.g. matmul's FMA reduction is a
loop-carried chain; triad's iterations are independent).  Assignment 2's
instruction-granularity analytical models are built from these bodies.
"""

from __future__ import annotations

from .ports import Instr, LoopBody

__all__ = [
    "triad_body",
    "matmul_inner_body",
    "matmul_inner_unrolled",
    "spmv_inner_body",
    "histogram_body",
    "stencil_body",
    "daxpy_body",
    "reduction_body",
    "pointer_chase_body",
]


def triad_body(vectorized: bool = False) -> LoopBody:
    """STREAM triad ``a[i] = b[i] + s*c[i]``: independent iterations."""
    if vectorized:
        return LoopBody((
            Instr("vload"),                       # 0: load b[i:i+w]
            Instr("vload"),                       # 1: load c[i:i+w]
            Instr("vfmadd", deps=((0, 0), (1, 0))),  # 2: b + s*c
            Instr("vstore", deps=((2, 0),)),      # 3: store a
            Instr("iadd", deps=((4, 1),)),        # 4: i += w (carried)
            Instr("cmp", deps=((4, 0),)),         # 5
            Instr("branch", deps=((5, 0),)),      # 6
        ), label="triad-simd")
    return LoopBody((
        Instr("load"),                        # 0: b[i]
        Instr("load"),                        # 1: c[i]
        Instr("fmadd", deps=((0, 0), (1, 0))),   # 2
        Instr("store", deps=((2, 0),)),       # 3
        Instr("iadd", deps=((4, 1),)),        # 4 (carried induction)
        Instr("cmp", deps=((4, 0),)),         # 5
        Instr("branch", deps=((5, 0),)),      # 6
    ), label="triad-scalar")


def matmul_inner_body(vectorized: bool = False) -> LoopBody:
    """Matmul k-loop ``acc += A[i,k]*B[k,j]``: loop-carried FMA reduction.

    The accumulator dependency (distance 1 on the FMA) makes this
    latency-bound on machines whose FMA latency exceeds its reciprocal
    throughput — the classic motivation for unrolling with multiple
    accumulators.
    """
    op = "vfmadd" if vectorized else "fmadd"
    ld = "vload" if vectorized else "load"
    return LoopBody((
        Instr(ld),                                    # 0: A element
        Instr(ld),                                    # 1: B element
        Instr(op, deps=((0, 0), (1, 0), (2, 1))),     # 2: acc += a*b (carried)
        Instr("iadd", deps=((3, 1),)),                # 3: k++ (carried)
        Instr("cmp", deps=((3, 0),)),                 # 4
        Instr("branch", deps=((4, 0),)),              # 5
    ), label=f"matmul-inner-{'simd' if vectorized else 'scalar'}")


def matmul_inner_unrolled(accumulators: int, vectorized: bool = False) -> LoopBody:
    """Matmul inner loop unrolled over ``accumulators`` independent chains.

    Each accumulator carries its own reduction, hiding FMA latency; with
    enough chains the loop flips from latency- to throughput-bound.  This
    is the optimization assignment 2 asks students to *predict* before
    applying.
    """
    if accumulators < 1:
        raise ValueError("need at least one accumulator")
    op = "vfmadd" if vectorized else "fmadd"
    ld = "vload" if vectorized else "load"
    instrs: list[Instr] = []
    fma_positions: list[int] = []
    for _ in range(accumulators):
        a = len(instrs)
        instrs.append(Instr(ld))
        b = len(instrs)
        instrs.append(Instr(ld))
        fma = len(instrs)
        instrs.append(Instr(op, deps=((a, 0), (b, 0), (fma, 1))))
        fma_positions.append(fma)
    i = len(instrs)
    instrs.append(Instr("iadd", deps=((i, 1),)))
    instrs.append(Instr("cmp", deps=((i, 0),)))
    instrs.append(Instr("branch", deps=((i + 1, 0),)))
    return LoopBody(tuple(instrs), label=f"matmul-inner-unroll{accumulators}")


def spmv_inner_body() -> LoopBody:
    """CSR SpMV nonzero loop: load col index, gather x, FMA into carried acc."""
    return LoopBody((
        Instr("load"),                                # 0: indices[p]
        Instr("load"),                                # 1: data[p]
        Instr("gather", deps=((0, 0),)),              # 2: x[indices[p]]
        Instr("fmadd", deps=((1, 0), (2, 0), (3, 1))),  # 3: acc (carried)
        Instr("iadd", deps=((4, 1),)),                # 4: p++ (carried)
        Instr("cmp", deps=((4, 0),)),                 # 5
        Instr("branch", deps=((5, 0),)),              # 6
    ), label="spmv-csr-inner")


def histogram_body() -> LoopBody:
    """Histogram loop: data-dependent read-modify-write of the count array."""
    return LoopBody((
        Instr("load"),                        # 0: key = keys[i]
        Instr("load", deps=((0, 0),)),        # 1: counts[key]  (address dep)
        Instr("iadd", deps=((1, 0),)),        # 2: +1
        Instr("store", deps=((2, 0),)),       # 3: counts[key]
        Instr("iadd", deps=((4, 1),)),        # 4: i++ (carried)
        Instr("cmp", deps=((4, 0),)),         # 5
        Instr("branch", deps=((5, 0),)),      # 6
    ), label="histogram")


def stencil_body(vectorized: bool = False) -> LoopBody:
    """5-point Jacobi update: 4 loads, add tree, scale, store."""
    ld = "vload" if vectorized else "load"
    add = "vadd" if vectorized else "add"
    mul = "vmul" if vectorized else "mul"
    st = "vstore" if vectorized else "store"
    return LoopBody((
        Instr(ld),                            # 0 north
        Instr(ld),                            # 1 west
        Instr(ld),                            # 2 east
        Instr(ld),                            # 3 south
        Instr(add, deps=((0, 0), (1, 0))),    # 4
        Instr(add, deps=((2, 0), (3, 0))),    # 5
        Instr(add, deps=((4, 0), (5, 0))),    # 6
        Instr(mul, deps=((6, 0),)),           # 7: * 0.25
        Instr(st, deps=((7, 0),)),            # 8
        Instr("iadd", deps=((9, 1),)),        # 9 (carried)
        Instr("cmp", deps=((9, 0),)),         # 10
        Instr("branch", deps=((10, 0),)),     # 11
    ), label=f"stencil-{'simd' if vectorized else 'scalar'}")


def daxpy_body() -> LoopBody:
    """DAXPY ``y[i] += a*x[i]`` — the lab-session demo kernel."""
    return LoopBody((
        Instr("load"),                        # 0: x[i]
        Instr("load"),                        # 1: y[i]
        Instr("fmadd", deps=((0, 0), (1, 0))),  # 2
        Instr("store", deps=((2, 0),)),       # 3
        Instr("iadd", deps=((4, 1),)),        # 4 (carried)
        Instr("cmp", deps=((4, 0),)),         # 5
        Instr("branch", deps=((5, 0),)),      # 6
    ), label="daxpy")


def reduction_body() -> LoopBody:
    """Sum reduction: the purest loop-carried latency chain."""
    return LoopBody((
        Instr("load"),                        # 0: x[i]
        Instr("add", deps=((0, 0), (1, 1))),  # 1: acc += (carried)
        Instr("iadd", deps=((2, 1),)),        # 2 (carried)
        Instr("cmp", deps=((2, 0),)),         # 3
        Instr("branch", deps=((3, 0),)),      # 4
    ), label="sum-reduction")


def pointer_chase_body() -> LoopBody:
    """Pointer chase: each load's address depends on the previous load.

    The microbenchmark that measures *latency* rather than bandwidth —
    nothing can overlap.
    """
    return LoopBody((
        Instr("load", deps=((0, 1),)),        # 0: p = *p (carried through itself)
        Instr("cmp", deps=((0, 0),)),         # 1
        Instr("branch", deps=((1, 0),)),      # 2
    ), label="pointer-chase")
